#!/usr/bin/env bash
# Record the platform's perf baseline.
#
# Runs the `scale` experiment (serial vs worker-pool vs sharded-master
# TTI engine, pinned seed, full durations) plus the criterion
# micro-benchmarks, and snapshots the machine-readable artifacts to the
# repository root:
#
#   BENCH_scale.json      — TTIs/s, per-phase wall-time, allocs/TTI,
#                           multi-worker and per-agent-shard series,
#                           scheduler zero-alloc probe, determinism check
#
# The experiment sizes its worker pool from the machine's available
# cores; this script surfaces that up front so a committed
# BENCH_scale.json is never mistaken for a multi-core measurement when
# it was recorded on a single-CPU host (where every parallel series
# degenerates to one thread and speedups are ~1.0x by construction).
#
# Usage: scripts/bench.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=()
if [[ "${1:-}" == "--quick" ]]; then
  MODE=(--quick)
fi

CORES=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
echo "bench host: ${CORES} core(s) available"
if [[ "$CORES" -le 1 ]]; then
  echo "WARNING: single-CPU host — worker/shard series will run on one" \
       "thread; record multi-core numbers on a host with >=2 cores."
fi

OUT=target/experiments
cargo build --release -p flexran-bench
cargo run --release -p flexran-bench --bin experiments -- scale "${MODE[@]}" --out "$OUT"
cp "$OUT/BENCH_scale.json" BENCH_scale.json

# Micro-benchmarks (median/p95 per op, JSON at target/criterion/).
cargo bench -p flexran-bench --bench micro

echo
echo "wrote $(pwd)/BENCH_scale.json (cores: ${CORES})"
