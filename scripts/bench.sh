#!/usr/bin/env bash
# Record the platform's perf baseline.
#
# Runs the `scale` experiment (serial vs worker-pool vs sharded-master
# TTI engine, pinned seed, full durations) plus the criterion
# micro-benchmarks, and snapshots the machine-readable artifacts to the
# repository root:
#
#   BENCH_scale.json      — TTIs/s, per-phase wall-time, allocs/TTI,
#                           TTI latency percentiles (p50/p95/p99/worst)
#                           and max-cells-at-budget from the deadline
#                           monitor, multi-worker and per-agent-shard
#                           series, steady-state zero-alloc probes,
#                           scheduler zero-alloc probe, determinism check
#
# The experiment sizes its worker pool from the machine's available
# cores; this script surfaces that up front so a committed
# BENCH_scale.json is never mistaken for a multi-core measurement when
# it was recorded on a single-CPU host (where every parallel series
# degenerates to one thread and speedups are ~1.0x by construction).
#
# If the committed BENCH_scale.json was recorded on a multi-core host
# (`parallel_workers > 1`) and this host is single-core, the snapshot is
# REFUSED unless --force is given: a one-thread run would silently
# replace real parallel-speedup numbers with degenerate ~1.0x ones.
# The reverse direction (single-core baseline, any host) always
# proceeds — the committed baseline of this repository is single-core
# because its reference CI box has one CPU; every determinism and
# allocation contract is fully exercised there, only the speedup
# columns are degenerate.
#
# With --sweep, additionally runs the multi-seed campaign sweep
# (`flexran-campaign sweep`): the same scale grid, every point measured
# under independent seeds, written to target/experiments/BENCH_scale_sweep.json
# with per-KPI distributions (mean ± 95% CI, exact p50/p95/p99) instead
# of single-run points. The sweep never replaces the committed
# single-run baseline — the two schemas are complementary.
#
# Usage: scripts/bench.sh [--quick] [--force] [--sweep]
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=()
FORCE=0
SWEEP=0
for arg in "$@"; do
  case "$arg" in
    --quick) MODE=(--quick) ;;
    --force) FORCE=1 ;;
    --sweep) SWEEP=1 ;;
    *) echo "unknown flag '$arg' (flags: --quick --force --sweep)" >&2; exit 2 ;;
  esac
done

CORES=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
echo "bench host: ${CORES} core(s) available"
if [[ "$CORES" -le 1 ]]; then
  echo "WARNING: single-CPU host — worker/shard series will run on one" \
       "thread; record multi-core numbers on a host with >=2 cores."
fi

# Baseline-protection gate: never downgrade a multi-core baseline to a
# single-core one by accident.
if [[ -f BENCH_scale.json && "$CORES" -le 1 && "$FORCE" -ne 1 ]]; then
  BASELINE_WORKERS=$(sed -n 's/.*"parallel_workers": *\([0-9][0-9]*\).*/\1/p' \
      BENCH_scale.json | head -n1)
  if [[ -n "$BASELINE_WORKERS" && "$BASELINE_WORKERS" -gt 1 ]]; then
    echo "ERROR: committed BENCH_scale.json was recorded with" \
         "${BASELINE_WORKERS} workers but this host has ${CORES} core(s)." >&2
    echo "A single-core run would overwrite real parallel-speedup numbers" \
         "with degenerate ~1.0x ones. Re-run on a multi-core host, or pass" \
         "--force to overwrite anyway." >&2
    exit 1
  fi
fi

OUT=target/experiments
cargo build --release -p flexran-bench
cargo run --release -p flexran-bench --bin experiments -- scale "${MODE[@]}" --out "$OUT"
cp "$OUT/BENCH_scale.json" BENCH_scale.json

# Micro-benchmarks (median/p95 per op, JSON at target/criterion/).
cargo bench -p flexran-bench --bench micro

# Optional seeded sweep: distribution-grade scale points (see
# EXPERIMENTS.md §"Campaign reports").
if [[ "$SWEEP" -eq 1 ]]; then
  SWEEP_OUT="$OUT/sweep"
  cargo run --release -p flexran-campaign -- sweep "${MODE[@]}" --out "$SWEEP_OUT"
  cp "$SWEEP_OUT/BENCH_scale.json" "$OUT/BENCH_scale_sweep.json"
  echo "wrote $(pwd)/$OUT/BENCH_scale_sweep.json (seeded distributions)"
fi

echo
echo "wrote $(pwd)/BENCH_scale.json (cores: ${CORES})"
