#!/usr/bin/env bash
# Record the platform's perf baseline.
#
# Runs the `scale` experiment (serial vs parallel TTI engine, pinned
# seed, full durations) plus the criterion micro-benchmarks, and
# snapshots the machine-readable artifacts to the repository root:
#
#   BENCH_scale.json      — TTIs/s, per-phase wall-time, allocs/TTI,
#                           scheduler zero-alloc probe, determinism check
#
# Usage: scripts/bench.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=()
if [[ "${1:-}" == "--quick" ]]; then
  MODE=(--quick)
fi

OUT=target/experiments
cargo build --release -p flexran-bench
cargo run --release -p flexran-bench --bin experiments -- scale "${MODE[@]}" --out "$OUT"
cp "$OUT/BENCH_scale.json" BENCH_scale.json

# Micro-benchmarks (median/p95 per op, JSON at target/criterion/).
cargo bench -p flexran-bench --bench micro

echo
echo "wrote $(pwd)/BENCH_scale.json"
