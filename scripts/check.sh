#!/usr/bin/env bash
# One-stop local CI: formatting, clippy, the workspace invariant checker,
# and the full test suite (including the determinism run with RIB
# single-writer/epoch assertions compiled in).
#
# Usage: scripts/check.sh          # from anywhere inside the repo
set -euo pipefail
cd "$(dirname "$0")/.."

# Our packages only — `--all` would also reformat the vendored deps,
# which we keep byte-identical to their upstream snapshots.
OWN_PKGS=()
for manifest in crates/*/Cargo.toml; do
    OWN_PKGS+=(-p "$(sed -n 's/^name = "\(.*\)"/\1/p' "$manifest" | head -n1)")
done

echo "==> cargo fmt --check"
cargo fmt "${OWN_PKGS[@]}" -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> flexran-lint (gated against lint-baseline.toml)"
cargo run --quiet -p flexran-lint

echo "==> cargo test (workspace)"
cargo test --quiet --workspace

echo "==> determinism + master-recovery tests with debug-invariants assertions"
cargo test --quiet --release -p flexran --features debug-invariants --test determinism
cargo test --quiet --release -p flexran --features debug-invariants --test master_recovery

echo "==> allocation-regression gate (2 eNBs x 32 UEs, committed ceiling: 0 allocs)"
cargo run --quiet --release -p flexran-bench --bin experiments -- \
    allocgate --out target/check-allocgate

echo "==> rollout smoke gate (8 agents, 1 canary, forced regression -> rollback, 2000 TTIs)"
cargo run --quiet --release -p flexran-bench --bin experiments -- \
    rollout --out target/check-rollout

echo "==> chaos campaign gate (8 seeds x 2000 TTIs, unsharded + 4-shard, parallel)"
# One campaign covers what used to be two sequential experiment runs:
# every seed under both the single-shard and the 4-shard master, fanned
# over the worker pool, failing on any violation (exit 1 pins each one).
cargo run --quiet --release -p flexran-campaign -- \
    chaos --seeds 8 --ttis 2000 --configs 1,4 --out target/check-chaos

echo "All checks passed."
