//! Mobile edge computing (paper §6.2): DASH adaptive streaming with and
//! without RAN assistance. The channel swings between CQI 10 and CQI 4;
//! the reference player overshoots and freezes, the FlexRAN-assisted
//! player follows the MEC application's CQI-derived bitrate hints.
//!
//! ```sh
//! cargo run --release --example mec_dash
//! ```

use flexran::agent::AgentConfig;
use flexran::apps::MecDashApp;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::dash::{AssistedAbr, DashClient, DashConfig, ReferenceAbr};

fn run_player(assisted: bool, seconds: u64) -> DashClient {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    // The paper's high-variability case: CQI 10 ↔ 4 every 20 s.
    let ue = sim.add_ue(
        enb,
        CellId(0),
        SliceId::MNO,
        0,
        UeRadioSpec::CqiSquareWave(10, 4, 20_000),
    );
    let app = MecDashApp::new();
    let hints = app.hint_channel();
    sim.master_mut().register_app(Box::new(app));
    sim.run(3);
    let _ = sim.master_mut().request_stats(
        enb,
        flexran::proto::ReportConfig {
            report_type: flexran::proto::ReportType::Periodic { period: 10 },
            flags: flexran::proto::ReportFlags::ALL,
        },
    );
    sim.run(100); // attach

    let cfg = DashConfig::paper_4k_ladder();
    let abr: Box<dyn flexran::sim::dash::Abr> = if assisted {
        Box::new(AssistedAbr)
    } else {
        Box::new(ReferenceAbr::default())
    };
    let mut client = DashClient::new(cfg, abr);
    let rnti = sim.ue_stats(ue).unwrap().rnti;
    for _ in 0..seconds * 1000 {
        let stats = sim.ue_stats(ue).expect("attached");
        if assisted {
            if let Some(hint) = hints.read().get(&(EnbId(1), rnti)) {
                client.set_hint(*hint);
            }
        }
        let inject = client.on_tti(sim.now(), stats.dl_queue_bytes, stats.dl_delivered_bits);
        if !inject.is_zero() {
            sim.inject_dl(ue, inject).unwrap();
        }
        sim.step();
    }
    client
}

fn main() {
    let seconds = 120;
    println!("DASH over a CQI 10 ↔ 4 channel, {seconds} s of streaming\n");
    for assisted in [false, true] {
        let label = if assisted {
            "FlexRAN-assisted"
        } else {
            "reference (dash.js-style)"
        };
        let client = run_player(assisted, seconds);
        let mean_bitrate: f64 = client.bitrate_series.iter().map(|p| p.1).sum::<f64>()
            / client.bitrate_series.len().max(1) as f64;
        let max_bitrate = client
            .bitrate_series
            .iter()
            .map(|p| p.1)
            .fold(0.0f64, f64::max);
        println!("--- {label} ---");
        println!("  segments completed : {}", client.segments_completed);
        println!("  mean bitrate       : {mean_bitrate:.2} Mb/s");
        println!("  max bitrate chosen : {max_bitrate:.1} Mb/s");
        println!("  rebuffer events    : {}", client.rebuffer_events);
        println!(
            "  rebuffer time      : {:.1} s",
            client.rebuffer_ms as f64 / 1000.0
        );
        println!();
    }
    println!("Expected shape (paper Fig. 11b): the reference player rides at or");
    println!("above the channel's capacity and freezes when the CQI drops; the");
    println!("assisted player holds a sustainable level with zero freezes.");
}
