//! Quickstart: one agent-enabled eNodeB, three UEs, a monitoring app at
//! the master, CBR traffic — the smallest complete FlexRAN deployment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flexran::agent::AgentConfig;
use flexran::apps::MonitoringApp;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::traffic::CbrSource;

fn main() {
    // A virtual testbed: master controller + eNodeBs over emulated
    // control links, all in deterministic virtual time.
    let mut sim = SimHarness::new(SimConfig::default());

    // One eNodeB with the paper's 10 MHz FDD cell; the agent starts with
    // a local round-robin downlink scheduler (control stays delegated).
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());

    // A monitoring application at the master: it subscribes to
    // statistics from every agent and mirrors the network state.
    let monitor = MonitoringApp::new(10);
    let snapshot = monitor.snapshot_handle();
    sim.master_mut().register_app(Box::new(monitor));

    // Three UEs at different channel qualities, each with 2 Mb/s of
    // downlink UDP traffic from the core.
    let mut ues = Vec::new();
    for (i, cqi) in [15u8, 10, 5].into_iter().enumerate() {
        let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(cqi));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(2))));
        println!("UE {} added with fixed CQI {cqi}", i + 1);
        ues.push(ue);
    }

    // Run five simulated seconds.
    let seconds = 5.0;
    sim.run((seconds * 1000.0) as u64);

    println!("\n--- after {seconds} simulated seconds ---");
    for (i, ue) in ues.iter().enumerate() {
        let stats = sim.ue_stats(*ue).expect("attached");
        println!(
            "UE {}: connected={} cqi={} goodput={:.2} Mb/s harq_retx={} queue={}",
            i + 1,
            stats.connected,
            stats.cqi.0,
            stats.dl_delivered_bits as f64 / seconds / 1e6,
            stats.harq_retx,
            stats.dl_queue_bytes,
        );
    }

    let snap = snapshot.read();
    println!(
        "\nmaster's view (via FlexRAN protocol): {} UEs, {} total DL bits",
        snap.ues.len(),
        snap.total_dl_bits
    );
    let acc = sim.master().accounting();
    println!(
        "master task-manager: {} cycles, mean RIB slot {:?}, mean apps slot {:?}",
        acc.cycles,
        acc.mean_rib(),
        acc.mean_apps()
    );
}
