//! RAN sharing & virtualization (paper §6.3): one physical cell shared by
//! an MNO and an MVNO, with on-demand resource reallocation through
//! policy reconfiguration, and a premium/secondary group policy inside
//! the MVNO's slice.
//!
//! ```sh
//! cargo run --release --example ran_sharing
//! ```

use flexran::agent::{AgentConfig, PolicyDoc};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::traffic::CbrSource;
use flexran::stack::mac::scheduler::ParamValue;

fn main() {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    sim.run(2);

    // Activate the slicing scheduler: MNO fair, MVNO group-based
    // (premium users own 70 % of the MVNO's slice).
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "mac",
                "dl_ue_scheduler",
                Some("slice-scheduler"),
                vec![
                    ("slice_shares".into(), ParamValue::List(vec![0.5, 0.5])),
                    ("policies".into(), ParamValue::Str("fair,group".into())),
                    ("premium_share".into(), ParamValue::F64(0.7)),
                ],
            )
            .to_yaml(),
        )
        .expect("agent session up");

    // 6 MNO UEs (fair), 6 MVNO UEs: 4 premium + 2 secondary.
    let mut ues = Vec::new();
    for i in 0..12u32 {
        let (slice, group) = if i < 6 {
            (SliceId(0), 0)
        } else if i < 10 {
            (SliceId(1), 0) // premium
        } else {
            (SliceId(1), 1) // secondary
        };
        let ue = sim.add_ue(enb, CellId(0), slice, group, UeRadioSpec::FixedCqi(10));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(4))));
        ues.push((ue, slice, group));
    }

    let report = |sim: &SimHarness, label: &str, since: &[u64], window_s: f64| {
        println!("\n--- {label} ---");
        for (slice, group, tag) in [
            (SliceId(0), 0u8, "MNO (fair)      "),
            (SliceId(1), 0, "MVNO premium    "),
            (SliceId(1), 1, "MVNO secondary  "),
        ] {
            let rates: Vec<f64> = ues
                .iter()
                .enumerate()
                .filter(|(_, (_, s, g))| *s == slice && *g == group)
                .map(|(i, (ue, _, _))| {
                    let bits = sim
                        .ue_stats(*ue)
                        .map(|st| st.dl_delivered_bits)
                        .unwrap_or(0);
                    (bits - since[i]) as f64 / window_s / 1e6
                })
                .collect();
            let mean = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
            println!("{tag} {} UEs, mean {mean:.2} Mb/s per UE", rates.len());
        }
    };

    let snapshot = |sim: &SimHarness| -> Vec<u64> {
        ues.iter()
            .map(|(ue, _, _)| sim.ue_stats(*ue).map(|s| s.dl_delivered_bits).unwrap_or(0))
            .collect()
    };

    // Phase 1: 50/50 split.
    let s0 = snapshot(&sim);
    sim.run(5000);
    report(&sim, "phase 1: shares 50/50", &s0, 5.0);

    // Phase 2: the MVNO buys capacity on demand — one policy message.
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "mac",
                "dl_ue_scheduler",
                None,
                vec![("slice_shares".into(), ParamValue::List(vec![0.2, 0.8]))],
            )
            .to_yaml(),
        )
        .unwrap();
    println!("\n>>> policy reconfiguration: shares now 20/80");
    let s1 = snapshot(&sim);
    sim.run(5000);
    report(&sim, "phase 2: shares 20/80", &s1, 5.0);
}
