//! Interference management (paper §6.1): a macro cell and a small cell,
//! run uncoordinated, with eICIC, and with FlexRAN's optimized eICIC
//! (idle almost-blank subframes handed back to the macro cell).
//!
//! ```sh
//! cargo run --release --example eicic
//! ```

use flexran::agent::AgentConfig;
use flexran::apps::eicic::{standard_abs_pattern, AbsAwareScheduler, OptimizedEicicApp};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::phy::geometry::{Environment, PathLossModel, Position, TxSite};
use flexran::phy::mobility::Stationary;
use flexran::prelude::*;
use flexran::sim::radio::RadioEnvironment;
use flexran::sim::traffic::{CbrSource, OnOffSource};
use flexran::types::units::Dbm;

const MACRO: EnbId = EnbId(1);
const SMALL: EnbId = EnbId(2);
const CELL: CellId = CellId(0);

fn run_mode(mode: &str, seconds: u64) -> (f64, f64) {
    let mut env = Environment::new(10_000_000);
    let macro_site = env.add_site(TxSite {
        position: Position::new(0.0, 0.0),
        tx_power: Dbm(43.0),
        path_loss: PathLossModel::UrbanMacro,
    });
    let small_site = env.add_site(TxSite {
        position: Position::new(400.0, 0.0),
        tx_power: Dbm(30.0),
        path_loss: PathLossModel::SmallCell,
    });
    let mut sim =
        SimHarness::with_radio(SimConfig::default(), RadioEnvironment::with_geometry(env));
    let pattern = standard_abs_pattern(8);
    let coordinated = mode != "uncoordinated";
    sim.add_enb(
        EnbConfig::single_cell(MACRO),
        AgentConfig {
            sync_period: if mode == "optimized" { 1 } else { 0 },
            ..AgentConfig::default()
        },
    );
    let mut small_cfg = EnbConfig::single_cell(SMALL);
    small_cfg.cells[0] = CellConfig::small_cell(CELL);
    sim.add_enb(small_cfg, AgentConfig::default());
    sim.map_cell_to_site(MACRO, CELL, macro_site);
    sim.map_cell_to_site(SMALL, CELL, small_site);

    if coordinated {
        for (enb, sched) in [(MACRO, false), (SMALL, true)] {
            let vsf: Box<dyn flexran::stack::mac::scheduler::DlScheduler> = if sched {
                Box::new(AbsAwareScheduler::small_side(pattern))
            } else {
                Box::new(AbsAwareScheduler::macro_side(pattern))
            };
            let agent = sim.agent_mut(enb).unwrap();
            agent.mac.dl.insert("eicic", vsf);
            agent.mac.dl.activate("eicic").unwrap();
        }
        sim.set_site_activity_pattern(macro_site, pattern, false);
        sim.set_site_activity_pattern(small_site, pattern, true);
    }

    // Three macro UEs (two inside the small cell's interference zone)
    // with 12 Mb/s each; one small-cell-edge UE with bursty traffic.
    let mut macro_ues = Vec::new();
    for x in [150.0, 350.0, 370.0] {
        let ue = sim.add_ue(
            MACRO,
            CELL,
            SliceId::MNO,
            0,
            UeRadioSpec::Geo(Box::new(Stationary(Position::new(x, 0.0))), macro_site),
        );
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(12))));
        macro_ues.push(ue);
    }
    let small_ue = sim.add_ue(
        SMALL,
        CELL,
        SliceId::MNO,
        0,
        UeRadioSpec::Geo(Box::new(Stationary(Position::new(330.0, 0.0))), small_site),
    );
    sim.set_dl_traffic(
        small_ue,
        Box::new(OnOffSource::new(BitRate::from_mbps(4), 1000, 1000)),
    );

    if mode == "optimized" {
        sim.master_mut()
            .register_app(Box::new(OptimizedEicicApp::new(
                MACRO,
                0,
                vec![(SMALL, 0)],
                pattern,
                6,
            )));
        sim.run(3);
        for enb in [MACRO, SMALL] {
            let _ = sim.master_mut().request_stats(
                enb,
                flexran::proto::ReportConfig {
                    report_type: flexran::proto::ReportType::Periodic { period: 1 },
                    flags: flexran::proto::ReportFlags::ALL,
                },
            );
        }
    }

    let ttis = seconds * 1000;
    sim.run(ttis);
    let macro_mbps: f64 = macro_ues
        .iter()
        .map(|ue| {
            sim.ue_stats(*ue)
                .map(|s| s.dl_delivered_bits as f64 / ttis as f64 / 1000.0)
                .unwrap_or(0.0)
        })
        .sum();
    let small_mbps = sim
        .ue_stats(small_ue)
        .map(|s| s.dl_delivered_bits as f64 / ttis as f64 / 1000.0)
        .unwrap_or(0.0);
    (macro_mbps, small_mbps)
}

fn main() {
    println!("HetNet: 1 macro cell + 1 small cell, 3 macro UEs, 1 small-cell UE");
    println!("(8 almost-blank subframes per 40-subframe pattern)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "mode", "macro Mb/s", "small Mb/s", "total Mb/s"
    );
    for mode in ["uncoordinated", "eicic", "optimized"] {
        let (macro_mbps, small_mbps) = run_mode(mode, 8);
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>12.2}",
            mode,
            macro_mbps,
            small_mbps,
            macro_mbps + small_mbps
        );
    }
    println!("\nExpected shape (paper Fig. 10): optimized > eICIC > uncoordinated,");
    println!("small-cell throughput equal under eICIC and optimized eICIC.");
}
