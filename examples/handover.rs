//! Mobility management (paper §7.1): a UE drives between two macro cells
//! while the master's load-aware mobility manager decides when to hand it
//! over, based on measurement-report events flowing up the FlexRAN
//! protocol.
//!
//! ```sh
//! cargo run --release --example handover
//! ```

use std::collections::BTreeMap;

use flexran::agent::AgentConfig;
use flexran::apps::MobilityManagerApp;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::phy::geometry::{Environment, PathLossModel, Position, TxSite};
use flexran::phy::mobility::LinearMotion;
use flexran::prelude::*;
use flexran::sim::radio::RadioEnvironment;
use flexran::sim::traffic::CbrSource;
use flexran::types::units::Dbm;

fn main() {
    let mut env = Environment::new(10_000_000);
    let site_a = env.add_site(TxSite {
        position: Position::new(0.0, 0.0),
        tx_power: Dbm(43.0),
        path_loss: PathLossModel::UrbanMacro,
    });
    let site_b = env.add_site(TxSite {
        position: Position::new(1000.0, 0.0),
        tx_power: Dbm(43.0),
        path_loss: PathLossModel::UrbanMacro,
    });
    let mut sim =
        SimHarness::with_radio(SimConfig::default(), RadioEnvironment::with_geometry(env));
    let enb_a = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    let enb_b = sim.add_enb(EnbConfig::single_cell(EnbId(2)), AgentConfig::default());
    sim.map_cell_to_site(enb_a, CellId(0), site_a);
    sim.map_cell_to_site(enb_b, CellId(0), site_b);

    let mut site_map = BTreeMap::new();
    site_map.insert(site_a as u32, (enb_a, CellId(0)));
    site_map.insert(site_b as u32, (enb_b, CellId(0)));
    sim.master_mut()
        .register_app(Box::new(MobilityManagerApp::new(site_map)));

    // The traveller: 30 m/s (~110 km/h) from x=200 towards x=900, with a
    // 1 Mb/s download running.
    let ue = sim.add_ue(
        enb_a,
        CellId(0),
        SliceId::MNO,
        0,
        UeRadioSpec::Geo(
            Box::new(LinearMotion {
                start: Position::new(200.0, 0.0),
                speed_mps: 30.0,
                heading_rad: 0.0,
            }),
            site_a,
        ),
    );
    sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
    sim.enable_measurements(ue, 200);

    println!("UE travels 200 m → ~900 m at 30 m/s; cells at x=0 and x=1000\n");
    println!(
        "{:>5} {:>9} {:>8} {:>14}",
        "t(s)", "serving", "CQI", "goodput Mb/s"
    );
    let mut last_bits = 0u64;
    for second in 1..=24u64 {
        sim.run(1000);
        let serving = sim
            .serving_enb(ue)
            .map(|e| e.to_string())
            .unwrap_or_else(|| "-".into());
        let (cqi, bits) = sim
            .ue_stats(ue)
            .map(|s| (s.cqi.0, s.dl_delivered_bits))
            .unwrap_or((0, last_bits));
        println!(
            "{:>5} {:>9} {:>8} {:>14.2}",
            second,
            serving,
            cqi,
            (bits.saturating_sub(last_bits)) as f64 / 1e6
        );
        last_bits = bits;
    }
    assert_eq!(sim.serving_enb(ue), Some(enb_b));
    println!("\nThe load-aware mobility manager handed the UE to {enb_b} mid-drive.");
}
