//! Deployment mode: the FlexRAN master and an agent as two real network
//! endpoints talking protobuf-framed messages over TCP — the same
//! process the paper's testbed runs between the controller machine and
//! the eNodeB machines (here: two threads + localhost).
//!
//! ```sh
//! cargo run --release --example tcp_deployment
//! ```

use std::net::TcpListener;
use std::time::Duration;

use flexran::agent::{AgentConfig, FlexranAgent, VsfRegistry};
use flexran::controller::{MasterController, TaskManagerConfig};
use flexran::prelude::*;
use flexran::proto::{ReportConfig, ReportFlags, ReportType, TcpTransport, Transport};
use flexran::stack::enb::{Enb, EnbParams, StaticPhyView};
use flexran::types::units::Bytes;

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    println!("master listening on {addr}");

    // ----- agent process (thread): eNodeB + agent, paced at 1 ms -----
    let agent_thread = std::thread::spawn(move || {
        let transport = TcpTransport::connect(&addr.to_string()).expect("connect");
        let enb = Enb::new(EnbConfig::single_cell(EnbId(1)), EnbParams::default()).unwrap();
        let mut agent = FlexranAgent::new(
            enb,
            transport,
            VsfRegistry::with_builtins(),
            AgentConfig {
                sync_period: 1,
                ..AgentConfig::default()
            },
        );
        let mut phy = StaticPhyView(22.0);
        let rnti = agent
            .enb_mut()
            .rach(CellId(0), UeId(1), SliceId::MNO, 0, Tti(0))
            .unwrap();
        // 3 real seconds of 1 ms TTIs.
        for t in 1..3000u64 {
            let tti = Tti(t);
            agent.run_tti(tti, &mut phy);
            // Keep a download running once attached.
            if let Ok(s) = agent.enb().ue_stat(CellId(0), rnti) {
                if s.connected && s.dl_queue_bytes.as_u64() < 100_000 {
                    let _ = agent
                        .enb_mut()
                        .inject_dl_traffic(CellId(0), rnti, Bytes(100_000), tti);
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = agent.enb().ue_stat(CellId(0), rnti).unwrap();
        let tx = agent.transport().tx_counters();
        (stats.dl_delivered_bits, tx.total_bytes(), agent.counters())
    });

    // ----- master process (main thread) -----
    let (stream, peer) = listener.accept().expect("agent connects");
    println!("agent connected from {peer}");
    let mut master = MasterController::new(TaskManagerConfig::default());
    master.add_agent(Box::new(TcpTransport::from_stream(stream).unwrap()));

    // Real-time pacing: 1 ms cycles for ~3 s, subscribing to statistics
    // once the hello lands.
    let mut subscribed = false;
    let start = std::time::Instant::now();
    let mut tti = 0u64;
    while start.elapsed() < Duration::from_secs(3) {
        let cycle_start = std::time::Instant::now();
        tti += 1;
        master.run_cycle(Tti(tti));
        if !subscribed && master.view().agent(EnbId(1)).is_some() {
            master
                .request_stats(
                    EnbId(1),
                    ReportConfig {
                        report_type: ReportType::Periodic { period: 10 },
                        flags: ReportFlags::ALL,
                    },
                )
                .unwrap();
            subscribed = true;
            println!("hello received; statistics subscription installed");
        }
        if let Some(spent) = Duration::from_millis(1).checked_sub(cycle_start.elapsed()) {
            std::thread::sleep(spent);
        }
    }

    let (dl_bits, agent_tx_bytes, counters) = agent_thread.join().expect("agent thread");
    println!("\n--- after ~3 wall-clock seconds ---");
    println!("UE goodput      : {:.2} Mb/s", dl_bits as f64 / 3.0 / 1e6);
    println!("agent→master    : {} bytes on the wire", agent_tx_bytes);
    println!("agent counters  : {counters:?}");
    let acc = master.accounting();
    println!(
        "master cycles   : {} (mean RIB slot {:?}, mean apps slot {:?})",
        acc.cycles,
        acc.mean_rib(),
        acc.mean_apps()
    );
    let rib_ues = master.view().n_ues();
    println!(
        "RIB             : {} agents, {} UEs",
        master.view().n_agents(),
        rib_ues
    );
    assert!(rib_ues >= 1, "the UE must be visible at the master");
}
