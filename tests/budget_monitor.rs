//! TTI deadline-budget monitor: over-budget counting, consistency, and
//! the northbound exposure path (paper §6 — the Task Manager's 1 ms
//! deadline discipline, here made observable instead of assumed).
//!
//! Wall-clock caveat: these tests only assert *relative* facts (every
//! sample beats a `u64::MAX` budget, no sample beats a 1 ns budget,
//! histogram invariants hold). Absolute latencies vary by host and are
//! never asserted.

use flexran::agent::AgentConfig;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::types::budget::DEFAULT_TTI_BUDGET_NS;

fn sim_with_budget(tti_budget_ns: u64) -> (SimHarness, EnbId) {
    let cfg = SimConfig {
        master: flexran::controller::master::TaskManagerConfig {
            tti_budget_ns,
            ..Default::default()
        },
        tti_budget_ns,
        ..Default::default()
    };
    let mut sim = SimHarness::new(cfg);
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10));
    (sim, enb)
}

#[test]
fn one_nanosecond_budget_marks_every_tti_over() {
    // No real step completes within 1 ns, so the over-budget counter
    // must track the recorded count exactly — this is the "injected
    // stall" of the monitor itself: every cycle misses its deadline.
    let (mut sim, _) = sim_with_budget(1);
    sim.run(50);

    let h = sim.budget_stats();
    assert_eq!(h.budget_ns, 1);
    assert_eq!(h.recorded, 50);
    assert_eq!(h.over_budget, 50, "every TTI must miss a 1 ns deadline");
    assert!(h.is_consistent(), "{h:?}");

    let m = sim.master().budget_stats();
    assert_eq!(m.recorded, 50);
    assert_eq!(m.over_budget, 50);
    assert!(m.is_consistent(), "{m:?}");
}

#[test]
fn unreachable_budget_never_trips() {
    let (mut sim, _) = sim_with_budget(u64::MAX);
    sim.run(50);

    let h = sim.budget_stats();
    assert_eq!(h.recorded, 50);
    assert_eq!(h.over_budget, 0, "no TTI can exceed a u64::MAX budget");
    assert!(h.worst_ns > 0, "steps take nonzero wall time");
    assert!(h.is_consistent(), "{h:?}");
    assert_eq!(sim.master().budget_stats().over_budget, 0);
}

#[test]
fn stalled_agent_keeps_monitor_consistent() {
    // The chaos stall hook freezes the agent's control plane; cycles
    // keep running and the monitor must keep recording coherently.
    let (mut sim, enb) = sim_with_budget(DEFAULT_TTI_BUDGET_NS);
    sim.run(20);
    sim.agent_mut(enb).expect("present").set_stalled(true);
    sim.run(30);
    sim.agent_mut(enb).expect("present").set_stalled(false);
    sim.run(10);

    let h = sim.budget_stats();
    assert_eq!(h.recorded, 60, "stall must not drop TTI samples");
    assert!(h.is_consistent(), "{h:?}");
    let m = sim.master().budget_stats();
    assert_eq!(m.recorded, 60, "master cycles run through the stall");
    assert!(m.is_consistent(), "{m:?}");
}

#[test]
fn reset_budget_clears_both_monitors() {
    let (mut sim, _) = sim_with_budget(1);
    sim.run(25);
    assert_eq!(sim.budget_stats().recorded, 25);

    sim.reset_budget();
    assert_eq!(sim.budget_stats().recorded, 0);
    assert_eq!(sim.budget_stats().over_budget, 0);
    assert_eq!(sim.master().budget_stats().recorded, 0);

    sim.run(5);
    let h = sim.budget_stats();
    assert_eq!(h.recorded, 5, "monitor keeps recording after reset");
    assert_eq!(h.over_budget, 5);
}

#[test]
fn northbound_view_carries_budget_stats() {
    // The over-budget counter is queryable from the northbound API:
    // the master stamps every minted view with its monitor snapshot.
    let (mut sim, _) = sim_with_budget(1);
    sim.run(40);

    let view = sim.master().view();
    let b = view.budget();
    assert_eq!(b.budget_ns, 1);
    assert_eq!(b.recorded, 40);
    assert_eq!(b.over_budget, 40);
    assert!(b.is_consistent(), "{b:?}");
}

#[test]
fn budget_never_influences_observables() {
    // Determinism contract: identical seeds with wildly different
    // budgets must produce bit-identical simulation state.
    let digest = |budget: u64| {
        let (mut sim, enb) = sim_with_budget(budget);
        sim.run(500);
        let stats = sim
            .agent(enb)
            .unwrap()
            .enb()
            .ue_stats(CellId(0))
            .unwrap()
            .to_vec();
        format!("{stats:?}")
    };
    assert_eq!(digest(1), digest(u64::MAX));
}
