//! Integration tests for the versioned fleet-config rollout (DESIGN.md
//! §11): KPI-gated canary-first convergence, automatic rollback on a
//! goodput regression, drift re-convergence after an agent rejoin, and
//! the master resuming a mid-flight rollout from its journal.

use flexran::agent::{AgentConfig, LivenessConfig};
use flexran::controller::{RolloutConfig, RolloutEventKind, RolloutPhase};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::traffic::CbrSource;

fn liveness_agent_config() -> AgentConfig {
    AgentConfig {
        sync_period: 1,
        liveness: LivenessConfig {
            heartbeat_period: 5,
            liveness_timeout: 40,
            ..LivenessConfig::default()
        },
        ..AgentConfig::default()
    }
}

fn journaled_master() -> TaskManagerConfig {
    TaskManagerConfig {
        liveness_timeout: 40,
        journal_snapshot_every: 8,
        ..TaskManagerConfig::default()
    }
}

fn subscribe_all(sim: &mut SimHarness, enb: EnbId, period: u32) {
    sim.master_mut()
        .request_stats(
            enb,
            flexran::proto::ReportConfig {
                report_type: flexran::proto::ReportType::Periodic { period },
                flags: flexran::proto::ReportFlags::ALL,
            },
        )
        .expect("session exists");
}

/// A fleet of `n` single-cell eNodeBs, one loaded UE each, with periodic
/// stats subscriptions so the master's RIB carries live goodput.
fn fleet(n: u32, master: TaskManagerConfig) -> (SimHarness, Vec<UeId>) {
    let cfg = SimConfig {
        master,
        ..SimConfig::default()
    };
    let mut sim = SimHarness::new(cfg);
    let mut ues = Vec::new();
    for i in 1..=n {
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(i)), liveness_agent_config());
        let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(2))));
        ues.push(ue);
    }
    sim.run(5);
    for i in 1..=n {
        subscribe_all(&mut sim, EnbId(i), 10);
    }
    sim.run(100); // let traffic and reports settle before any baseline
    (sim, ues)
}

fn quick_windows() -> RolloutConfig {
    RolloutConfig {
        observation_window: 50,
        ..RolloutConfig::default()
    }
}

/// Push a bundle selecting `scheduler` fleet-wide, canary-first, and run
/// the sim until the rollout leaves its in-flight phases.
fn rollout(sim: &mut SimHarness, scheduler: &str, canary: EnbId) -> u64 {
    let version = sim
        .master_mut()
        .apply_config_bundle(
            String::new(),
            scheduler.to_string(),
            scheduler.to_string(),
            canary,
            quick_windows(),
        )
        .expect("no rollout in flight");
    sim.run(600);
    version
}

#[test]
fn canary_pass_converges_the_fleet() {
    let (mut sim, _ues) = fleet(3, journaled_master());
    let version = rollout(&mut sim, "max-cqi", EnbId(1));

    let status = sim.master().rollout_status();
    assert_eq!(status.phase, RolloutPhase::Converged, "{status:?}");
    assert_eq!(status.last_converged, version);

    // Every agent runs the bundle it was issued, and says so over the
    // control channel (heartbeat-advertised signature in the master's
    // session table).
    let issued = sim.master().issued_config_signatures();
    let sig = sim.agent(EnbId(1)).unwrap().active_config().1;
    assert!(sig != 0 && issued.contains(&sig));
    for i in 1..=3u32 {
        assert_eq!(
            sim.agent(EnbId(i)).unwrap().active_config(),
            (version, sig),
            "agent {i} applied the rolled-out bundle"
        );
        assert_eq!(
            sim.master().agent_applied_config(EnbId(i)),
            Some(sig),
            "agent {i} advertised the signature back to the master"
        );
    }

    // Canary-first ordering is journaled: the canary applied before the
    // fleet was ever pushed.
    let history = sim.master().rollout_history();
    let canary_ok = history
        .iter()
        .position(|e| e.kind == RolloutEventKind::CanaryApplied)
        .expect("canary gate recorded");
    let fleet_push = history
        .iter()
        .position(|e| e.kind == RolloutEventKind::FleetPushed)
        .expect("fleet push recorded");
    assert!(canary_ok < fleet_push, "canary gated the fleet push");
}

#[test]
fn goodput_regression_rolls_the_fleet_back() {
    let (mut sim, ues) = fleet(3, journaled_master());
    let v1 = rollout(&mut sim, "max-cqi", EnbId(1));
    assert_eq!(sim.master().rollout_status().phase, RolloutPhase::Converged);
    let v1_sig = sim.agent(EnbId(1)).unwrap().active_config().1;

    // "remote-stub" disables local DL scheduling; with no delegation app
    // attached the canary's goodput collapses inside one window.
    let v2 = rollout(&mut sim, "remote-stub", EnbId(2));
    let status = sim.master().rollout_status();
    assert_eq!(status.phase, RolloutPhase::RolledBack, "{status:?}");
    assert_eq!(status.last_converged, v1, "rollback target is v1");

    // The regression never escaped the canary, and every agent is back
    // on the last converged bundle.
    let history = sim.master().rollout_history();
    assert!(
        history
            .iter()
            .any(|e| e.kind == RolloutEventKind::Regression && e.version == v2),
        "regression journaled"
    );
    assert!(
        !history
            .iter()
            .any(|e| e.kind == RolloutEventKind::FleetPushed && e.version == v2),
        "v2 was never pushed past the canary"
    );
    for i in 1..=3u32 {
        assert_eq!(
            sim.agent(EnbId(i)).unwrap().active_config(),
            (v1, v1_sig),
            "agent {i} runs the last converged bundle"
        );
    }

    // The fleet kept its data plane: traffic still flows on v1.
    let before: u64 = ues
        .iter()
        .map(|&ue| sim.ue_stats(ue).map_or(0, |s| s.dl_delivered_bits))
        .sum();
    sim.run(200);
    let after: u64 = ues
        .iter()
        .map(|&ue| sim.ue_stats(ue).map_or(0, |s| s.dl_delivered_bits))
        .sum();
    assert!(after > before, "goodput resumed after rollback");
}

#[test]
fn rejoining_agent_is_repushed_to_the_converged_config() {
    let (mut sim, _ues) = fleet(2, journaled_master());
    let v1 = rollout(&mut sim, "proportional-fair", EnbId(1));
    assert_eq!(sim.master().rollout_status().phase, RolloutPhase::Converged);
    let sig = sim.agent(EnbId(1)).unwrap().active_config().1;

    // Crash-restart wipes the agent's soft state, config included; on
    // rejoin it advertises signature 0 and the master detects drift.
    sim.crash_agent(EnbId(2)).unwrap();
    assert_eq!(sim.agent(EnbId(2)).unwrap().active_config(), (0, 0));

    sim.run(400);
    assert_eq!(
        sim.agent(EnbId(2)).unwrap().active_config(),
        (v1, sig),
        "drift re-push re-converged the rejoined agent"
    );
    assert_eq!(sim.master().agent_applied_config(EnbId(2)), Some(sig));
    assert_eq!(sim.master().rollout_status().phase, RolloutPhase::Converged);
}

#[test]
fn master_crash_mid_rollout_resumes_from_the_journal() {
    let (mut sim, _ues) = fleet(3, journaled_master());
    let version = sim
        .master_mut()
        .apply_config_bundle(
            String::new(),
            "max-cqi".to_string(),
            "max-cqi".to_string(),
            EnbId(1),
            quick_windows(),
        )
        .expect("no rollout in flight");

    // Step until the rollout is demonstrably mid-flight, then crash the
    // master before any gate has passed fleet-wide.
    let mut phase = RolloutPhase::Draft;
    for _ in 0..40 {
        sim.run(5);
        phase = sim.master().rollout_status().phase;
        if phase == RolloutPhase::Canary {
            break;
        }
    }
    assert_eq!(phase, RolloutPhase::Canary, "crash lands mid-canary");

    sim.kill_master();
    sim.run(50); // agents ride out the outage in local control
    sim.restart_master().expect("journal recovery");

    let recovered = sim.master().rollout_status();
    assert_eq!(
        recovered.active_version, version,
        "recovered master still owns the rollout"
    );
    assert!(
        recovered.phase == RolloutPhase::Canary,
        "state machine resumed where the journal left it: {recovered:?}"
    );

    // Agents rejoin, observation windows re-open, and the rollout runs
    // to convergence under the restarted master.
    sim.run(800);
    let status = sim.master().rollout_status();
    assert_eq!(status.phase, RolloutPhase::Converged, "{status:?}");
    let sig = sim.agent(EnbId(1)).unwrap().active_config().1;
    for i in 1..=3u32 {
        assert_eq!(sim.agent(EnbId(i)).unwrap().active_config(), (version, sig));
        assert_eq!(sim.master().agent_applied_config(EnbId(i)), Some(sig));
    }
}
