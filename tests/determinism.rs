//! Determinism contract of the parallel TTI engine and the sharded
//! control plane (DESIGN.md §"Simulation engine", §"Sharded control
//! plane"): running the same scenario serially (`workers: None`, one
//! shard) and fanned out over any worker pool × shard-spec combination
//! must produce bit-identical observables — the per-TTI event stream,
//! the end-state UE statistics, and the master's (merged) RIB — over a
//! long run that exercises mobility handovers crossing shard
//! boundaries and control-link fault injection.

use std::collections::BTreeMap;

use flexran::agent::AgentConfig;
use flexran::apps::MobilityManagerApp;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::phy::geometry::{Environment, PathLossModel, Position, TxSite};
use flexran::phy::mobility::LinearMotion;
use flexran::prelude::*;
use flexran::sim::link::{FaultConfig, FaultHandle, LinkConfig};
use flexran::sim::radio::RadioEnvironment;
use flexran::sim::traffic::{CbrSource, FullBufferSource};
use flexran::stack::enb::EnbParams;
use flexran::types::units::Dbm;

const TTIS: u64 = 3_500;
const N_ENBS: usize = 3;
const UES_PER_ENB: usize = 6;

fn fnv_str(h: &mut u64, s: &str) {
    for b in s.as_bytes() {
        *h ^= *b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// The scenario: three macro sites in a row, mobile UEs driving across
/// the cell borders (measurement-report-driven handovers via the
/// master's mobility manager), stationary fading UEs with mixed
/// traffic, and one eNodeB behind a lossy, partition-scripted control
/// link (liveness failover + recovery).
fn build(workers: Option<usize>, shards: ShardSpec) -> (SimHarness, Vec<UeId>) {
    let mut env = Environment::new(10_000_000);
    let sites: Vec<usize> = (0..N_ENBS)
        .map(|i| {
            env.add_site(TxSite {
                position: Position::new(i as f64 * 900.0, 0.0),
                tx_power: Dbm(43.0),
                path_loss: PathLossModel::UrbanMacro,
            })
        })
        .collect();
    let mut sim = SimHarness::with_radio(
        SimConfig {
            seed: 11,
            workers,
            master: TaskManagerConfig {
                shards,
                ..TaskManagerConfig::default()
            },
            ..SimConfig::default()
        },
        RadioEnvironment::with_geometry(env),
    );

    let mut site_map = BTreeMap::new();
    let mut enbs = Vec::new();
    for (i, site) in sites.iter().enumerate() {
        let enb_id = EnbId(i as u32 + 1);
        let enb = if i == 1 {
            // The middle eNodeB suffers a lossy control link plus two
            // scripted partitions long enough to trip liveness failover.
            let faults = FaultHandle::new(23);
            faults.set_config(FaultConfig {
                drop_prob: 0.02,
                ..FaultConfig::default()
            });
            faults.partition_between(Tti(800), Tti(1_300));
            faults.partition_between(Tti(2_400), Tti(2_700));
            sim.add_enb_with_faults(
                EnbConfig::single_cell(enb_id),
                AgentConfig::default(),
                EnbParams::default(),
                Some((
                    LinkConfig::with_one_way_ms(2),
                    LinkConfig::with_one_way_ms(2),
                )),
                faults,
            )
        } else {
            sim.add_enb(EnbConfig::single_cell(enb_id), AgentConfig::default())
        };
        sim.map_cell_to_site(enb, CellId(0), *site);
        site_map.insert(*site as u32, (enb, CellId(0)));
        enbs.push(enb);
    }
    sim.master_mut()
        .register_app(Box::new(MobilityManagerApp::new(site_map)));

    let mut ues = Vec::new();
    for (i, enb) in enbs.iter().enumerate() {
        for u in 0..UES_PER_ENB {
            let ue = if u < 2 {
                // Travellers: start near the border with the neighbour
                // site and drive across it at ~30 m/s, so handovers fire
                // well within the run.
                let (heading, start_x) = if i + 1 < N_ENBS {
                    (0.0, i as f64 * 900.0 + 380.0 + u as f64 * 40.0)
                } else {
                    (
                        std::f64::consts::PI,
                        i as f64 * 900.0 - 380.0 - u as f64 * 40.0,
                    )
                };
                let ue = sim.add_ue(
                    *enb,
                    CellId(0),
                    SliceId::MNO,
                    0,
                    UeRadioSpec::Geo(
                        Box::new(LinearMotion {
                            start: Position::new(start_x, 0.0),
                            speed_mps: 30.0,
                            heading_rad: heading,
                        }),
                        sites[i],
                    ),
                );
                sim.enable_measurements(ue, 200);
                ue
            } else {
                sim.add_ue(
                    *enb,
                    CellId(0),
                    SliceId::MNO,
                    (u % 2) as u8,
                    UeRadioSpec::Fading(14.0, 4.0, 0.9, 1000 + (i * UES_PER_ENB + u) as u64),
                )
            };
            if u % 2 == 0 {
                sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
            } else {
                sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(2))));
                sim.set_ul_traffic(ue, Box::new(CbrSource::new(BitRate::from_kbps(256))));
            }
            ues.push(ue);
        }
    }
    (sim, ues)
}

/// Run the scenario and digest every observable along the way.
fn run(workers: Option<usize>, shards: ShardSpec) -> (u64, u64, u64) {
    let (mut sim, ues) = build(workers, shards);
    let mut events_digest = 0xcbf29ce484222325u64;
    let mut scratch = String::new();
    for _ in 0..TTIS {
        sim.step();
        for (enb, ev) in &sim.last_events {
            scratch.clear();
            use std::fmt::Write as _;
            let _ = write!(scratch, "{enb:?}|{ev:?}");
            fnv_str(&mut events_digest, &scratch);
        }
    }
    let mut stats_digest = 0xcbf29ce484222325u64;
    for ue in &ues {
        scratch.clear();
        use std::fmt::Write as _;
        let _ = write!(
            scratch,
            "{ue:?}={:?}:{:?}",
            sim.serving_enb(*ue),
            sim.ue_stats(*ue)
        );
        fnv_str(&mut stats_digest, &scratch);
    }
    let mut rib_digest = 0xcbf29ce484222325u64;
    fnv_str(&mut rib_digest, &format!("{:?}", sim.master().merged_rib()));
    (events_digest, stats_digest, rib_digest)
}

#[test]
fn parallel_engine_is_bit_identical_to_serial() {
    let serial = run(None, ShardSpec::Auto);
    for workers in [2, 4] {
        let parallel = run(Some(workers), ShardSpec::Auto);
        assert_eq!(
            serial.0, parallel.0,
            "event stream diverged at workers={workers}"
        );
        assert_eq!(
            serial.1, parallel.1,
            "UE stats diverged at workers={workers}"
        );
        assert_eq!(serial.2, parallel.2, "RIB diverged at workers={workers}");
    }
}

#[test]
fn sharded_control_plane_is_bit_identical_to_one_shard() {
    // The shard matrix vs. the 1-shard serial baseline: every worker
    // count × shard spec must reproduce the exact same observables,
    // including runs where the travellers' handovers cross a shard
    // boundary (Fixed(2) puts EnbId 1 and 3 on shard 1 and EnbId 2 on
    // shard 0, so every inter-site handover is cross-shard).
    let baseline = run(None, ShardSpec::Auto);
    let matrix = [
        (None, ShardSpec::Fixed(2)),
        (Some(2), ShardSpec::Fixed(2)),
        (Some(4), ShardSpec::Fixed(4)),
        (Some(2), ShardSpec::PerAgent),
        (Some(4), ShardSpec::PerAgent),
    ];
    for (workers, shards) in matrix {
        let sharded = run(workers, shards);
        assert_eq!(
            baseline.0, sharded.0,
            "event stream diverged at workers={workers:?} shards={shards:?}"
        );
        assert_eq!(
            baseline.1, sharded.1,
            "UE stats diverged at workers={workers:?} shards={shards:?}"
        );
        assert_eq!(
            baseline.2, sharded.2,
            "RIB diverged at workers={workers:?} shards={shards:?}"
        );
    }
}

/// Slab-RIB golden: the scale experiment's 1 eNB × 16 UE grid point,
/// reproduced exactly (seed, radio specs, warm-up + measured TTI count),
/// must digest to the value committed in BENCH_scale.json *before* the
/// RIB was flattened from B-tree nodes onto index-addressed slabs. This
/// pins the slab layout to the historical observable stream: any layout
/// change that reorders iteration or perturbs state is caught here, for
/// every worker count × shard spec.
#[test]
fn slab_rib_digests_match_pre_flattening_goldens() {
    // Golden recorded pre-flattening (BENCH_scale.json, enbs=1,
    // ues_per_enb=16, seed 7, 100 warm-up + 2000 measured TTIs).
    const GOLDEN_1X16: &str = "0a3e0d5c0635f4e2";
    const SCALE_SEED: u64 = 7;
    const SCALE_TTIS: u64 = 2_100;
    const N_UES: u32 = 16;

    fn fnv_u64(h: &mut u64, v: u64) {
        for b in v.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100000001b3);
        }
    }

    let run_scale_point = |workers: Option<usize>, shards: ShardSpec| -> String {
        let mut sim = SimHarness::new(SimConfig {
            seed: SCALE_SEED,
            workers,
            master: TaskManagerConfig {
                shards,
                ..TaskManagerConfig::default()
            },
            ..SimConfig::default()
        });
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
        for u in 0..N_UES as u64 {
            let ue = sim.add_ue(
                enb,
                CellId(0),
                SliceId::MNO,
                0,
                UeRadioSpec::Fading(15.0, 4.0, 0.95, SCALE_SEED ^ u),
            );
            sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
        }
        sim.run(SCALE_TTIS);
        let mut h = 0xcbf29ce484222325u64;
        for id in 1..=N_UES {
            let s = sim.ue_stats(UeId(id)).expect("UE exists");
            fnv_u64(&mut h, s.dl_delivered_bits);
            fnv_u64(&mut h, s.ul_delivered_bits);
            fnv_u64(&mut h, s.dl_queue_bytes.as_u64());
            fnv_u64(&mut h, s.cqi.0 as u64);
            fnv_u64(&mut h, s.harq_tx + s.harq_retx);
        }
        format!("{h:016x}")
    };

    for workers in [None, Some(2), Some(4)] {
        for shards in [
            ShardSpec::Fixed(1),
            ShardSpec::Fixed(2),
            ShardSpec::Fixed(4),
            ShardSpec::PerAgent,
        ] {
            assert_eq!(
                run_scale_point(workers, shards),
                GOLDEN_1X16,
                "slab-RIB digest diverged from the pre-flattening golden at \
                 workers={workers:?} shards={shards:?}"
            );
        }
    }
}

#[test]
fn sharded_scenario_exercises_cross_shard_handovers() {
    // The matrix above is only meaningful if handovers actually cross
    // shard boundaries: under Fixed(2) the mobility manager's commands
    // route between the two shards through the cross-shard mailbox.
    let (mut sim, _ues) = build(Some(2), ShardSpec::Fixed(2));
    for _ in 0..TTIS {
        sim.step();
    }
    assert_eq!(sim.master().n_shards(), 2);
    assert!(
        sim.master().cross_shard_handovers() > 0,
        "no handover ever crossed a shard boundary — the matrix is too tame"
    );
}

#[test]
fn scenario_actually_exercises_handovers_and_faults() {
    // The determinism assertion above is only meaningful if the scenario
    // produces the hard cases: cross-agent handovers and failover events.
    let (mut sim, ues) = build(Some(2), ShardSpec::Auto);
    let mut saw_handover = false;
    let start_serving: Vec<_> = ues.iter().map(|u| sim.serving_enb(*u)).collect();
    for _ in 0..TTIS {
        sim.step();
        for (_, ev) in &sim.last_events {
            let s = format!("{ev:?}");
            if s.contains("Handover") {
                saw_handover = true;
            }
        }
    }
    let moved = ues
        .iter()
        .zip(&start_serving)
        .filter(|(u, s0)| sim.serving_enb(**u) != **s0)
        .count();
    assert!(
        saw_handover || moved > 0,
        "no handover activity — scenario too tame for a determinism test"
    );
}
