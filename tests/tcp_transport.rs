//! Deployment-mode integration: master and agent speaking the FlexRAN
//! protocol over a real TCP socket (localhost), as in the paper's testbed
//! (dedicated Ethernet between controller and eNodeB machines).
//!
//! Both endpoints are driven from one thread — the transports are
//! non-blocking — so the test stays deterministic apart from socket
//! scheduling, which only affects *when* messages land, not what happens.

use flexran::agent::{AgentConfig, FlexranAgent, PolicyDoc, VsfRegistry};
use flexran::apps::CentralizedScheduler;
use flexran::controller::{MasterController, TaskManagerConfig};
use flexran::prelude::*;
use flexran::proto::{ReportConfig, ReportFlags, ReportType, TcpTransport};
use flexran::stack::enb::{Enb, EnbParams, StaticPhyView};
use flexran::stack::mac::scheduler::RoundRobinScheduler;
use flexran::types::units::Bytes;

fn tcp_pair() -> (TcpTransport, TcpTransport) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || TcpTransport::connect(&addr.to_string()).unwrap());
    let (server_stream, _) = listener.accept().unwrap();
    let server = TcpTransport::from_stream(server_stream).unwrap();
    (client.join().unwrap(), server)
}

#[test]
fn master_and_agent_over_real_tcp() {
    let (agent_side, master_side) = tcp_pair();
    let enb = Enb::new(EnbConfig::single_cell(EnbId(1)), EnbParams::default()).unwrap();
    let mut agent = FlexranAgent::new(
        enb,
        agent_side,
        VsfRegistry::with_builtins(),
        AgentConfig {
            sync_period: 1,
            ..AgentConfig::default()
        },
    );
    let mut master = MasterController::new(TaskManagerConfig::default());
    master.add_agent(Box::new(master_side));
    master.register_app(Box::new(CentralizedScheduler::new(
        4,
        Box::new(RoundRobinScheduler::new()),
    )));

    let mut phy = StaticPhyView(22.0);
    let rnti = agent
        .enb_mut()
        .rach(CellId(0), UeId(1), SliceId::MNO, 0, Tti(0))
        .unwrap();

    let mut subscribed = false;
    let mut reconfigured = false;
    for t in 1..3000u64 {
        let tti = Tti(t);
        agent.run_tti(tti, &mut phy);
        master.run_cycle(tti);
        if !subscribed && master.view().agent(EnbId(1)).is_some() {
            master
                .request_stats(
                    EnbId(1),
                    ReportConfig {
                        report_type: ReportType::Periodic { period: 1 },
                        flags: ReportFlags::ALL,
                    },
                )
                .unwrap();
            subscribed = true;
        }
        // Once attached, switch the agent to pure remote scheduling.
        if subscribed && !reconfigured {
            if let Ok(s) = agent.enb().ue_stat(CellId(0), rnti) {
                if s.connected {
                    master
                        .reconfigure(
                            EnbId(1),
                            PolicyDoc::single(
                                "mac",
                                "dl_ue_scheduler",
                                Some("remote-stub"),
                                vec![],
                            )
                            .to_yaml(),
                        )
                        .unwrap();
                    reconfigured = true;
                }
            }
        }
        if reconfigured {
            // Keep the downlink saturated.
            let queue = agent
                .enb()
                .ue_stat(CellId(0), rnti)
                .map(|s| s.dl_queue_bytes.as_u64())
                .unwrap_or(0);
            if queue < 200_000 {
                let _ =
                    agent
                        .enb_mut()
                        .inject_dl_traffic(CellId(0), rnti, Bytes(200_000 - queue), tti);
            }
        }
    }

    assert!(subscribed, "hello reached the master over TCP");
    assert!(reconfigured, "UE attached and the policy swap applied");
    // The RIB mirrors the UE through real-TCP stats reports.
    let rib_ue = master
        .view()
        .agent(EnbId(1))
        .and_then(|a| a.cell(CellId(0)))
        .and_then(|c| c.ue(rnti));
    assert!(rib_ue.is_some(), "UE visible in the RIB");
    // Remote decisions flowed back and moved real data.
    let stats = agent.enb().ue_stat(CellId(0), rnti).unwrap();
    assert!(
        stats.dl_delivered_bits > 10_000_000,
        "remote-scheduled goodput over TCP: {} bits",
        stats.dl_delivered_bits
    );
    assert_eq!(agent.counters().transport_errors, 0);
    assert_eq!(agent.counters().policy_errors, 0);
}
