//! End-to-end integration: eNodeB data plane ↔ agent ↔ FlexRAN protocol ↔
//! master controller, over emulated control channels.

use flexran::agent::AgentConfig;
use flexran::apps::CentralizedScheduler;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::link::LinkConfig;
use flexran::sim::traffic::{CbrSource, FullBufferSource};
use flexran::stack::mac::scheduler::RoundRobinScheduler;

fn remote_agent_config() -> AgentConfig {
    AgentConfig {
        initial_dl_scheduler: Some("remote-stub".into()),
        sync_period: 1,
        ..AgentConfig::default()
    }
}

fn subscribe_all(sim: &mut SimHarness, enb: EnbId, period: u32) {
    let _ = sim.master_mut().request_stats(
        enb,
        flexran::proto::ReportConfig {
            report_type: flexran::proto::ReportType::Periodic { period },
            flags: flexran::proto::ReportFlags::ALL,
        },
    );
}

#[test]
fn multi_enb_rib_converges() {
    let mut sim = SimHarness::new(SimConfig::default());
    for i in 1..=3u32 {
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(i)), AgentConfig::default());
        for _ in 0..4 {
            sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10));
        }
    }
    sim.run(2); // hellos land
    for i in 1..=3u32 {
        subscribe_all(&mut sim, EnbId(i), 5);
    }
    sim.run(200);
    let rib = sim.master().view();
    assert_eq!(rib.n_agents(), 3);
    assert_eq!(rib.n_ues(), 12, "all UEs visible in the RIB forest");
    for agent in rib.agents() {
        let cell = agent.cells().first().expect("cell reported");
        for ue in cell.ues() {
            assert!(ue.report.connected);
            assert_eq!(ue.report.wideband_cqi, 10);
        }
    }
}

#[test]
fn centralized_scheduling_over_ideal_link() {
    // Remote-stub at the agent; every DCI comes from the master app.
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), remote_agent_config());
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(15));
    sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
    sim.master_mut()
        .register_app(Box::new(CentralizedScheduler::new(
            2,
            Box::new(RoundRobinScheduler::new()),
        )));
    sim.run(5);
    subscribe_all(&mut sim, EnbId(1), 1);
    sim.run(3000);
    let stats = sim.ue_stats(ue).expect("attached remotely");
    assert!(stats.connected, "attach completed via remote scheduling");
    let mbps = stats.dl_delivered_bits as f64 / 3000.0 / 1000.0;
    assert!(
        mbps > 20.0,
        "remote full-buffer throughput {mbps} Mb/s at CQI 15"
    );
    // The decisions really were remote.
    let cell_stats = sim
        .agent(EnbId(1))
        .unwrap()
        .enb()
        .cell_stats(CellId(0))
        .unwrap();
    assert!(cell_stats.decisions_applied > 1000);
}

#[test]
fn insufficient_schedule_ahead_blocks_attachment() {
    // 20 ms RTT, schedule-ahead of 4 subframes: every decision misses its
    // deadline — the Fig. 9 lower triangle.
    let cfg = SimConfig {
        uplink: LinkConfig::with_one_way_ms(10),
        downlink: LinkConfig::with_one_way_ms(10),
        ..SimConfig::default()
    };
    let mut sim = SimHarness::new(cfg);
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), remote_agent_config());
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(15));
    sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
    sim.master_mut()
        .register_app(Box::new(CentralizedScheduler::new(
            4, // < RTT: hopeless
            Box::new(RoundRobinScheduler::new()),
        )));
    sim.run(30);
    subscribe_all(&mut sim, EnbId(1), 1);
    sim.run(3000);
    let delivered = sim.ue_stats(ue).map(|s| s.dl_delivered_bits).unwrap_or(0);
    assert_eq!(delivered, 0, "no data can flow when n < RTT");
    let cell_stats = sim
        .agent(EnbId(1))
        .unwrap()
        .enb()
        .cell_stats(CellId(0))
        .unwrap();
    assert!(
        cell_stats.missed_deadlines > 100,
        "late decisions were dropped: {}",
        cell_stats.missed_deadlines
    );
    assert!(cell_stats.attach_failures > 10);
}

#[test]
fn sufficient_schedule_ahead_tolerates_latency() {
    // Same 20 ms RTT but n = 30 ≥ RTT: attachment and traffic succeed
    // (the Fig. 9 upper triangle).
    let cfg = SimConfig {
        uplink: LinkConfig::with_one_way_ms(10),
        downlink: LinkConfig::with_one_way_ms(10),
        ..SimConfig::default()
    };
    let mut sim = SimHarness::new(cfg);
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), remote_agent_config());
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(15));
    sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
    sim.master_mut()
        .register_app(Box::new(CentralizedScheduler::new(
            30,
            Box::new(RoundRobinScheduler::new()),
        )));
    sim.run(30);
    subscribe_all(&mut sim, EnbId(1), 1);
    sim.run(5000);
    let stats = sim.ue_stats(ue).expect("attached despite 20 ms RTT");
    assert!(stats.connected);
    let mbps = stats.dl_delivered_bits as f64 / 5000.0 / 1000.0;
    assert!(mbps > 15.0, "throughput with ahead ≥ RTT: {mbps} Mb/s");
}

#[test]
fn signalling_overhead_is_accounted_per_category() {
    use flexran::proto::{MessageCategory, Transport};
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), remote_agent_config());
    let mut ues = Vec::new();
    for _ in 0..5 {
        ues.push(sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10)));
    }
    sim.master_mut()
        .register_app(Box::new(CentralizedScheduler::new(
            2,
            Box::new(RoundRobinScheduler::new()),
        )));
    for ue in &ues {
        sim.set_dl_traffic(*ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
    }
    sim.run(5);
    subscribe_all(&mut sim, EnbId(1), 1);
    sim.run(1000);
    let tx = sim.agent(EnbId(1)).unwrap().transport().tx_counters();
    // Per-TTI sync + per-TTI stats must dominate agent→master traffic.
    assert!(tx.messages(MessageCategory::Sync) >= 1000);
    assert!(tx.messages(MessageCategory::StatsReporting) >= 990);
    assert!(
        tx.bytes(MessageCategory::StatsReporting) > 10 * tx.bytes(MessageCategory::Sync),
        "stats dwarf sync"
    );
    // UE reports make stats messages grow with the UE count.
    let per_msg =
        tx.bytes(MessageCategory::StatsReporting) / tx.messages(MessageCategory::StatsReporting);
    assert!(
        per_msg > 800,
        "5 UEs × full report ≈ >800 B per message, got {per_msg}"
    );
}

#[test]
fn cbr_delivery_is_rate_faithful_across_latencies() {
    for latency in [0u64, 15] {
        let cfg = SimConfig {
            uplink: LinkConfig::with_one_way_ms(latency),
            downlink: LinkConfig::with_one_way_ms(latency),
            ..SimConfig::default()
        };
        let mut sim = SimHarness::new(cfg);
        // Local scheduling: control latency must not matter.
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
        let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(3))));
        sim.run(4000);
        let stats = sim.ue_stats(ue).unwrap();
        let mbps = stats.dl_delivered_bits as f64 / 4000.0 / 1000.0;
        assert!(
            (2.6..=3.2).contains(&mbps),
            "local scheduling at {latency} ms control latency: {mbps} Mb/s"
        );
    }
}

#[test]
fn uplink_traffic_flows_end_to_end() {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    sim.set_ul_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(2))));
    sim.run(3000);
    let stats = sim.ue_stats(ue).unwrap();
    let mbps = stats.ul_delivered_bits as f64 / 3000.0 / 1000.0;
    assert!(
        (1.6..=2.2).contains(&mbps),
        "uplink CBR delivered {mbps} Mb/s"
    );
}

#[test]
fn multi_cell_enb_serves_both_cells() {
    // One eNodeB with two cells: the agent's control modules drive both.
    let mut sim = SimHarness::new(SimConfig::default());
    let mut cfg = EnbConfig::single_cell(EnbId(1));
    cfg.cells
        .push(flexran::types::config::CellConfig::paper_default(CellId(1)));
    let enb = sim.add_enb(cfg, AgentConfig::default());
    let ue_a = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    let ue_b = sim.add_ue(enb, CellId(1), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    sim.set_dl_traffic(ue_a, Box::new(CbrSource::new(BitRate::from_mbps(2))));
    sim.set_dl_traffic(ue_b, Box::new(CbrSource::new(BitRate::from_mbps(2))));
    sim.run(3000);
    for ue in [ue_a, ue_b] {
        let s = sim.ue_stats(ue).expect("attached");
        assert!(s.connected);
        let mbps = s.dl_delivered_bits as f64 / 3000.0 / 1000.0;
        assert!((1.7..=2.2).contains(&mbps), "cell-local CBR: {mbps} Mb/s");
    }
    // Each cell keeps independent statistics.
    let agent = sim.agent(EnbId(1)).unwrap();
    for cell in [CellId(0), CellId(1)] {
        assert_eq!(agent.enb().n_ues(cell).unwrap(), 1);
        assert!(agent.enb().cell_stats(cell).unwrap().dl_prbs_used > 0);
    }
}
