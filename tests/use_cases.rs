//! The paper's use cases (§6) end to end: interference management,
//! RAN sharing, MEC assistance and mobility management.

use std::collections::BTreeMap;

use flexran::agent::{AgentConfig, PolicyDoc};
use flexran::apps::eicic::{standard_abs_pattern, AbsAwareScheduler, OptimizedEicicApp};
use flexran::apps::{MecDashApp, MobilityManagerApp};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::phy::geometry::{Environment, PathLossModel, Position, TxSite};
use flexran::phy::mobility::LinearMotion;
use flexran::prelude::*;
use flexran::sim::radio::RadioEnvironment;
use flexran::sim::traffic::{CbrSource, OnOffSource};
use flexran::stack::mac::scheduler::ParamValue;
use flexran::types::units::Dbm;

const MACRO: EnbId = EnbId(1);
const SMALL: EnbId = EnbId(2);
const CELL: CellId = CellId(0);

/// Build the HetNet of §6.1: one macro cell, one small cell, three macro
/// UEs (two of them in the small cell's interference zone) and one
/// protected small-cell UE.
fn hetnet(mode: &str) -> (SimHarness, Vec<UeId>, UeId) {
    let mut env = Environment::new(10_000_000);
    let macro_site = env.add_site(TxSite {
        position: Position::new(0.0, 0.0),
        tx_power: Dbm(43.0),
        path_loss: PathLossModel::UrbanMacro,
    });
    let small_site = env.add_site(TxSite {
        position: Position::new(400.0, 0.0),
        tx_power: Dbm(30.0),
        path_loss: PathLossModel::SmallCell,
    });
    let radio = RadioEnvironment::with_geometry(env);
    let mut sim = SimHarness::with_radio(SimConfig::default(), radio);

    let pattern = standard_abs_pattern(8);
    let (macro_sched, small_sched, coordinated) = match mode {
        "uncoordinated" => ("round-robin", "round-robin", false),
        "eicic" => ("macro-eicic", "small-eicic", true),
        "optimized" => ("macro-eicic", "small-eicic", true),
        other => panic!("unknown mode {other}"),
    };
    let macro_agent_cfg = AgentConfig {
        initial_dl_scheduler: Some("round-robin".into()),
        sync_period: if mode == "optimized" { 1 } else { 0 },
        ..AgentConfig::default()
    };
    sim.add_enb(EnbConfig::single_cell(MACRO), macro_agent_cfg);
    let mut small_cfg = EnbConfig::single_cell(SMALL);
    small_cfg.cells[0] = CellConfig::small_cell(CELL);
    sim.add_enb(small_cfg, AgentConfig::default());
    sim.map_cell_to_site(MACRO, CELL, macro_site);
    sim.map_cell_to_site(SMALL, CELL, small_site);
    if coordinated {
        // Custom 8-ABS schedulers, pre-staged in the caches (the bench
        // harness pushes them over the wire; here we stage directly).
        sim.agent_mut(MACRO).unwrap().mac.dl.insert(
            "macro-eicic8",
            Box::new(AbsAwareScheduler::macro_side(pattern)),
        );
        sim.agent_mut(SMALL).unwrap().mac.dl.insert(
            "small-eicic8",
            Box::new(AbsAwareScheduler::small_side(pattern)),
        );
        sim.agent_mut(MACRO)
            .unwrap()
            .mac
            .dl
            .activate("macro-eicic8")
            .unwrap();
        sim.agent_mut(SMALL)
            .unwrap()
            .mac
            .dl
            .activate("small-eicic8")
            .unwrap();
        sim.set_site_activity_pattern(macro_site, pattern, false);
        sim.set_site_activity_pattern(small_site, pattern, true);
        let _ = (macro_sched, small_sched);
    }

    // Macro UEs: one clean, two in the small cell's interference zone.
    let mut macro_ues = Vec::new();
    for x in [150.0, 350.0, 370.0] {
        let ue = sim.add_ue(
            MACRO,
            CELL,
            SliceId::MNO,
            0,
            UeRadioSpec::Geo(
                Box::new(flexran::phy::mobility::Stationary(Position::new(x, 0.0))),
                macro_site,
            ),
        );
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(12))));
        macro_ues.push(ue);
    }
    // Small-cell UE at the small cell's edge (interference-limited
    // without eICIC).
    let small_ue = sim.add_ue(
        SMALL,
        CELL,
        SliceId::MNO,
        0,
        UeRadioSpec::Geo(
            Box::new(flexran::phy::mobility::Stationary(Position::new(
                330.0, 0.0,
            ))),
            small_site,
        ),
    );
    // Bursty small-cell traffic: the optimized coordinator exploits the
    // OFF periods (paper: "periods of inactivity of the small-cells").
    sim.set_dl_traffic(
        small_ue,
        Box::new(OnOffSource::new(BitRate::from_mbps(4), 1000, 1000)),
    );

    if mode == "optimized" {
        sim.master_mut()
            .register_app(Box::new(OptimizedEicicApp::new(
                MACRO,
                0,
                vec![(SMALL, 0)],
                pattern,
                6,
            )));
        sim.run(3);
        for enb in [MACRO, SMALL] {
            let _ = sim.master_mut().request_stats(
                enb,
                flexran::proto::ReportConfig {
                    report_type: flexran::proto::ReportType::Periodic { period: 1 },
                    flags: flexran::proto::ReportFlags::ALL,
                },
            );
        }
    }
    (sim, macro_ues, small_ue)
}

fn run_hetnet(mode: &str, ttis: u64) -> (f64, f64) {
    let (mut sim, macro_ues, small_ue) = hetnet(mode);
    sim.run(ttis);
    let macro_mbps: f64 = macro_ues
        .iter()
        .map(|ue| {
            sim.ue_stats(*ue)
                .map(|s| s.dl_delivered_bits as f64 / ttis as f64 / 1000.0)
                .unwrap_or(0.0)
        })
        .sum();
    let small_mbps = sim
        .ue_stats(small_ue)
        .map(|s| s.dl_delivered_bits as f64 / ttis as f64 / 1000.0)
        .unwrap_or(0.0);
    (macro_mbps, small_mbps)
}

#[test]
fn eicic_ordering_matches_paper() {
    let ttis = 6000;
    let (macro_u, small_u) = run_hetnet("uncoordinated", ttis);
    let (macro_e, small_e) = run_hetnet("eicic", ttis);
    let (macro_o, small_o) = run_hetnet("optimized", ttis);
    let total_u = macro_u + small_u;
    let total_e = macro_e + small_e;
    let total_o = macro_o + small_o;
    // Fig. 10a ordering: optimized > eICIC > uncoordinated.
    assert!(
        total_e > total_u * 1.3,
        "eICIC {total_e:.1} vs uncoordinated {total_u:.1} Mb/s"
    );
    assert!(
        total_o > total_e * 1.02,
        "optimized {total_o:.1} vs eICIC {total_e:.1} Mb/s"
    );
    // Fig. 10b: the small cell keeps its throughput; the macro gains.
    assert!(
        (small_o - small_e).abs() < 0.35 * small_e.max(0.5),
        "small cell equal: {small_e:.2} vs {small_o:.2}"
    );
    assert!(
        macro_o > macro_e,
        "macro gains the idle ABS: {macro_e:.1} vs {macro_o:.1}"
    );
}

#[test]
fn slicing_shares_steer_throughput_dynamically() {
    // Fig. 12a in miniature: 70/30 → 40/60 mid-run.
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    sim.run(2);
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "mac",
                "dl_ue_scheduler",
                Some("slice-scheduler"),
                vec![
                    ("slice_shares".into(), ParamValue::List(vec![0.7, 0.3])),
                    ("policies".into(), ParamValue::Str("fair,fair".into())),
                ],
            )
            .to_yaml(),
        )
        .unwrap();
    let mut ues = Vec::new();
    for i in 0..10 {
        let slice = SliceId((i % 2) as u8);
        let ue = sim.add_ue(enb, CELL, slice, 0, UeRadioSpec::FixedCqi(10));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(4))));
        ues.push((ue, slice));
    }
    sim.run(3000);
    let bits_at_phase1: Vec<u64> = ues
        .iter()
        .map(|(ue, _)| sim.ue_stats(*ue).map(|s| s.dl_delivered_bits).unwrap_or(0))
        .collect();
    let slice_rate = |bits: &[u64], prev: &[u64], slice: SliceId| -> f64 {
        ues.iter()
            .zip(bits.iter().zip(prev.iter()))
            .filter(|((_, s), _)| *s == slice)
            .map(|(_, (b, p))| (*b - *p) as f64)
            .sum::<f64>()
            / 3000.0
            / 1000.0
    };
    let zeros = vec![0u64; ues.len()];
    let mno_1 = slice_rate(&bits_at_phase1, &zeros, SliceId(0));
    let mvno_1 = slice_rate(&bits_at_phase1, &zeros, SliceId(1));
    assert!(
        mno_1 > mvno_1 * 1.6,
        "70/30 phase: MNO {mno_1:.1} vs MVNO {mvno_1:.1} Mb/s"
    );
    // Reconfigure to 40/60.
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "mac",
                "dl_ue_scheduler",
                None,
                vec![("slice_shares".into(), ParamValue::List(vec![0.4, 0.6]))],
            )
            .to_yaml(),
        )
        .unwrap();
    sim.run(3000);
    let bits_at_phase2: Vec<u64> = ues
        .iter()
        .map(|(ue, _)| sim.ue_stats(*ue).map(|s| s.dl_delivered_bits).unwrap_or(0))
        .collect();
    let mno_2 = slice_rate(&bits_at_phase2, &bits_at_phase1, SliceId(0));
    let mvno_2 = slice_rate(&bits_at_phase2, &bits_at_phase1, SliceId(1));
    assert!(
        mvno_2 > mno_2 * 1.2,
        "40/60 phase: MNO {mno_2:.1} vs MVNO {mvno_2:.1} Mb/s"
    );
}

#[test]
fn mec_hints_track_the_channel() {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    // CQI toggles 10 ↔ 4 every 2 s, as in the paper's second MEC case.
    let ue = sim.add_ue(
        enb,
        CELL,
        SliceId::MNO,
        0,
        UeRadioSpec::CqiSquareWave(10, 4, 2000),
    );
    let app = MecDashApp::new();
    let hints = app.hint_channel();
    sim.master_mut().register_app(Box::new(app));
    sim.run(3);
    let _ = sim.master_mut().request_stats(
        enb,
        flexran::proto::ReportConfig {
            report_type: flexran::proto::ReportType::Periodic { period: 10 },
            flags: flexran::proto::ReportFlags::ALL,
        },
    );
    // High phase.
    sim.run(1800);
    let rnti = sim.ue_stats(ue).unwrap().rnti;
    let high = hints.read()[&(EnbId(1), rnti)];
    assert!(high.as_mbps_f64() > 8.0, "high-CQI hint {high}");
    // Low phase (plus EMA settling).
    sim.run(2000);
    let low = hints.read()[&(EnbId(1), rnti)];
    assert!(low.as_mbps_f64() < 5.0, "low-CQI hint {low}");
    assert!(low < high);
}

#[test]
fn mobility_manager_hands_over_a_moving_ue() {
    // Two macro sites 1 km apart; the UE drives from one to the other.
    let mut env = Environment::new(10_000_000);
    let site_a = env.add_site(TxSite {
        position: Position::new(0.0, 0.0),
        tx_power: Dbm(43.0),
        path_loss: PathLossModel::UrbanMacro,
    });
    let site_b = env.add_site(TxSite {
        position: Position::new(1000.0, 0.0),
        tx_power: Dbm(43.0),
        path_loss: PathLossModel::UrbanMacro,
    });
    let radio = RadioEnvironment::with_geometry(env);
    let mut sim = SimHarness::with_radio(SimConfig::default(), radio);
    let enb_a = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    let enb_b = sim.add_enb(EnbConfig::single_cell(EnbId(2)), AgentConfig::default());
    sim.map_cell_to_site(enb_a, CELL, site_a);
    sim.map_cell_to_site(enb_b, CELL, site_b);
    let mut site_map = BTreeMap::new();
    site_map.insert(site_a as u32, (enb_a, CELL));
    site_map.insert(site_b as u32, (enb_b, CELL));
    sim.master_mut()
        .register_app(Box::new(MobilityManagerApp::new(site_map)));

    let ue = sim.add_ue(
        enb_a,
        CELL,
        SliceId::MNO,
        0,
        UeRadioSpec::Geo(
            Box::new(LinearMotion {
                start: Position::new(200.0, 0.0),
                speed_mps: 120.0,
                heading_rad: 0.0,
            }),
            site_a,
        ),
    );
    sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
    sim.enable_measurements(ue, 200);
    assert_eq!(sim.serving_enb(ue), Some(enb_a));
    sim.run(6000); // 6 s at 120 m/s: 200 m → 920 m
    assert_eq!(
        sim.serving_enb(ue),
        Some(enb_b),
        "the UE should have been handed over to the closer cell"
    );
    let stats = sim.ue_stats(ue).expect("served at target");
    assert!(stats.connected);
    // Service continued at the target: bytes flowed after the handover.
    let before = stats.dl_delivered_bits;
    sim.run(1000);
    assert!(sim.ue_stats(ue).unwrap().dl_delivered_bits > before);
}

#[test]
fn conflict_guard_arbitrates_between_scheduler_apps() {
    // Two centralized schedulers scoped to the SAME cell: the conflict
    // guard must let exactly one of them own each subframe (paper §7.3's
    // conflict-resolution extension).
    use flexran::apps::CentralizedScheduler;
    use flexran::stack::mac::scheduler::{MaxCqiScheduler, RoundRobinScheduler};

    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(
        EnbConfig::single_cell(EnbId(1)),
        AgentConfig {
            initial_dl_scheduler: Some("remote-stub".into()),
            sync_period: 1,
            ..AgentConfig::default()
        },
    );
    let ue = sim.add_ue(enb, CELL, SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    sim.set_dl_traffic(
        ue,
        Box::new(flexran::sim::traffic::FullBufferSource::default()),
    );
    sim.master_mut()
        .register_app(Box::new(CentralizedScheduler::new(
            2,
            Box::new(RoundRobinScheduler::new()),
        )));
    sim.master_mut()
        .register_app(Box::new(CentralizedScheduler::new(
            2,
            Box::new(MaxCqiScheduler::new()),
        )));
    sim.run(5);
    let _ = sim.master_mut().request_stats(
        enb,
        flexran::proto::ReportConfig {
            report_type: flexran::proto::ReportType::Periodic { period: 1 },
            flags: flexran::proto::ReportFlags::ALL,
        },
    );
    sim.run(2000);
    // The second app's claims were refused at the master...
    assert!(
        sim.master().conflicts() > 500,
        "conflicts detected: {}",
        sim.master().conflicts()
    );
    // ...so the agent saw a consistent decision stream and served the UE.
    let stats = sim.ue_stats(ue).expect("attached");
    assert!(stats.connected);
    assert!(stats.dl_delivered_bits > 10_000_000);
    assert_eq!(
        sim.agent(enb)
            .unwrap()
            .enb()
            .cell_stats(CELL)
            .unwrap()
            .missed_deadlines,
        0,
        "no duplicate/garbled decisions reached the data plane"
    );
}

#[test]
fn drx_command_over_the_wire_gates_scheduling() {
    use flexran::proto::DrxCommand;
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    let ue = sim.add_ue(enb, CELL, SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    sim.set_dl_traffic(
        ue,
        Box::new(flexran::sim::traffic::FullBufferSource::default()),
    );
    sim.run(500);
    let full_rate = {
        let s = sim.ue_stats(ue).unwrap();
        s.dl_delivered_bits as f64 / 500.0
    };
    // Master configures a 25 % DRX duty cycle (cycle 40, on 10).
    let rnti = sim.ue_stats(ue).unwrap().rnti;
    sim.master_mut()
        .send_to(
            enb,
            flexran::proto::FlexranMessage::DrxCommand(DrxCommand {
                cell: 0,
                rnti: rnti.0,
                cycle_ttis: 40,
                on_duration_ttis: 10,
            }),
        )
        .unwrap();
    let before = sim.ue_stats(ue).unwrap().dl_delivered_bits;
    sim.run(2000);
    let drx_rate = (sim.ue_stats(ue).unwrap().dl_delivered_bits - before) as f64 / 2000.0;
    assert!(
        drx_rate < full_rate * 0.45,
        "DRX must cut throughput to ~the duty cycle: {:.0} vs {:.0} kb/s",
        drx_rate,
        full_rate
    );
    assert!(
        drx_rate > full_rate * 0.10,
        "but the on-duration still serves"
    );
}

#[test]
fn centralized_uplink_scheduling_over_the_wire() {
    use flexran::apps::CentralizedScheduler;
    use flexran::stack::mac::scheduler::{RoundRobinScheduler, UlRoundRobinScheduler};
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(
        EnbConfig::single_cell(EnbId(1)),
        AgentConfig {
            initial_dl_scheduler: Some("remote-stub".into()),
            initial_ul_scheduler: None, // uplink fully centralized too
            sync_period: 1,
            ..AgentConfig::default()
        },
    );
    let ue = sim.add_ue(enb, CELL, SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    sim.set_ul_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(2))));
    sim.master_mut().register_app(Box::new(
        CentralizedScheduler::new(2, Box::new(RoundRobinScheduler::new()))
            .with_uplink(Box::new(UlRoundRobinScheduler::new())),
    ));
    sim.run(5);
    let _ = sim.master_mut().request_stats(
        enb,
        flexran::proto::ReportConfig {
            report_type: flexran::proto::ReportType::Periodic { period: 1 },
            flags: flexran::proto::ReportFlags::ALL,
        },
    );
    sim.run(4000);
    let stats = sim.ue_stats(ue).expect("attached");
    assert!(stats.connected);
    let ul_mbps = stats.ul_delivered_bits as f64 / 4000.0 / 1000.0;
    assert!(
        (1.2..=2.2).contains(&ul_mbps),
        "remotely granted uplink delivered {ul_mbps} Mb/s of the 2 Mb/s offered"
    );
}
