//! Master crash-recovery integration: journaled RIB, crash, restart,
//! re-sync (DESIGN.md §9).
//!
//! The scenario: a journaled master observes two eNodeBs; the master
//! process crashes; the agents ride out the outage in local control with
//! zero data-plane interruption; the master restarts from its journal,
//! re-attaches the surviving links, and reconciles the RIB through the
//! resync protocol (Hello → ResyncRequest → ConfigReply + full stats).
//!
//! `scripts/check.sh` runs this under `--features debug-invariants`, so
//! the recovery path is also exercised against the RIB write-cycle
//! assertions (monotonic epochs, single-writer discipline).

use flexran::agent::liveness::{FailoverState, LivenessConfig};
use flexran::agent::AgentConfig;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::traffic::CbrSource;

fn liveness_agent_config() -> AgentConfig {
    AgentConfig {
        sync_period: 1,
        liveness: LivenessConfig {
            heartbeat_period: 5,
            liveness_timeout: 40,
            ..LivenessConfig::default()
        },
        ..AgentConfig::default()
    }
}

fn journaled_master() -> TaskManagerConfig {
    TaskManagerConfig {
        liveness_timeout: 40,
        journal_snapshot_every: 8,
        ..TaskManagerConfig::default()
    }
}

fn subscribe_all(sim: &mut SimHarness, enb: EnbId, period: u32) {
    sim.master_mut()
        .request_stats(
            enb,
            flexran::proto::ReportConfig {
                report_type: flexran::proto::ReportType::Periodic { period },
                flags: flexran::proto::ReportFlags::ALL,
            },
        )
        .expect("session exists");
}

#[test]
fn master_crash_recovery_resyncs_the_rib() {
    let cfg = SimConfig {
        master: journaled_master(),
        ..SimConfig::default()
    };
    let mut sim = SimHarness::new(cfg);
    let mut ues = Vec::new();
    for i in 1..=2u32 {
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(i)), liveness_agent_config());
        for _ in 0..3 {
            let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
            sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
            ues.push(ue);
        }
    }
    sim.run(5);
    for i in 1..=2u32 {
        subscribe_all(&mut sim, EnbId(i), 10);
    }
    sim.run(200);
    let rib = sim.master().view();
    assert_eq!(rib.n_agents(), 2, "both agents in the RIB before the crash");
    assert_eq!(rib.n_ues(), 6, "all UEs visible before the crash");

    // Crash. The journal survives "on disk"; the process state does not.
    sim.kill_master();
    let delivered_at_crash: Vec<u64> = ues
        .iter()
        .map(|u| sim.ue_stats(*u).expect("attached").dl_delivered_bits)
        .collect();
    sim.run(100);
    for i in 1..=2u32 {
        assert_eq!(
            sim.agent(EnbId(i)).unwrap().failover_state(),
            FailoverState::LocalControl,
            "agents must fail over while the master is dead"
        );
    }
    // Zero data-plane interruption: local control kept scheduling.
    for (u, before) in ues.iter().zip(&delivered_at_crash) {
        let after = sim.ue_stats(*u).expect("still attached").dl_delivered_bits;
        assert!(
            after > *before + 50_000,
            "UE {u} starved during the outage: {before} → {after} bits"
        );
    }

    // Restart from the journal: the recovered RIB is complete but stale.
    sim.restart_master().expect("recovery from journal");
    assert!(!sim.master_down());
    let rib = sim.master().view();
    assert_eq!(rib.n_agents(), 2, "journal replay rebuilt both subtrees");
    assert_eq!(rib.n_ues(), 6, "journal replay rebuilt every UE leaf");
    assert_eq!(
        rib.stale_agents().len(),
        2,
        "recovered state is pre-crash epochs until the agents re-sync"
    );

    // Re-sync: heartbeats resume, agents rejoin, resync requests draw
    // fresh config + stats, the replayed subscriptions start reporting.
    sim.run(300);
    let rib = sim.master().view();
    assert!(
        rib.stale_agents().is_empty(),
        "all agents re-synced after recovery: {:?}",
        rib.stale_agents()
    );
    assert_eq!(rib.n_ues(), 6, "reconciled RIB still has every UE");
    for i in 1..=2u32 {
        assert_eq!(
            sim.agent(EnbId(i)).unwrap().failover_state(),
            FailoverState::Connected,
            "agents back under master control"
        );
        let agent_node = rib.agent(EnbId(i)).expect("present");
        let sync = agent_node.synced_subframe().expect("sync resumed");
        assert!(
            sync.0 > 300,
            "post-recovery sync epoch must be post-crash, got {sync}"
        );
        for cell in agent_node.cells() {
            for ue in cell.ues() {
                assert!(ue.report.connected, "replayed subscription refreshed UEs");
            }
        }
    }
    // The replayed report subscriptions survive the crash: reports keep
    // the RIB fresh without anyone re-subscribing after the restart.
    assert_eq!(
        sim.master().liveness_stats().ups,
        2,
        "both sessions rejoined exactly once"
    );
}

#[test]
fn sharded_master_recovers_from_per_shard_journal_segments() {
    // Same crash/restart arc as above, but with the control plane split
    // across two RIB shards: each shard journals its own segment, the
    // crash parks the concatenated container, and recovery replays every
    // segment back into the owning shards.
    let cfg = SimConfig {
        master: TaskManagerConfig {
            shards: ShardSpec::Fixed(2),
            ..journaled_master()
        },
        ..SimConfig::default()
    };
    let mut sim = SimHarness::new(cfg);
    let mut ues = Vec::new();
    for i in 1..=3u32 {
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(i)), liveness_agent_config());
        for _ in 0..2 {
            let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
            sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
            ues.push(ue);
        }
    }
    sim.run(5);
    for i in 1..=3u32 {
        subscribe_all(&mut sim, EnbId(i), 10);
    }
    sim.run(200);
    assert_eq!(sim.master().n_shards(), 2);
    // Fixed(2) ownership: EnbId 1 and 3 on shard 1, EnbId 2 on shard 0.
    assert_eq!(sim.master().shard_of(EnbId(1)), Some(1));
    assert_eq!(sim.master().shard_of(EnbId(2)), Some(0));
    assert_eq!(sim.master().shard_of(EnbId(3)), Some(1));
    let pre_crash = sim.master().merged_rib();
    assert_eq!(pre_crash.n_agents(), 3);
    assert_eq!(pre_crash.n_ues(), 6);

    sim.kill_master();
    sim.run(100);
    sim.restart_master().expect("recovery from sharded journal");

    // Recovery rebuilt every subtree in the same owner shards.
    let recovered = sim.master().merged_rib();
    assert_eq!(recovered.n_agents(), 3, "all subtrees recovered");
    assert_eq!(recovered.n_ues(), 6, "every UE leaf recovered");
    assert_eq!(sim.master().n_shards(), 2);
    for (enb, shard) in [(EnbId(1), 1), (EnbId(2), 0), (EnbId(3), 1)] {
        assert_eq!(
            sim.master().shard_of(enb),
            Some(shard),
            "ownership is id-stable across restarts"
        );
    }

    // Re-sync brings every shard fresh again.
    sim.run(300);
    let rib = sim.master().view();
    assert!(
        rib.stale_agents().is_empty(),
        "all agents re-synced after sharded recovery: {:?}",
        rib.stale_agents()
    );
    assert_eq!(rib.n_ues(), 6, "reconciled RIB still has every UE");
    assert_eq!(
        sim.master().liveness_stats().ups,
        3,
        "all three sessions rejoined exactly once"
    );
}

#[test]
fn agent_crash_is_detected_and_state_replayed() {
    let cfg = SimConfig {
        master: journaled_master(),
        ..SimConfig::default()
    };
    let mut sim = SimHarness::new(cfg);
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), liveness_agent_config());
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
    sim.run(5);
    subscribe_all(&mut sim, EnbId(1), 10);
    sim.run(100);
    assert_eq!(sim.master().view().n_ues(), 1);

    // The agent process dies and a supervisor restarts it: soft state
    // (including the report subscription) is gone, the data plane lives.
    sim.crash_agent(EnbId(1)).unwrap();
    sim.run(200);
    // The restarted agent re-helloed; the master replayed the
    // subscription, so reports resumed and the RIB went fresh again.
    let rib = sim.master().view();
    assert!(rib.stale_agents().is_empty(), "agent re-synced");
    assert_eq!(rib.n_ues(), 1, "UE leaf restored by replayed reports");
    let sync = rib
        .agent(EnbId(1))
        .and_then(|a| a.synced_subframe())
        .expect("sync resumed");
    assert!(sync.0 > 105, "sync resumed after the crash, got {sync}");
    let stats = sim.ue_stats(ue).expect("attached");
    assert!(stats.connected, "data plane unaffected by the agent crash");
}
