//! Control-delegation integration: VSF updation, policy reconfiguration
//! and runtime scheduler swaps, end to end through master → protocol →
//! agent (paper §4.3.1 and §5.4).

use flexran::agent::{AgentConfig, PolicyDoc};
use flexran::apps::CentralizedScheduler;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::proto::{VsfArtifact, VsfPush};
use flexran::sim::traffic::FullBufferSource;
use flexran::stack::mac::scheduler::{ParamValue, RoundRobinScheduler};

fn sim_one_enb(agent_config: AgentConfig) -> (SimHarness, EnbId) {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), agent_config);
    sim.run(2); // hello lands
    (sim, enb)
}

#[test]
fn dsl_vsf_push_activate_and_observe_behavior() {
    let (mut sim, enb) = sim_one_enb(AgentConfig::default());
    // Two UEs: CQI 12 and CQI 5. The pushed policy serves only CQI >= 10.
    let good = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    let bad = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(5));
    sim.set_dl_traffic(good, Box::new(FullBufferSource::default()));
    sim.set_dl_traffic(bad, Box::new(FullBufferSource::default()));
    sim.run(100); // both attach under round-robin

    sim.master_mut()
        .push_vsf(
            enb,
            VsfPush {
                module: "mac".into(),
                vsf: "dl_ue_scheduler".into(),
                name: "cqi-gate".into(),
                artifact: VsfArtifact::Dsl {
                    source: "priority = step(cqi - 9)\n".into(),
                },
                signature: vec![],
            },
            true,
        )
        .unwrap();
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single("mac", "dl_ue_scheduler", Some("cqi-gate"), vec![]).to_yaml(),
        )
        .unwrap();
    sim.run(10);
    assert_eq!(
        sim.agent(enb).unwrap().mac.dl.active_name(),
        Some("cqi-gate")
    );
    let before_good = sim.ue_stats(good).unwrap().dl_delivered_bits;
    let before_bad = sim.ue_stats(bad).unwrap().dl_delivered_bits;
    sim.run(1000);
    let delta_good = sim.ue_stats(good).unwrap().dl_delivered_bits - before_good;
    let delta_bad = sim.ue_stats(bad).unwrap().dl_delivered_bits - before_bad;
    assert!(delta_good > 10_000_000, "gated-in UE served: {delta_good}");
    assert_eq!(delta_bad, 0, "gated-out UE starved under the pushed policy");
}

#[test]
fn unsigned_push_is_rejected_end_to_end() {
    let (mut sim, enb) = sim_one_enb(AgentConfig::default());
    sim.master_mut()
        .push_vsf(
            enb,
            VsfPush {
                module: "mac".into(),
                vsf: "dl_ue_scheduler".into(),
                name: "evil".into(),
                artifact: VsfArtifact::Registry {
                    key: "max-cqi".into(),
                },
                signature: vec![1, 2, 3],
            },
            false, // do NOT sign
        )
        .unwrap();
    sim.run(5);
    let agent = sim.agent(enb).unwrap();
    assert_eq!(agent.counters().pushes_rejected, 1);
    assert!(!agent.mac.dl.names().contains(&"evil"));
}

#[test]
fn runtime_swap_preserves_service_continuity() {
    // The §5.4 experiment: swap local and remote schedulers repeatedly;
    // throughput must not dip.
    let agent_config = AgentConfig {
        sync_period: 1,
        ..AgentConfig::default()
    };
    let (mut sim, enb) = sim_one_enb(agent_config);
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(14));
    sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
    sim.master_mut()
        .register_app(Box::new(CentralizedScheduler::new(
            2,
            Box::new(RoundRobinScheduler::new()),
        )));
    let _ = sim.master_mut().request_stats(
        enb,
        flexran::proto::ReportConfig {
            report_type: flexran::proto::ReportType::Periodic { period: 1 },
            flags: flexran::proto::ReportFlags::ALL,
        },
    );
    sim.run(200); // attach and warm up under the local scheduler
    let mut window_rates = Vec::new();
    let mut last_bits = sim.ue_stats(ue).unwrap().dl_delivered_bits;
    let mut local = true;
    for _round in 0..20 {
        // Swap every 100 ms.
        let behavior = if local { "remote-stub" } else { "round-robin" };
        local = !local;
        sim.master_mut()
            .reconfigure(
                enb,
                PolicyDoc::single("mac", "dl_ue_scheduler", Some(behavior), vec![]).to_yaml(),
            )
            .unwrap();
        sim.run(100);
        let bits = sim.ue_stats(ue).unwrap().dl_delivered_bits;
        window_rates.push((bits - last_bits) as f64 / 100.0 / 1000.0); // Mb/s
        last_bits = bits;
    }
    let mean = window_rates.iter().sum::<f64>() / window_rates.len() as f64;
    let min = window_rates.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(mean > 20.0, "mean throughput across swaps {mean:.1} Mb/s");
    assert!(
        min > mean * 0.7,
        "no service interruption across swaps: min {min:.1} vs mean {mean:.1}"
    );
}

#[test]
fn parameter_reconfiguration_reaches_running_scheduler() {
    let (mut sim, enb) = sim_one_enb(AgentConfig::default());
    // Activate the slicing scheduler and retune its shares at runtime.
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "mac",
                "dl_ue_scheduler",
                Some("slice-scheduler"),
                vec![
                    ("slice_shares".into(), ParamValue::List(vec![0.7, 0.3])),
                    ("policies".into(), ParamValue::Str("fair,fair".into())),
                ],
            )
            .to_yaml(),
        )
        .unwrap();
    sim.run(5);
    {
        let agent = sim.agent_mut(enb).unwrap();
        assert_eq!(agent.mac.dl.active_name(), Some("slice-scheduler"));
        let params = agent.mac.dl.active_mut().unwrap().params();
        assert!(params
            .iter()
            .any(|(k, v)| k == "slice_shares" && *v == ParamValue::List(vec![0.7, 0.3])));
    }
    // Retune.
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "mac",
                "dl_ue_scheduler",
                None,
                vec![("slice_shares".into(), ParamValue::List(vec![0.2, 0.8]))],
            )
            .to_yaml(),
        )
        .unwrap();
    sim.run(5);
    let agent = sim.agent_mut(enb).unwrap();
    let params = agent.mac.dl.active_mut().unwrap().params();
    assert!(params
        .iter()
        .any(|(k, v)| k == "slice_shares" && *v == ParamValue::List(vec![0.2, 0.8])));
    assert_eq!(agent.counters().policies_applied, 2);
    assert_eq!(agent.counters().policy_errors, 0);
}

#[test]
fn sync_period_is_remotely_tunable() {
    use flexran::proto::{MessageCategory, Transport};
    let (mut sim, enb) = sim_one_enb(AgentConfig::default());
    let syncs_at = |sim: &SimHarness| {
        sim.agent(enb)
            .unwrap()
            .transport()
            .tx_counters()
            .messages(MessageCategory::Sync)
    };
    sim.run(50);
    assert_eq!(syncs_at(&sim), 0, "sync disabled by default");
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "agent",
                "sync",
                None,
                vec![("period".into(), ParamValue::I64(2))],
            )
            .to_yaml(),
        )
        .unwrap();
    sim.run(100);
    let n = syncs_at(&sim);
    assert!((45..=55).contains(&n), "period-2 sync over 100 TTIs: {n}");
}
