//! Offline stand-in for `proptest`: a miniature property-testing harness
//! covering the strategy combinators and macros this workspace uses —
//! `any`, integer/float range strategies, a regex-subset string strategy
//! for `&'static str` patterns, tuples, `collection::vec`, `option::of`,
//! `prop_oneof!`, `prop_map`, and the `proptest!` block macro with
//! optional `#![proptest_config(...)]`.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated inputs unreduced), and the per-test RNG is seeded
//! deterministically from the test name, so failures reproduce exactly.

use std::ops::Range;

// ----------------------------------------------------------------------
// RNG
// ----------------------------------------------------------------------

/// The harness RNG (xoshiro256++), seeded from the test's name so every
/// run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

// ----------------------------------------------------------------------
// Strategy core
// ----------------------------------------------------------------------

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----------------------------------------------------------------------
// any::<T>() and ranges
// ----------------------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite full-range doubles (no NaN/inf — matches proptest's
        // default f64 strategy in spirit).
        let v = f64::from_bits(rng.next_u64());
        if v.is_finite() {
            v
        } else {
            rng.unit_f64() * 1e12 - 0.5e12
        }
    }
}

/// The default strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ----------------------------------------------------------------------
// Tuples
// ----------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ----------------------------------------------------------------------
// Collections / option
// ----------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(inner)` — `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ----------------------------------------------------------------------
// prop_oneof! support
// ----------------------------------------------------------------------

/// Uniform choice among boxed strategies of one value type.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Helper used by `prop_oneof!` to erase arm types.
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

// ----------------------------------------------------------------------
// Regex-subset string strategy for `&'static str` patterns
// ----------------------------------------------------------------------

/// One pattern atom: a set of character ranges plus a repetition count.
struct Atom {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars.get(i).copied().unwrap_or('\\'))
                    } else {
                        chars[i]
                    };
                    // `a-z` range (a `-` directly before `]` is literal).
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|c| *c != ']')
                    {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars.get(i + 2).copied().unwrap_or('\\'))
                        } else {
                            chars[i + 2]
                        };
                        set.push((c, hi));
                        i += 3;
                    } else {
                        set.push((c, c));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in '{pat}'");
                i += 1; // consume ']'
                set
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    // `\PC` — "not category C (control)": printable chars,
                    // ASCII plus a slice of Latin-1 and Greek.
                    Some('P') if chars.get(i + 1) == Some(&'C') => {
                        i += 2;
                        vec![(' ', '~'), ('\u{A1}', '\u{FF}'), ('α', 'ω')]
                    }
                    Some(c) => {
                        let c = unescape(*c);
                        i += 1;
                        vec![(c, c)]
                    }
                    None => panic!("dangling backslash in '{pat}'"),
                }
            }
            '.' => {
                i += 1;
                vec![(' ', '~')]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional repetition.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in '{pat}'"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("repetition lower bound");
                        let hi = if hi.trim().is_empty() {
                            lo + 8
                        } else {
                            hi.trim().parse().expect("repetition upper bound")
                        };
                        (lo, hi)
                    }
                    None => {
                        let n = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn sample_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|(lo, hi)| (*hi as u64).saturating_sub(*lo as u64) + 1)
        .sum();
    let mut pick = rng.below(total.max(1));
    for (lo, hi) in ranges {
        let span = (*hi as u64) - (*lo as u64) + 1;
        if pick < span {
            return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
        }
        pick -= span;
    }
    ranges.first().map(|(lo, _)| *lo).unwrap_or('a')
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let span = (atom.max - atom.min) as u64 + 1;
            let count = atom.min + rng.below(span) as usize;
            for _ in 0..count {
                out.push(sample_char(&atom.ranges, rng));
            }
        }
        out
    }
}

// ----------------------------------------------------------------------
// Config + macros
// ----------------------------------------------------------------------

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($arm)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

// ----------------------------------------------------------------------
// Self-tests
// ----------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::deterministic("regex_subset_shapes");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let soup = Strategy::generate(&"[a-z0-9_+*/()^=,. \\n-]{0,120}", &mut rng);
            assert!(soup.len() <= 120);
            assert!(soup.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || "_+*/()^=,. \n-".contains(c)));

            let free = Strategy::generate(&"\\PC{0,200}", &mut rng);
            assert!(free.chars().count() <= 200);
            assert!(free.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        /// The harness's own plumbing: ranges stay in bounds, tuples and
        /// collections compose, oneof picks valid arms.
        #[test]
        fn strategies_stay_in_bounds(
            v in 10u64..20,
            f in -1.5f64..2.5,
            pair in (0u32..5, 1usize..4),
            items in crate::collection::vec(0i64..100, 0..10),
            opt in crate::option::of(5u8..9),
            choice in prop_oneof![
                (0u64..3).prop_map(|v| v as i64),
                10i64..13,
            ],
        ) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!(pair.0 < 5 && (1..4).contains(&pair.1));
            prop_assert!(items.len() < 10);
            prop_assert!(items.iter().all(|i| (0..100).contains(i)));
            if let Some(x) = opt {
                prop_assert!((5..9).contains(&x));
            }
            prop_assert!((0..3).contains(&choice) || (10..13).contains(&choice));
        }
    }
}
