//! Offline stand-in for `parking_lot`: same guard-returning (no
//! `Result`) locking API, backed by `std::sync`. Poisoning is translated
//! to a recovered guard, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(StdRwLock<T>);

pub struct ReadGuard<'a, T: ?Sized>(RwLockReadGuard<'a, T>);
pub struct WriteGuard<'a, T: ?Sized>(RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> ReadGuard<'_, T> {
        ReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn write(&self) -> WriteGuard<'_, T> {
        WriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());

        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
