//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the exact surface it uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::random` for `f64`/`u64`/`u32`/
//! `bool`, and `Rng::random_range` over integer and float ranges. The
//! generator is xoshiro256++ (public domain reference construction),
//! which is deterministic, fast, and of ample quality for simulation.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution.
pub trait StandardSample {
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::random_range`.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but belt and braces:
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let v = r.random_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = r.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = r.random_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&x));
        }
        // Inclusive range with a single value.
        assert_eq!(r.random_range(3u64..=3), 3);
    }
}
