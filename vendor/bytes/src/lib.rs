//! Offline stand-in for the `bytes` crate. `Bytes` is a cheaply-clonable
//! immutable buffer (`Arc<[u8]>` under the hood); `BytesMut` is a plain
//! growable buffer whose `advance`/`split_to` shift data eagerly — O(n)
//! rather than O(1), which is fine at this workspace's frame sizes.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

/// Growable byte buffer with a consuming front end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Grow (zero-filled) or shrink to exactly `len` bytes.
    pub fn resize(&mut self, len: usize, value: u8) {
        self.data.resize(len, value);
    }

    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor operations.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance out of bounds");
        self.data.drain(..cnt);
    }
}

/// Write-side append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_front_consumption() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(5);
        b.put_slice(b"hello");
        b.put_u32_le(7);
        b.put_u64_le(9);
        b.put_u8(0xAA);
        assert_eq!(b.len(), 4 + 5 + 4 + 8 + 1);
        assert_eq!(u32::from_be_bytes(b[..4].try_into().unwrap()), 5);
        b.advance(4);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        let frozen = head.freeze();
        assert_eq!(frozen.len(), 5);
        let cloned = frozen.clone();
        assert_eq!(&cloned[..], b"hello");
        assert_eq!(u32::from_le_bytes(b[..4].try_into().unwrap()), 7);
    }
}
