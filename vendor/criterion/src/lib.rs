//! Offline stand-in for `criterion`: same `criterion_group!` /
//! `criterion_main!` / `bench_function` / `Bencher::iter` shape, but the
//! measurement is a plain adaptive wall-clock loop (no HTML reports).
//! Each benchmark takes `sample_size` timed samples and reports the
//! median and p95 ns/iter; when the `Criterion` instance drops, a
//! machine-readable summary (same shape as the repo's `BENCH_*.json`
//! artifacts) is written to `target/criterion/BENCH_criterion.json`
//! (override with the `CRITERION_JSON` env var).

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<BenchRecord>,
}

struct BenchRecord {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    p95_ns: f64,
    samples: usize,
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
            results: Vec::new(),
        }
    }
}

/// `p` in [0, 100] over an ascending-sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.warm_up_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b); // warm-up
        b.budget =
            (self.measurement_time / self.sample_size.max(1) as u32).max(Duration::from_millis(1));
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut iters_total = 0u64;
        for _ in 0..self.sample_size {
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
                iters_total += b.iters;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        let median = percentile(&samples, 50.0);
        let p95 = percentile(&samples, 95.0);
        println!(
            "{id:<40} median {median:>12.1} ns/iter  p95 {p95:>12.1} ns/iter ({} samples, {iters_total} iters)",
            samples.len()
        );
        self.results.push(BenchRecord {
            id: id.to_string(),
            mean_ns: mean,
            median_ns: median,
            p95_ns: p95,
            samples: samples.len(),
            iters: iters_total,
        });
        self
    }

    pub fn final_summary(&mut self) {
        self.write_json();
        self.results.clear();
    }

    fn write_json(&self) {
        if self.results.is_empty() {
            return;
        }
        let path = std::env::var("CRITERION_JSON")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| default_json_path());
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut s = String::from("{\n  \"bench\": \"criterion\",\n  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {:?}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"samples\": {}, \"iters\": {}}}{}\n",
                r.id,
                r.mean_ns,
                r.median_ns,
                r.p95_ns,
                r.samples,
                r.iters,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, s) {
            eprintln!("criterion: could not write {}: {e}", path.display());
        }
    }
}

/// `<cargo target dir>/criterion/BENCH_criterion.json`, located from the
/// running bench executable (cargo sets the bench cwd to the *package*
/// root, which is not where artifacts belong in a workspace).
fn default_json_path() -> std::path::PathBuf {
    if let Ok(exe) = std::env::current_exe() {
        if let Some(target) = exe
            .ancestors()
            .find(|p| p.file_name() == Some(std::ffi::OsStr::new("target")))
        {
            return target.join("criterion").join("BENCH_criterion.json");
        }
    }
    std::path::PathBuf::from("target/criterion/BENCH_criterion.json")
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.write_json();
    }
}

pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget || iters >= 10_000_000 {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Re-exported for compatibility with `criterion::black_box` users.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Respect harness probes (`cargo bench -- --list`, test mode).
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--list" || a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert!(r.median_ns.is_finite() && r.p95_ns >= r.median_ns);
        c.results.clear(); // don't write JSON from the test
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 95.0), 5.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }
}
