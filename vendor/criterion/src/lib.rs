//! Offline stand-in for `criterion`: same `criterion_group!` /
//! `criterion_main!` / `bench_function` / `Bencher::iter` shape, but the
//! measurement is a plain adaptive wall-clock loop (no statistics, no
//! HTML reports). Good enough to keep `cargo bench` meaningful offline.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.warm_up_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b); // warm-up
        b.budget = self.measurement_time / (self.sample_size.max(1) as u32).max(1);
        b.budget = b.budget.max(Duration::from_millis(5));
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        println!("{id:<40} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget || iters >= 10_000_000 {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Re-exported for compatibility with `criterion::black_box` users.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Respect harness probes (`cargo bench -- --list`, test mode).
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--list" || a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }
}
