//! Offline stand-in for `serde_json`, covering what the bench crate
//! uses: the `Value` tree, a `json!` macro for flat object/array
//! literals with Rust expressions as values, and `to_string_pretty`.
//! Object keys keep insertion order (the real crate's `preserve_order`
//! feature), which keeps report files diffable.

use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Int(v as i64) }
        }
    )*};
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::UInt(v as u64) }
        }
    )*};
}

impl_from_signed!(i8, i16, i32, i64, isize);
impl_from_unsigned!(u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(v) if v == other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        match self {
            Value::Int(v) => v == other,
            Value::UInt(v) => i64::try_from(*v).is_ok_and(|v| v == *other),
            _ => false,
        }
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        match self {
            Value::UInt(v) => v == other,
            Value::Int(v) => u64::try_from(*v).is_ok_and(|v| v == *other),
            _ => false,
        }
    }
}

/// By-reference conversion used by `json!` (the real macro serializes
/// through `&T: Serialize`, so field expressions must not be moved).
pub trait ToValue {
    fn to_value(&self) -> Value;
}

impl<T: Clone + Into<Value>> ToValue for T {
    fn to_value(&self) -> Value {
        self.clone().into()
    }
}

pub fn to_value<T: ToValue>(v: &T) -> Value {
    v.to_value()
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        let pad = |out: &mut String, n: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(n));
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    // Match serde_json: integral floats keep a ".0".
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, indent + 1, pretty);
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    escape_into(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0, false);
        f.write_str(&s)
    }
}

/// Serialization error (the stub's serializer is infallible, the type
/// exists for signature compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, 0, true);
    Ok(s)
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($value:expr) => { $crate::to_value(&$value) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrip_and_escaping() {
        let v = json!({
            "id": "fig7a",
            "rows": vec![vec!["1".to_string(), "a\"b".to_string()]],
            "quick": true,
            "count": 3u64,
        });
        let compact = v.to_string();
        assert_eq!(
            compact,
            r#"{"id":"fig7a","rows":[["1","a\"b"]],"quick":true,"count":3}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"id\": \"fig7a\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn nested_values_and_numbers() {
        let inner = json!({"x": 1.5});
        let v = json!({ "results": vec![inner.clone(), inner], "n": -2 });
        assert_eq!(v.to_string(), r#"{"results":[{"x":1.5},{"x":1.5}],"n":-2}"#);
        assert_eq!(json!(2.0).to_string(), "2.0");
    }
}
