//! RLC: per-logical-channel transmission queues with segmentation.
//!
//! The RLC entity is where the paper's "transmission queue sizes of UEs" —
//! the statistic every scheduling application consumes — lives. The model
//! is an unacknowledged-mode entity with the parts the control plane can
//! observe and influence: queueing, segmentation into MAC-sized PDUs,
//! buffer-occupancy and head-of-line-delay reporting, and front-requeueing
//! for HARQ-failure recovery.

use std::collections::VecDeque;

use flexran_types::time::Tti;
use flexran_types::units::Bytes;

/// RLC UM header (5-bit SN + framing info).
pub const RLC_HEADER_BYTES: u64 = 2;

/// One SDU waiting in (or partially transmitted from) the queue.
#[derive(Debug, Clone, Copy)]
struct QueuedSdu {
    remaining: u64,
    enqueued: Tti,
}

/// A segment pulled from the queue for inclusion in a MAC PDU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RlcPdu {
    /// Payload bytes carried (excluding the RLC header).
    pub payload: Bytes,
    /// Size on the air including the RLC header.
    pub size: Bytes,
    /// Number of SDUs completed by this PDU.
    pub sdus_completed: u32,
}

/// Transmit-side RLC entity for one logical channel.
#[derive(Debug, Clone, Default)]
pub struct RlcTx {
    queue: VecDeque<QueuedSdu>,
    buffered: u64,
    /// Cumulative payload bytes handed to MAC.
    pub tx_payload_bytes: Bytes,
    /// Cumulative SDUs fully transmitted.
    pub tx_sdus: u64,
    /// SDUs dropped after HARQ exhaustion (see [`RlcTx::account_loss`]).
    pub dropped_sdus: u64,
}

impl RlcTx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an SDU of `size` bytes (as delivered by PDCP).
    pub fn enqueue(&mut self, size: Bytes, now: Tti) {
        if size.is_zero() {
            return;
        }
        self.queue.push_back(QueuedSdu {
            remaining: size.as_u64(),
            enqueued: now,
        });
        self.buffered += size.as_u64();
    }

    /// Bytes waiting for transmission (the "transmission queue size" of the
    /// Agent API statistics calls).
    pub fn buffer_occupancy(&self) -> Bytes {
        Bytes(self.buffered)
    }

    /// Whether any data is pending.
    pub fn has_data(&self) -> bool {
        self.buffered > 0
    }

    /// Age in TTIs of the head-of-line SDU, 0 when empty.
    pub fn hol_delay(&self, now: Tti) -> u64 {
        self.queue
            .front()
            .map(|s| now.saturating_since(s.enqueued))
            .unwrap_or(0)
    }

    /// Pull up to `capacity` bytes (header included) into one RLC PDU.
    ///
    /// Returns `None` if the queue is empty or the capacity cannot fit the
    /// header plus at least one payload byte. Partially transmitted SDUs
    /// stay at the head with their remaining bytes.
    pub fn dequeue_pdu(&mut self, capacity: Bytes, _now: Tti) -> Option<RlcPdu> {
        let cap = capacity.as_u64();
        if cap <= RLC_HEADER_BYTES || self.buffered == 0 {
            return None;
        }
        let mut budget = cap - RLC_HEADER_BYTES;
        let mut payload = 0u64;
        let mut completed = 0u32;
        while budget > 0 {
            let Some(head) = self.queue.front_mut() else {
                break;
            };
            let take = head.remaining.min(budget);
            head.remaining -= take;
            payload += take;
            budget -= take;
            if head.remaining == 0 {
                completed += 1;
                self.tx_sdus += 1;
                self.queue.pop_front();
            }
        }
        if payload == 0 {
            return None;
        }
        self.buffered -= payload;
        self.tx_payload_bytes += Bytes(payload);
        Some(RlcPdu {
            payload: Bytes(payload),
            size: Bytes(payload + RLC_HEADER_BYTES),
            sdus_completed: completed,
        })
    }

    /// Return `payload` bytes to the head of the queue (HARQ failure with
    /// retransmission still possible at a higher layer): the bytes become
    /// transmittable again as a fresh head SDU stamped `now`.
    pub fn requeue_front(&mut self, payload: Bytes, now: Tti) {
        if payload.is_zero() {
            return;
        }
        self.queue.push_front(QueuedSdu {
            remaining: payload.as_u64(),
            enqueued: now,
        });
        self.buffered += payload.as_u64();
    }

    /// Account `payload` bytes as permanently lost (HARQ exhaustion where
    /// no higher-layer recovery applies).
    pub fn account_loss(&mut self, _payload: Bytes) {
        self.dropped_sdus += 1;
    }

    /// Discard everything (e.g. on UE detach).
    pub fn flush(&mut self) -> Bytes {
        let b = self.buffered;
        self.queue.clear();
        self.buffered = 0;
        Bytes(b)
    }

    /// Number of queued (whole or partial) SDUs.
    pub fn queued_sdus(&self) -> usize {
        self.queue.len()
    }

    /// Approximate heap footprint of this entity, for the memory-overhead
    /// experiment (Fig. 6a).
    pub fn heap_bytes(&self) -> usize {
        self.queue.capacity() * std::mem::size_of::<QueuedSdu>()
    }

    /// Total byte count ever enqueued that is still outstanding plus sent:
    /// used by invariant tests.
    #[cfg(test)]
    fn debug_total(&self) -> u64 {
        self.queue.iter().map(|s| s.remaining).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn enqueue_dequeue_roundtrip() {
        let mut rlc = RlcTx::new();
        rlc.enqueue(Bytes(100), Tti(0));
        assert_eq!(rlc.buffer_occupancy(), Bytes(100));
        let pdu = rlc.dequeue_pdu(Bytes(200), Tti(1)).unwrap();
        assert_eq!(pdu.payload, Bytes(100));
        assert_eq!(pdu.size, Bytes(102));
        assert_eq!(pdu.sdus_completed, 1);
        assert!(!rlc.has_data());
    }

    #[test]
    fn segmentation_splits_sdus() {
        let mut rlc = RlcTx::new();
        rlc.enqueue(Bytes(100), Tti(0));
        let pdu1 = rlc.dequeue_pdu(Bytes(52), Tti(0)).unwrap();
        assert_eq!(pdu1.payload, Bytes(50));
        assert_eq!(pdu1.sdus_completed, 0);
        assert_eq!(rlc.buffer_occupancy(), Bytes(50));
        let pdu2 = rlc.dequeue_pdu(Bytes(100), Tti(0)).unwrap();
        assert_eq!(pdu2.payload, Bytes(50));
        assert_eq!(pdu2.sdus_completed, 1);
        assert_eq!(rlc.tx_sdus, 1);
    }

    #[test]
    fn concatenation_packs_multiple_sdus() {
        let mut rlc = RlcTx::new();
        for _ in 0..5 {
            rlc.enqueue(Bytes(10), Tti(0));
        }
        let pdu = rlc.dequeue_pdu(Bytes(100), Tti(0)).unwrap();
        assert_eq!(pdu.payload, Bytes(50));
        assert_eq!(pdu.sdus_completed, 5);
    }

    #[test]
    fn tiny_capacity_yields_nothing() {
        let mut rlc = RlcTx::new();
        rlc.enqueue(Bytes(10), Tti(0));
        assert!(rlc.dequeue_pdu(Bytes(2), Tti(0)).is_none());
        assert!(rlc.dequeue_pdu(Bytes(0), Tti(0)).is_none());
        assert_eq!(rlc.buffer_occupancy(), Bytes(10));
    }

    #[test]
    fn hol_delay_tracks_head() {
        let mut rlc = RlcTx::new();
        assert_eq!(rlc.hol_delay(Tti(100)), 0);
        rlc.enqueue(Bytes(10), Tti(100));
        rlc.enqueue(Bytes(10), Tti(150));
        assert_eq!(rlc.hol_delay(Tti(160)), 60);
        rlc.dequeue_pdu(Bytes(50), Tti(160)).unwrap();
        assert_eq!(rlc.hol_delay(Tti(160)), 0);
    }

    #[test]
    fn requeue_front_restores_bytes_first() {
        let mut rlc = RlcTx::new();
        rlc.enqueue(Bytes(30), Tti(5));
        let pdu = rlc.dequeue_pdu(Bytes(100), Tti(5)).unwrap();
        rlc.requeue_front(pdu.payload, Tti(6));
        assert_eq!(rlc.buffer_occupancy(), Bytes(30));
        let again = rlc.dequeue_pdu(Bytes(100), Tti(6)).unwrap();
        assert_eq!(again.payload, Bytes(30));
    }

    #[test]
    fn flush_empties() {
        let mut rlc = RlcTx::new();
        rlc.enqueue(Bytes(10), Tti(0));
        rlc.enqueue(Bytes(20), Tti(0));
        assert_eq!(rlc.flush(), Bytes(30));
        assert!(!rlc.has_data());
        assert_eq!(rlc.hol_delay(Tti(9)), 0);
    }

    proptest! {
        /// Conservation: whatever enters the queue either leaves as PDU
        /// payload or remains buffered, regardless of the dequeue pattern.
        #[test]
        fn byte_conservation(
            sdus in proptest::collection::vec(1u64..5000, 0..40),
            caps in proptest::collection::vec(0u64..4000, 0..60),
        ) {
            let mut rlc = RlcTx::new();
            let mut entered = 0u64;
            for (i, s) in sdus.iter().enumerate() {
                rlc.enqueue(Bytes(*s), Tti(i as u64));
                entered += s;
            }
            let mut left = 0u64;
            for (i, c) in caps.iter().enumerate() {
                if let Some(pdu) = rlc.dequeue_pdu(Bytes(*c), Tti(100 + i as u64)) {
                    left += pdu.payload.as_u64();
                    prop_assert!(pdu.size.as_u64() <= *c);
                }
            }
            prop_assert_eq!(entered, left + rlc.buffer_occupancy().as_u64());
            prop_assert_eq!(rlc.buffer_occupancy().as_u64(), rlc.debug_total());
        }

        /// A dequeued PDU never exceeds the offered capacity and always
        /// pays the header.
        #[test]
        fn pdu_respects_capacity(cap in 3u64..10000) {
            let mut rlc = RlcTx::new();
            rlc.enqueue(Bytes(1_000_000), Tti(0));
            let pdu = rlc.dequeue_pdu(Bytes(cap), Tti(0)).unwrap();
            prop_assert_eq!(pdu.size.as_u64(), pdu.payload.as_u64() + RLC_HEADER_BYTES);
            prop_assert!(pdu.size.as_u64() <= cap);
            prop_assert_eq!(pdu.payload.as_u64(), cap - RLC_HEADER_BYTES);
        }
    }
}
