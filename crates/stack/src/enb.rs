//! The eNodeB data plane.
//!
//! [`Enb`] executes — it never decides. Scheduling decisions enter via
//! [`Enb::submit_dl_decision`] / [`Enb::submit_ul_decision`]; RRC
//! procedures via [`Enb::rach`], [`Enb::start_handover`], [`Enb::detach`].
//! In a FlexRAN deployment those calls are made by the agent's control
//! modules (local VSFs) or relayed from the master controller.
//!
//! Each TTI is executed in two phases so a scheduler can observe the
//! subframe before it is committed:
//!
//! 1. [`Enb::begin_tti`] — CQI measurement, HARQ feedback processing,
//!    RRC timers, RACH processing, retransmission reservation. After this
//!    call [`Enb::dl_scheduler_input`] describes the subframe accurately.
//! 2. *(control plane runs; decisions are submitted)*
//! 3. [`Enb::finish_tti`] — retransmissions and the submitted decisions
//!    are put on the air, block success is evaluated against the PHY
//!    view, uplink grants execute, statistics update.
//!
//! Decisions whose target subframe has already passed are rejected and
//! counted ([`crate::stats::CellStats::missed_deadlines`]) — the
//! deadline-miss semantics of the paper's Fig. 9.

use flexran_phy::bler::BlerModel;
use flexran_phy::link_adaptation::{cqi_from_sinr, Cqi};
use flexran_phy::tables::{itbs_for_mcs, tbs_bits};
use flexran_types::config::{CellConfig, EnbConfig};
use flexran_types::ids::{CellId, Rnti, SliceId, UeId};
use flexran_types::time::Tti;
use flexran_types::units::Bytes;
use flexran_types::{FlexError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::events::EnbEvent;
use crate::mac::bsr::bsr_index;
use crate::mac::dci::{DlDci, DlSchedulingDecision, UlGrant, UlSchedulingDecision};
use crate::mac::harq::{FeedbackOutcome, HarqEntity};
use crate::mac::scheduler::{DlSchedulerInput, RetxInfo, UeSchedInfo, UlSchedulerInput, UlUeInfo};
use crate::mac::{HARQ_FEEDBACK_DELAY, MAC_HEADER_BYTES};
use crate::pdcp::PdcpTx;
use crate::rlc::RlcTx;
use crate::rrc::{RrcState, RrcTimers, CONN_SETUP_BYTES, HO_COMMAND_BYTES};
use crate::stats::{CellStats, UeStats};

/// The PHY as seen by the data plane: per-UE instantaneous SINR.
///
/// The simulator implements this against its radio environment (geometry,
/// per-UE channel processes, and — crucially for eICIC — the set of cells
/// transmitting in the subframe).
pub trait PhyView {
    fn sinr_db(&mut self, cell: CellId, rnti: Rnti, tti: Tti) -> f64;
}

/// A trivial PHY view: one SINR for everyone (unit tests, baselines).
#[derive(Debug, Clone, Copy)]
pub struct StaticPhyView(pub f64);

impl PhyView for StaticPhyView {
    fn sinr_db(&mut self, _cell: CellId, _rnti: Rnti, _tti: Tti) -> f64 {
        self.0
    }
}

/// Tunables of the data plane. All-scalar, so `Copy`: the TTI pipeline
/// takes a by-value snapshot without touching the heap.
#[derive(Debug, Clone, Copy)]
pub struct EnbParams {
    pub timers: RrcTimers,
    /// Re-RACH automatically after an attach failure.
    pub auto_reattach: bool,
    /// CQI measurement/report period in TTIs.
    pub cqi_period: u64,
    /// Power-headroom cap on uplink PRBs per UE.
    pub ul_prb_cap: u8,
    /// EWMA coefficient for the proportional-fair average rate.
    pub avg_rate_alpha: f64,
    /// BLER model used to evaluate transport-block success.
    pub bler: BlerModel,
    /// RNG seed (deterministic runs).
    pub seed: u64,
}

impl Default for EnbParams {
    fn default() -> Self {
        EnbParams {
            timers: RrcTimers::default(),
            auto_reattach: true,
            cqi_period: 2,
            ul_prb_cap: 24,
            avg_rate_alpha: 0.01,
            bler: BlerModel::default(),
            seed: 1,
        }
    }
}

/// ABS (almost-blank subframe) pattern: 40-subframe bitmap, `true` = muted.
pub type AbsPattern = [bool; 40];

#[derive(Debug)]
struct UeContext {
    rnti: Rnti,
    ue_tag: UeId,
    slice: SliceId,
    priority_group: u8,
    state: RrcState,
    srb: RlcTx,
    drb: RlcTx,
    pdcp_dl: PdcpTx,
    harq: HarqEntity,
    /// SRB bytes currently inside HARQ (delivery pending).
    srb_in_flight: u64,
    last_cqi: Cqi,
    sinr_db: f64,
    cqi_updated: Tti,
    avg_rate_bps: f64,
    bits_this_tti: u64,
    dl_delivered_bits: u64,
    ul_delivered_bits: u64,
    /// True UE-side uplink backlog.
    ul_backlog: u64,
    /// Backlog the eNodeB assumes (BSR view).
    ul_bsr: u64,
    /// DRX configuration `(cycle, on_duration)` in TTIs.
    drx: Option<(u64, u64)>,
    /// Activated secondary component carriers (carrier aggregation).
    /// Activation state is tracked and reported; cross-carrier transport
    /// aggregation is outside the model (DESIGN.md §7).
    active_scells: std::collections::BTreeSet<u16>,
}

impl UeContext {
    fn new(rnti: Rnti, ue_tag: UeId, slice: SliceId, priority_group: u8, state: RrcState) -> Self {
        UeContext {
            rnti,
            ue_tag,
            slice,
            priority_group,
            state,
            srb: RlcTx::new(),
            drb: RlcTx::new(),
            pdcp_dl: PdcpTx::new(),
            harq: HarqEntity::new(),
            srb_in_flight: 0,
            last_cqi: Cqi(0),
            sinr_db: f64::NEG_INFINITY,
            cqi_updated: Tti::ZERO,
            avg_rate_bps: 1.0,
            bits_this_tti: 0,
            dl_delivered_bits: 0,
            ul_delivered_bits: 0,
            ul_backlog: 0,
            ul_bsr: 0,
            drx: None,
            // lint:allow(alloc-reach) context construction — once per attach
            active_scells: std::collections::BTreeSet::new(),
        }
    }

    fn stats(&self) -> UeStats {
        UeStats {
            rnti: self.rnti,
            ue: self.ue_tag,
            slice: self.slice,
            priority_group: self.priority_group,
            connected: self.state.is_connected(),
            cqi: self.last_cqi,
            cqi_updated: self.cqi_updated,
            sinr_db: self.sinr_db,
            dl_queue_bytes: self.drb.buffer_occupancy(),
            srb_queue_bytes: self.srb.buffer_occupancy(),
            ul_bsr_bytes: Bytes(self.ul_bsr),
            dl_delivered_bits: self.dl_delivered_bits,
            ul_delivered_bits: self.ul_delivered_bits,
            avg_rate_bps: self.avg_rate_bps,
            harq_tx: self.harq.tx_new,
            harq_retx: self.harq.tx_retx,
            hol_delay_ms: self.drb.hol_delay(Tti(self.cqi_updated.0)),
            // lint:allow(alloc-reach) stats snapshot — composed per report interval
            active_scells: self.active_scells.iter().copied().collect(),
        }
    }

    fn is_schedulable(&self, tti: Tti) -> bool {
        match self.drx {
            None => true,
            Some((cycle, on)) => (tti.0 % cycle.max(1)) < on,
        }
    }

    fn srb_drained(&self) -> bool {
        !self.srb.has_data() && self.srb_in_flight == 0
    }
}

#[derive(Debug, Clone, Copy)]
struct Feedback {
    rnti: Rnti,
    pid: u8,
    success: bool,
}

#[derive(Debug, Clone, Copy)]
struct PendingRetx {
    rnti: Rnti,
    pid: u8,
    n_prb: u8,
    mcs: flexran_phy::link_adaptation::Mcs,
    attempt: u8,
}

/// Find-or-insert the feedback vector for `key` and push `fb`, reusing
/// pooled vectors so steady-state enqueueing never allocates. A free
/// function (not a `CellState` method) so callers can hold disjoint
/// borrows of the cell's other fields.
fn push_feedback(
    queue: &mut Vec<(u64, Vec<Feedback>)>,
    pool: &mut Vec<Vec<Feedback>>,
    key: u64,
    fb: Feedback,
) {
    if let Some(i) = queue.iter().position(|(k, _)| *k == key) {
        queue[i].1.push(fb);
    } else {
        let mut v = pool.pop().unwrap_or_default();
        v.push(fb);
        queue.push((key, v));
    }
}

struct CellState {
    config: CellConfig,
    abs_pattern: Option<AbsPattern>,
    /// UE contexts, sorted by RNTI (dense slab: per-TTI walks are linear
    /// scans, lookups binary-search; inserts/removes only on attach,
    /// detach and handover).
    ues: Vec<UeContext>,
    /// Pending decisions keyed by target subframe. A handful of entries
    /// at most (current TTI + schedule-ahead), so a linear scan beats
    /// any tree — and, unlike a node-based map, inserting and removing
    /// one entry per TTI never touches the allocator.
    pending_dl: Vec<(u64, DlSchedulingDecision)>,
    pending_ul: Vec<(u64, UlSchedulingDecision)>,
    /// HARQ feedback due per subframe (`HARQ_FEEDBACK_DELAY` keys live
    /// at once). Drained vectors return to `feedback_pool`.
    feedback_queue: Vec<(u64, Vec<Feedback>)>,
    feedback_pool: Vec<Vec<Feedback>>,
    /// Recycled decision buffers: consumed decisions donate their DCI /
    /// grant vectors back so the next cycle's submission allocates
    /// nothing (see [`Enb::recycled_dci_buffer`]).
    dci_pool: Vec<Vec<DlDci>>,
    grant_pool: Vec<Vec<UlGrant>>,
    current_retx: Vec<PendingRetx>,
    retx_prbs: u8,
    scheduled_rach: Vec<(u64, UeId, SliceId, u8)>,
    stats: CellStats,
    next_rnti: u16,
    muted_now: bool,
}

impl CellState {
    fn new(config: CellConfig) -> Self {
        CellState {
            config,
            abs_pattern: None,
            ues: Vec::new(),
            pending_dl: Vec::new(),
            pending_ul: Vec::new(),
            feedback_queue: Vec::new(),
            feedback_pool: Vec::new(),
            dci_pool: Vec::new(),
            grant_pool: Vec::new(),
            current_retx: Vec::new(),
            retx_prbs: 0,
            scheduled_rach: Vec::new(),
            stats: CellStats::default(),
            next_rnti: Rnti::CRNTI_MIN + 0xC3, // 0x100
            muted_now: false,
        }
    }

    fn ue_idx(&self, rnti: Rnti) -> Option<usize> {
        self.ues.binary_search_by_key(&rnti, |u| u.rnti).ok()
    }

    fn ue(&self, rnti: Rnti) -> Option<&UeContext> {
        self.ue_idx(rnti).map(|i| &self.ues[i])
    }

    fn ue_mut(&mut self, rnti: Rnti) -> Option<&mut UeContext> {
        self.ue_idx(rnti).map(|i| &mut self.ues[i])
    }

    /// Sorted insert (attach paths only — never per-TTI).
    fn insert_ue(&mut self, ctx: UeContext) {
        match self.ues.binary_search_by_key(&ctx.rnti, |u| u.rnti) {
            Ok(i) => self.ues[i] = ctx,
            Err(i) => self.ues.insert(i, ctx),
        }
    }

    fn remove_ue(&mut self, rnti: Rnti) -> Option<UeContext> {
        self.ue_idx(rnti).map(|i| self.ues.remove(i))
    }

    fn is_abs(&self, tti: Tti) -> bool {
        self.abs_pattern
            .map(|p| p[(tti.0 % 40) as usize])
            .unwrap_or(false)
    }

    fn alloc_rnti(&mut self) -> Rnti {
        loop {
            let r = Rnti(self.next_rnti);
            self.next_rnti = if self.next_rnti >= Rnti::CRNTI_MAX {
                Rnti::CRNTI_MIN
            } else {
                self.next_rnti + 1
            };
            if self.ue_idx(r).is_none() {
                return r;
            }
        }
    }

    fn do_rach(
        &mut self,
        ue_tag: UeId,
        slice: SliceId,
        group: u8,
        now: Tti,
        timers: &RrcTimers,
        events: &mut Vec<EnbEvent>,
    ) -> Rnti {
        let rnti = self.alloc_rnti();
        // RAR and Msg3 are common-channel scheduling: the MAC executes
        // them autonomously (below FlexRAN's delegation granularity).
        let ctx = UeContext::new(
            rnti,
            ue_tag,
            slice,
            group,
            RrcState::AwaitMsg3 {
                at: now + timers.msg3_delay,
            },
        );
        self.insert_ue(ctx);
        events.push(EnbEvent::RachAttempt {
            cell: self.config.cell_id,
            rnti,
            ue: ue_tag,
            at: now,
        });
        rnti
    }
}

/// The eNodeB data plane: one or more cells plus their UE contexts.
pub struct Enb {
    config: EnbConfig,
    params: EnbParams,
    cells: Vec<CellState>,
    events: Vec<EnbEvent>,
    rng: StdRng,
}

impl Enb {
    /// Build an eNodeB from a validated configuration.
    pub fn new(config: EnbConfig, params: EnbParams) -> Result<Self> {
        config.validate()?;
        let cells = config.cells.iter().cloned().map(CellState::new).collect();
        let rng = StdRng::seed_from_u64(params.seed);
        Ok(Enb {
            config,
            params,
            cells,
            events: Vec::new(),
            rng,
        })
    }

    /// The eNodeB's static configuration.
    pub fn config(&self) -> &EnbConfig {
        &self.config
    }

    /// The data-plane parameters.
    pub fn params(&self) -> &EnbParams {
        &self.params
    }

    fn cell_idx(&self, cell: CellId) -> Result<usize> {
        self.cells
            .iter()
            .position(|c| c.config.cell_id == cell)
            .ok_or_else(|| FlexError::NotFound(format!("{cell}"))) // lint:allow(alloc-reach) error path
    }

    fn cell_mut(&mut self, cell: CellId) -> Result<&mut CellState> {
        let i = self.cell_idx(cell)?;
        Ok(&mut self.cells[i])
    }

    fn cell_ref(&self, cell: CellId) -> Result<&CellState> {
        let i = self.cell_idx(cell)?;
        Ok(&self.cells[i])
    }

    // ------------------------------------------------------------------
    // RRC-facing commands (driven by the control plane)
    // ------------------------------------------------------------------

    /// Receive a random-access attempt from a UE. Returns the temporary
    /// C-RNTI. RAR/Msg3 complete autonomously; the RRC connection setup is
    /// then queued on the SRB and must be *scheduled* (locally or
    /// remotely) before the T300-like timer expires, or the attach fails.
    pub fn rach(
        &mut self,
        cell: CellId,
        ue_tag: UeId,
        slice: SliceId,
        priority_group: u8,
        now: Tti,
    ) -> Result<Rnti> {
        let timers = self.params.timers;
        let mut events = std::mem::take(&mut self.events);
        let rnti =
            self.cell_mut(cell)?
                .do_rach(ue_tag, slice, priority_group, now, &timers, &mut events);
        self.events = events;
        Ok(rnti)
    }

    /// Admit an already-connected UE (handover target side): no attach
    /// procedure, optionally preloaded with forwarded downlink bytes.
    pub fn admit_ue(
        &mut self,
        cell: CellId,
        ue_tag: UeId,
        slice: SliceId,
        priority_group: u8,
        forwarded: Bytes,
        now: Tti,
    ) -> Result<Rnti> {
        let cell_state = self.cell_mut(cell)?;
        let rnti = cell_state.alloc_rnti();
        let mut ctx = UeContext::new(rnti, ue_tag, slice, priority_group, RrcState::Connected);
        if !forwarded.is_zero() {
            ctx.drb.enqueue(forwarded, now);
        }
        cell_state.insert_ue(ctx);
        cell_state.stats.attaches += 1;
        self.events.push(EnbEvent::UeAttached {
            cell,
            rnti,
            ue: ue_tag,
            at: now,
        });
        Ok(rnti)
    }

    /// Start a handover for a connected UE: the handover command is queued
    /// on the SRB; once delivered the UE leaves and its remaining backlog
    /// is surfaced for forwarding.
    pub fn start_handover(&mut self, cell: CellId, rnti: Rnti, now: Tti) -> Result<()> {
        let deadline = now + self.params.timers.ho_deadline;
        let ctx = self
            .cell_mut(cell)?
            .ue_mut(rnti)
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))?; // lint:allow(alloc-reach) error path
        if ctx.state != RrcState::Connected {
            // lint:allow(alloc-reach) error path
            return Err(FlexError::InvalidConfig(format!(
                "{rnti} not in connected state"
            )));
        }
        ctx.state = RrcState::HandoverPrep { deadline };
        ctx.srb.enqueue(Bytes(HO_COMMAND_BYTES), now);
        Ok(())
    }

    /// Detach a UE immediately.
    pub fn detach(&mut self, cell: CellId, rnti: Rnti, now: Tti) -> Result<()> {
        let ctx = self
            .cell_mut(cell)?
            .remove_ue(rnti)
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))?; // lint:allow(alloc-reach) error path
        self.events.push(EnbEvent::UeDetached {
            cell,
            rnti,
            ue: ctx.ue_tag,
            at: now,
        });
        Ok(())
    }

    /// Record a measurement report from a UE (the simulator computes the
    /// RSRP values from its geometry).
    pub fn submit_measurement(
        &mut self,
        cell: CellId,
        rnti: Rnti,
        serving_rsrp_dbm: f64,
        neighbours: Vec<(u32, f64)>,
        now: Tti,
    ) -> Result<()> {
        // Validate the UE exists, then emit.
        self.cell_ref(cell)?
            .ue(rnti)
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))?; // lint:allow(alloc-reach) error path
        self.events.push(EnbEvent::MeasurementReport {
            cell,
            rnti,
            at: now,
            serving_rsrp_dbm,
            neighbours,
        });
        Ok(())
    }

    /// Configure DRX for a UE (`cycle`, `on_duration` in TTIs). The UE is
    /// only schedulable during the on-duration.
    pub fn set_drx(&mut self, cell: CellId, rnti: Rnti, cycle: u64, on: u64) -> Result<()> {
        let ctx = self
            .cell_mut(cell)?
            .ue_mut(rnti)
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))?; // lint:allow(alloc-reach) error path
        if on == 0 || on > cycle {
            return Err(FlexError::InvalidConfig(format!(
                "DRX on-duration {on} outside 1..=cycle({cycle})"
            )));
        }
        ctx.drx = Some((cycle, on));
        Ok(())
    }

    /// (De)activate a secondary component carrier for a UE (the paper's
    /// Table 1 carrier-aggregation command). The secondary cell must be
    /// another cell of this eNodeB.
    pub fn set_scell(
        &mut self,
        pcell: CellId,
        rnti: Rnti,
        scell: CellId,
        activate: bool,
    ) -> Result<()> {
        if scell == pcell {
            return Err(FlexError::InvalidConfig(format!(
                "{scell} is the UE's primary cell"
            )));
        }
        self.cell_idx(scell)?; // must exist on this eNodeB
        let ctx = self
            .cell_mut(pcell)?
            .ue_mut(rnti)
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))?; // lint:allow(alloc-reach) error path
        if activate {
            ctx.active_scells.insert(scell.0);
        } else {
            ctx.active_scells.remove(&scell.0);
        }
        Ok(())
    }

    /// Set (or clear) a cell's almost-blank-subframe pattern.
    pub fn set_abs_pattern(&mut self, cell: CellId, pattern: Option<AbsPattern>) -> Result<()> {
        self.cell_mut(cell)?.abs_pattern = pattern;
        Ok(())
    }

    /// The current ABS pattern of a cell.
    pub fn abs_pattern(&self, cell: CellId) -> Result<Option<AbsPattern>> {
        Ok(self.cell_ref(cell)?.abs_pattern)
    }

    // ------------------------------------------------------------------
    // Traffic ingress (EPC side / UE side)
    // ------------------------------------------------------------------

    /// Downlink traffic from the core network for a UE's data bearer.
    pub fn inject_dl_traffic(
        &mut self,
        cell: CellId,
        rnti: Rnti,
        payload: Bytes,
        now: Tti,
    ) -> Result<()> {
        let ctx = self
            .cell_mut(cell)?
            .ue_mut(rnti)
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))?; // lint:allow(alloc-reach) error path
        let pdu = ctx.pdcp_dl.submit(payload, now);
        ctx.drb.enqueue(pdu.size, now);
        Ok(())
    }

    /// Uplink backlog generated at the UE.
    pub fn inject_ul_traffic(&mut self, cell: CellId, rnti: Rnti, payload: Bytes) -> Result<()> {
        let ctx = self
            .cell_mut(cell)?
            .ue_mut(rnti)
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))?; // lint:allow(alloc-reach) error path
        ctx.ul_backlog += payload.as_u64();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scheduling interface
    // ------------------------------------------------------------------

    /// Describe the subframe for a downlink scheduler. Call after
    /// [`Enb::begin_tti`]. For `target == now` the input reflects the
    /// retransmission reservations of the current subframe; for a future
    /// target (remote schedule-ahead) the full budgets are assumed.
    pub fn dl_scheduler_input(
        &self,
        cell: CellId,
        now: Tti,
        target: Tti,
    ) -> Result<DlSchedulerInput> {
        let mut input = DlSchedulerInput::default();
        self.dl_scheduler_input_into(cell, now, target, &mut input)?;
        Ok(input)
    }

    /// In-place variant of [`Enb::dl_scheduler_input`]: refills `input`,
    /// reusing its `ues`/`retx` buffers (the per-TTI hot path).
    pub fn dl_scheduler_input_into(
        &self,
        cell: CellId,
        now: Tti,
        target: Tti,
        input: &mut DlSchedulerInput,
    ) -> Result<()> {
        let c = self.cell_ref(cell)?;
        let current = target == now;
        let n_prb = c.config.dl_bandwidth.n_prb();
        let available = if current {
            if c.muted_now {
                0
            } else {
                n_prb.saturating_sub(c.retx_prbs)
            }
        } else {
            n_prb
        };
        let max_dcis = if current {
            c.config
                .max_dl_dcis_per_tti
                .saturating_sub(c.current_retx.len() as u8)
        } else {
            c.config.max_dl_dcis_per_tti
        };
        input.cell = cell;
        input.now = now;
        input.target = target;
        input.available_prb = available;
        input.max_dcis = max_dcis;
        input.ues.clear();
        input.ues.extend(
            c.ues
                .iter()
                .filter(|u| u.is_schedulable(target))
                .map(|u| UeSchedInfo {
                    rnti: u.rnti,
                    cqi: u.last_cqi,
                    queue_bytes: u.drb.buffer_occupancy(),
                    srb_bytes: u.srb.buffer_occupancy(),
                    avg_rate_bps: u.avg_rate_bps,
                    slice: u.slice,
                    priority_group: u.priority_group,
                    hol_delay_ms: u.drb.hol_delay(now),
                }),
        );
        input.retx.clear();
        input.retx.extend(c.current_retx.iter().map(|r| RetxInfo {
            rnti: r.rnti,
            n_prb: r.n_prb,
        }));
        Ok(())
    }

    /// Describe the subframe for an uplink scheduler.
    pub fn ul_scheduler_input(
        &self,
        cell: CellId,
        now: Tti,
        target: Tti,
    ) -> Result<UlSchedulerInput> {
        let mut input = UlSchedulerInput::default();
        self.ul_scheduler_input_into(cell, now, target, &mut input)?;
        Ok(input)
    }

    /// In-place variant of [`Enb::ul_scheduler_input`], reusing `input.ues`.
    pub fn ul_scheduler_input_into(
        &self,
        cell: CellId,
        now: Tti,
        target: Tti,
        input: &mut UlSchedulerInput,
    ) -> Result<()> {
        let c = self.cell_ref(cell)?;
        input.cell = cell;
        input.now = now;
        input.target = target;
        input.available_prb = c.config.ul_bandwidth.n_prb();
        input.max_grants = c.config.max_ul_grants_per_tti;
        input.ues.clear();
        input.ues.extend(
            c.ues
                .iter()
                .filter(|u| u.state.is_connected())
                .map(|u| UlUeInfo {
                    rnti: u.rnti,
                    bsr_bytes: Bytes(u.ul_bsr),
                    cqi: u.last_cqi,
                    prb_cap: self.params.ul_prb_cap,
                }),
        );
        Ok(())
    }

    /// Submit a downlink scheduling decision. Rejected (and counted) if
    /// the target subframe has already passed, or if a decision for the
    /// same cell × subframe exists (control conflict, paper §7.3).
    pub fn submit_dl_decision(&mut self, decision: DlSchedulingDecision, now: Tti) -> Result<()> {
        let cell = decision.cell;
        let i = self.cell_idx(cell)?;
        let c = &mut self.cells[i];
        if decision.target < now {
            c.stats.missed_deadlines += 1;
            self.events.push(EnbEvent::DecisionMissedDeadline {
                cell,
                target: decision.target,
                at: now,
            });
            // lint:allow(alloc-reach) error path
            return Err(FlexError::Deadline(format!(
                "decision for {} arrived at {}",
                decision.target, now
            )));
        }
        decision.validate(c.config.dl_bandwidth.n_prb(), c.config.max_dl_dcis_per_tti)?;
        if c.pending_dl.iter().any(|(t, _)| *t == decision.target.0) {
            // lint:allow(alloc-reach) error path
            return Err(FlexError::Conflict(format!(
                "decision for {}/{} already pending",
                cell, decision.target
            )));
        }
        c.pending_dl.push((decision.target.0, decision));
        Ok(())
    }

    /// Submit an uplink scheduling decision (same deadline semantics).
    pub fn submit_ul_decision(&mut self, decision: UlSchedulingDecision, now: Tti) -> Result<()> {
        let i = self.cell_idx(decision.cell)?;
        let c = &mut self.cells[i];
        if decision.target < now {
            c.stats.missed_deadlines += 1;
            // lint:allow(alloc-reach) error path
            return Err(FlexError::Deadline(format!(
                "UL decision for {} arrived at {}",
                decision.target, now
            )));
        }
        if c.pending_ul.iter().any(|(t, _)| *t == decision.target.0) {
            // lint:allow(alloc-reach) error path
            return Err(FlexError::Conflict(format!(
                "UL decision for {}/{} already pending",
                decision.cell, decision.target
            )));
        }
        c.pending_ul.push((decision.target.0, decision));
        Ok(())
    }

    /// A cleared DCI vector recycled from decisions this cell has already
    /// executed. Schedulers build their decision into this buffer so the
    /// submit → execute → recycle loop is allocation-free in steady state.
    pub fn recycled_dci_buffer(&mut self, cell: CellId) -> Vec<DlDci> {
        match self.cell_idx(cell) {
            Ok(i) => self.cells[i].dci_pool.pop().unwrap_or_default(),
            Err(_) => Vec::new(), // lint:allow(alloc-reach) error path — unknown cell
        }
    }

    /// Uplink counterpart of [`Enb::recycled_dci_buffer`].
    pub fn recycled_grant_buffer(&mut self, cell: CellId) -> Vec<UlGrant> {
        match self.cell_idx(cell) {
            Ok(i) => self.cells[i].grant_pool.pop().unwrap_or_default(),
            Err(_) => Vec::new(), // lint:allow(alloc-reach) error path — unknown cell
        }
    }

    /// Whether the cell will put energy on the air this subframe
    /// (retransmissions reserved in `begin_tti` or a pending decision).
    /// Valid after `begin_tti` and any decision submissions.
    pub fn will_transmit_dl(&self, cell: CellId, tti: Tti) -> bool {
        let Ok(c) = self.cell_ref(cell) else {
            return false;
        };
        if c.muted_now {
            return false;
        }
        !c.current_retx.is_empty()
            || c.pending_dl
                .iter()
                .any(|(t, d)| *t == tti.0 && !d.dcis.is_empty())
    }

    // ------------------------------------------------------------------
    // The TTI pipeline
    // ------------------------------------------------------------------

    /// Phase 1 of the TTI: measurements, feedback, timers, RACH,
    /// retransmission reservation.
    pub fn begin_tti(&mut self, tti: Tti, phy: &mut dyn PhyView) {
        let params = self.params;
        let mut events = std::mem::take(&mut self.events);
        for c in &mut self.cells {
            c.stats.ttis += 1;
            c.muted_now = c.is_abs(tti);
            if c.muted_now {
                c.stats.abs_muted_ttis += 1;
            }

            // Scheduled (re-)RACHes.
            let due: Vec<_> = {
                let (due, keep): (Vec<_>, Vec<_>) =
                    // lint:allow(alloc-reach) partitions allocate only when a RACH is due
                    c.scheduled_rach.drain(..).partition(|(t, ..)| *t <= tti.0);
                c.scheduled_rach = keep;
                due
            };
            for (_, ue_tag, slice, group) in due {
                c.do_rach(ue_tag, slice, group, tti, &params.timers, &mut events);
            }

            // CQI measurement.
            let cell_id = c.config.cell_id;
            for u in c.ues.iter_mut() {
                if u.cqi_updated == Tti::ZERO || tti.0.is_multiple_of(params.cqi_period) {
                    let sinr = phy.sinr_db(cell_id, u.rnti, tti);
                    u.sinr_db = sinr;
                    u.last_cqi = cqi_from_sinr(sinr);
                    u.cqi_updated = tti;
                }
            }

            // HARQ feedback due this TTI (the drained vector returns to
            // the pool once processed — no steady-state allocation).
            if let Some(qi) = c.feedback_queue.iter().position(|(t, _)| *t == tti.0) {
                let (_, mut fbs) = c.feedback_queue.swap_remove(qi);
                for fb in fbs.iter().copied() {
                    let Ok(ui) = c.ues.binary_search_by_key(&fb.rnti, |u| u.rnti) else {
                        continue;
                    };
                    let u = &mut c.ues[ui];
                    match u.harq.feedback(fb.pid, fb.success, tti) {
                        FeedbackOutcome::Acked { srb, drb } => {
                            u.srb_in_flight = u.srb_in_flight.saturating_sub(srb);
                            u.dl_delivered_bits += drb * 8;
                            // RRC advances when the outstanding signalling
                            // message is fully delivered.
                            if srb > 0 && u.srb_drained() {
                                match u.state {
                                    RrcState::AwaitSetup { .. } => {
                                        u.state = RrcState::Connected;
                                        c.stats.attaches += 1;
                                        events.push(EnbEvent::UeAttached {
                                            cell: cell_id,
                                            rnti: u.rnti,
                                            ue: u.ue_tag,
                                            at: tti,
                                        });
                                    }
                                    RrcState::HandoverPrep { .. } => {
                                        // Handled below: mark for removal by
                                        // setting the deadline in the past is
                                        // fragile; instead record rnti.
                                    }
                                    _ => {}
                                }
                            }
                        }
                        FeedbackOutcome::WillRetransmit => {}
                        FeedbackOutcome::Exhausted { srb, drb } => {
                            // Higher-layer recovery: bytes return to the
                            // head of their queues.
                            if srb > 0 {
                                u.srb_in_flight = u.srb_in_flight.saturating_sub(srb);
                                u.srb.requeue_front(Bytes(srb), tti);
                            }
                            if drb > 0 {
                                u.drb.requeue_front(Bytes(drb), tti);
                                u.drb.account_loss(Bytes(drb));
                            }
                        }
                    }
                }
                fbs.clear();
                c.feedback_pool.push(fbs);
            }

            // Handover completion: command delivered → UE leaves.
            let ho_done: Vec<Rnti> = c
                .ues
                .iter()
                .filter(|u| matches!(u.state, RrcState::HandoverPrep { .. }) && u.srb_drained())
                .map(|u| u.rnti)
                // lint:allow(alloc-reach) fills only while a handover is in flight
                .collect();
            for rnti in ho_done {
                let mut ctx = c.remove_ue(rnti).expect("context exists"); // lint:allow(panic-reach) rnti from the scan above
                let forwarded = ctx.drb.flush() + ctx.harq.outstanding();
                events.push(EnbEvent::HandoverExecuted {
                    cell: cell_id,
                    rnti,
                    ue: ctx.ue_tag,
                    at: tti,
                    forwarded_bytes: forwarded,
                });
            }

            // RRC timers: Msg3 completion and deadline expiry.
            // lint:allow(alloc-reach) populated only on RRC deadline expiry
            let mut failed: Vec<(Rnti, &'static str)> = Vec::new();
            for u in c.ues.iter_mut() {
                match u.state {
                    RrcState::AwaitMsg3 { at } if at <= tti => {
                        u.srb.enqueue(Bytes(CONN_SETUP_BYTES), tti);
                        u.state = RrcState::AwaitSetup {
                            deadline: tti + params.timers.setup_deadline,
                        };
                    }
                    _ => {}
                }
                if let Some(deadline) = u.state.deadline() {
                    if deadline < tti {
                        failed.push((u.rnti, u.state.stage()));
                    }
                }
            }
            for (rnti, stage) in failed {
                let ctx = c.remove_ue(rnti).expect("context exists"); // lint:allow(panic-reach) rnti from the scan above
                c.stats.attach_failures += 1;
                events.push(EnbEvent::AttachFailed {
                    cell: cell_id,
                    rnti,
                    ue: ctx.ue_tag,
                    at: tti,
                    stage,
                });
                if params.auto_reattach && stage != "handover" {
                    c.scheduled_rach.push((
                        tti.0 + params.timers.attach_backoff,
                        ctx.ue_tag,
                        ctx.slice,
                        ctx.priority_group,
                    ));
                }
            }

            // Reserve HARQ retransmissions (transmitted in finish_tti).
            c.current_retx.clear();
            c.retx_prbs = 0;
            if !c.muted_now {
                let current_retx = &mut c.current_retx;
                let retx_prbs = &mut c.retx_prbs;
                for u in c.ues.iter_mut() {
                    let rnti = u.rnti;
                    u.harq.drain_due_retx(tti, |pid, n_prb, mcs, attempt| {
                        current_retx.push(PendingRetx {
                            rnti,
                            pid,
                            n_prb,
                            mcs,
                            attempt,
                        });
                        *retx_prbs = retx_prbs.saturating_add(n_prb);
                    });
                }
            }

            // Scheduling requests for new uplink data.
            for u in c.ues.iter_mut() {
                if u.state.is_connected() && u.ul_backlog > 0 && u.ul_bsr == 0 {
                    events.push(EnbEvent::SchedulingRequest {
                        cell: cell_id,
                        rnti: u.rnti,
                        at: tti,
                    });
                    u.ul_bsr = crate::mac::bsr::bsr_upper_edge_bytes(bsr_index(u.ul_backlog))
                        .min(u.ul_backlog.max(1));
                }
            }
        }
        self.events = events;
    }

    /// Phase 2 of the TTI: put retransmissions and the submitted decisions
    /// on the air, execute uplink grants, update statistics.
    pub fn finish_tti(&mut self, tti: Tti, phy: &mut dyn PhyView) {
        let params = self.params;
        for c in &mut self.cells {
            let cell_id = c.config.cell_id;
            // Retransmissions first (they pre-empted the PRBs). The
            // reservation buffer is walked in place and cleared after —
            // its capacity survives into the next TTI.
            if !c.muted_now {
                for i in 0..c.current_retx.len() {
                    let r = c.current_retx[i];
                    let Ok(ui) = c.ues.binary_search_by_key(&r.rnti, |u| u.rnti) else {
                        continue;
                    };
                    let sinr = phy.sinr_db(cell_id, r.rnti, tti)
                        + HarqEntity::combining_gain_db(r.attempt);
                    let draw: f64 = self.rng.random();
                    let success = params.bler.success(r.mcs, sinr, draw);
                    push_feedback(
                        &mut c.feedback_queue,
                        &mut c.feedback_pool,
                        tti.0 + HARQ_FEEDBACK_DELAY,
                        Feedback {
                            rnti: r.rnti,
                            pid: r.pid,
                            success,
                        },
                    );
                    c.stats.dl_prbs_used += r.n_prb as u64;
                    let tbs = tbs_bits(itbs_for_mcs(r.mcs.0), r.n_prb) as u64;
                    c.stats.dl_mac_bits += tbs;
                    c.ues[ui].bits_this_tti += tbs;
                }
                c.current_retx.clear();
            }

            // New-data decision for this subframe. The decision's DCI
            // buffer is donated back to the pool once executed.
            if let Some(pi) = c.pending_dl.iter().position(|(t, _)| *t == tti.0) {
                let (_, mut decision) = c.pending_dl.swap_remove(pi);
                if !c.muted_now {
                    c.stats.decisions_applied += 1;
                    for dci in decision.dcis.iter().copied() {
                        let Ok(ui) = c.ues.binary_search_by_key(&dci.rnti, |u| u.rnti) else {
                            continue;
                        };
                        let u = &mut c.ues[ui];
                        if !u.is_schedulable(tti) {
                            continue;
                        }
                        let Some(pid) = u.harq.idle_process() else {
                            continue;
                        };
                        let tbs_bytes = (tbs_bits(itbs_for_mcs(dci.mcs.0), dci.n_prb) as u64) / 8;
                        if tbs_bytes <= MAC_HEADER_BYTES {
                            continue;
                        }
                        let mut capacity = tbs_bytes - MAC_HEADER_BYTES;
                        let mut srb_payload = 0u64;
                        let mut drb_payload = 0u64;
                        if let Some(pdu) = u.srb.dequeue_pdu(Bytes(capacity), tti) {
                            srb_payload = pdu.payload.as_u64();
                            capacity -= pdu.size.as_u64();
                        }
                        if capacity > 0 {
                            if let Some(pdu) = u.drb.dequeue_pdu(Bytes(capacity), tti) {
                                drb_payload = pdu.payload.as_u64();
                            }
                        }
                        let payload = srb_payload + drb_payload;
                        if payload == 0 {
                            continue; // nothing to send: allocation wasted
                        }
                        u.srb_in_flight += srb_payload;
                        u.harq
                            .start(pid, srb_payload, drb_payload, dci.mcs, dci.n_prb, tti);
                        let sinr = phy.sinr_db(cell_id, dci.rnti, tti);
                        let draw: f64 = self.rng.random();
                        let success = params.bler.success(dci.mcs, sinr, draw);
                        push_feedback(
                            &mut c.feedback_queue,
                            &mut c.feedback_pool,
                            tti.0 + HARQ_FEEDBACK_DELAY,
                            Feedback {
                                rnti: dci.rnti,
                                pid,
                                success,
                            },
                        );
                        c.stats.dl_prbs_used += dci.n_prb as u64;
                        let tbs = tbs_bits(itbs_for_mcs(dci.mcs.0), dci.n_prb) as u64;
                        c.stats.dl_mac_bits += tbs;
                        c.ues[ui].bits_this_tti += tbs;
                    }
                }
                decision.dcis.clear();
                c.dci_pool.push(decision.dcis);
            }

            // Uplink grants for this subframe (grant buffer recycled the
            // same way as the DCI buffer above).
            if let Some(pi) = c.pending_ul.iter().position(|(t, _)| *t == tti.0) {
                let (_, mut decision) = c.pending_ul.swap_remove(pi);
                for g in decision.grants.iter().copied() {
                    let Ok(ui) = c.ues.binary_search_by_key(&g.rnti, |u| u.rnti) else {
                        continue;
                    };
                    let u = &mut c.ues[ui];
                    let tbs_bytes = (tbs_bits(itbs_for_mcs(g.mcs.0), g.n_prb) as u64) / 8;
                    let sent = tbs_bytes.saturating_sub(MAC_HEADER_BYTES).min(u.ul_backlog);
                    if sent == 0 {
                        continue;
                    }
                    c.stats.ul_prbs_used += g.n_prb as u64;
                    let sinr = phy.sinr_db(cell_id, g.rnti, tti);
                    let draw: f64 = self.rng.random();
                    if params.bler.success(g.mcs, sinr, draw) {
                        u.ul_backlog -= sent;
                        u.ul_bsr = u.ul_bsr.saturating_sub(sent);
                        u.ul_delivered_bits += sent * 8;
                        // Piggybacked BSR keeps the eNodeB view fresh.
                        if u.ul_backlog > 0 {
                            u.ul_bsr =
                                crate::mac::bsr::bsr_upper_edge_bytes(bsr_index(u.ul_backlog))
                                    .min(u.ul_backlog);
                        }
                    }
                    // On failure the backlog stays; a later grant retries.
                }
                decision.grants.clear();
                c.grant_pool.push(decision.grants);
            }

            // Average-rate EWMA for proportional fairness.
            for u in c.ues.iter_mut() {
                let inst = (u.bits_this_tti * 1000) as f64; // bits/s this TTI
                u.avg_rate_bps =
                    (1.0 - params.avg_rate_alpha) * u.avg_rate_bps + params.avg_rate_alpha * inst;
                u.bits_this_tti = 0;
            }
        }
    }

    /// Drain the events accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<EnbEvent> {
        std::mem::take(&mut self.events)
    }

    // ------------------------------------------------------------------
    // Statistics / introspection
    // ------------------------------------------------------------------

    /// Cell identifiers served by this eNodeB.
    pub fn cell_ids(&self) -> Vec<CellId> {
        self.cells.iter().map(|c| c.config.cell_id).collect()
    }

    /// Number of cells (allocation-free companion to [`Enb::cell_ids`]).
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// The id of the `idx`-th cell (same order as [`Enb::cell_ids`]).
    pub fn cell_id_at(&self, idx: usize) -> CellId {
        self.cells[idx].config.cell_id
    }

    /// A cell's configuration.
    pub fn cell_config(&self, cell: CellId) -> Result<&CellConfig> {
        Ok(&self.cell_ref(cell)?.config)
    }

    /// Per-UE statistics for a cell.
    pub fn ue_stats(&self, cell: CellId) -> Result<Vec<UeStats>> {
        Ok(self.ue_stats_iter(cell)?.collect())
    }

    /// Allocation-free variant of [`Enb::ue_stats`]: stream the per-UE
    /// statistics (the per-TTI reports hot path).
    pub fn ue_stats_iter(&self, cell: CellId) -> Result<impl Iterator<Item = UeStats> + '_> {
        let c = self.cell_ref(cell)?;
        Ok(c.ues.iter().map(|u| u.stats()))
    }

    /// A single UE's statistics (binary-searched slab lookup, not a scan).
    pub fn ue_stat(&self, cell: CellId, rnti: Rnti) -> Result<UeStats> {
        let c = self.cell_ref(cell)?;
        c.ue(rnti)
            .map(|u| u.stats())
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))
    }

    /// A UE's downlink queue occupancy — the cheap accessor the per-TTI
    /// traffic pacing loop needs (no [`UeStats`] construction).
    pub fn dl_queue_bytes(&self, cell: CellId, rnti: Rnti) -> Result<Bytes> {
        let c = self.cell_ref(cell)?;
        let u = c
            .ue(rnti)
            .ok_or_else(|| FlexError::NotFound(format!("{rnti}")))?; // lint:allow(alloc-reach) error path
        Ok(u.drb.buffer_occupancy())
    }

    /// Cell-level statistics.
    pub fn cell_stats(&self, cell: CellId) -> Result<&CellStats> {
        Ok(&self.cell_ref(cell)?.stats)
    }

    /// Number of UE contexts in a cell.
    pub fn n_ues(&self, cell: CellId) -> Result<usize> {
        Ok(self.cell_ref(cell)?.ues.len())
    }

    /// Approximate heap footprint of the data-plane state (Fig. 6a's
    /// memory-overhead comparison).
    pub fn heap_bytes(&self) -> usize {
        let mut total = 0usize;
        for c in &self.cells {
            total += c.ues.len() * std::mem::size_of::<UeContext>();
            for u in c.ues.iter() {
                total += u.srb.heap_bytes() + u.drb.heap_bytes();
            }
            total += c.pending_dl.len() * std::mem::size_of::<DlSchedulingDecision>();
            total += c.feedback_queue.len() * std::mem::size_of::<Vec<Feedback>>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::scheduler::{
        DlScheduler, RoundRobinScheduler, UlRoundRobinScheduler, UlScheduler,
    };
    use flexran_types::config::EnbConfig;

    fn enb() -> Enb {
        Enb::new(
            EnbConfig::single_cell(flexran_types::ids::EnbId(1)),
            EnbParams::default(),
        )
        .unwrap()
    }

    const CELL: CellId = CellId(0);

    /// Drive the eNodeB with local RR schedulers for `n` TTIs.
    fn run_local(enb: &mut Enb, phy: &mut dyn PhyView, from: u64, n: u64) -> Vec<EnbEvent> {
        let mut dl = RoundRobinScheduler::new();
        let mut ul = UlRoundRobinScheduler::new();
        let mut events = Vec::new();
        for t in from..from + n {
            let tti = Tti(t);
            enb.begin_tti(tti, phy);
            let input = enb.dl_scheduler_input(CELL, tti, tti).unwrap();
            let out = dl.schedule_dl(&input);
            if !out.dcis.is_empty() {
                enb.submit_dl_decision(
                    DlSchedulingDecision {
                        cell: CELL,
                        target: tti,
                        dcis: out.dcis,
                    },
                    tti,
                )
                .unwrap();
            }
            let uin = enb.ul_scheduler_input(CELL, tti, tti).unwrap();
            let uout = ul.schedule_ul(&uin);
            if !uout.grants.is_empty() {
                enb.submit_ul_decision(
                    UlSchedulingDecision {
                        cell: CELL,
                        target: tti,
                        grants: uout.grants,
                    },
                    tti,
                )
                .unwrap();
            }
            enb.finish_tti(tti, phy);
            events.extend(enb.take_events());
        }
        events
    }

    #[test]
    fn attach_completes_with_local_scheduler() {
        let mut e = enb();
        let mut phy = StaticPhyView(20.0);
        let rnti = e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        let events = run_local(&mut e, &mut phy, 0, 60);
        assert!(
            events
                .iter()
                .any(|ev| matches!(ev, EnbEvent::UeAttached { rnti: r, .. } if *r == rnti)),
            "UE should attach: {events:?}"
        );
        let stats = e.ue_stat(CELL, rnti).unwrap();
        assert!(stats.connected);
    }

    #[test]
    fn attach_fails_without_scheduling() {
        let params = EnbParams {
            auto_reattach: false,
            ..EnbParams::default()
        };
        let mut e = Enb::new(EnbConfig::single_cell(flexran_types::ids::EnbId(1)), params).unwrap();
        let mut phy = StaticPhyView(20.0);
        e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        // Step TTIs without ever submitting a decision.
        for t in 0..250 {
            e.begin_tti(Tti(t), &mut phy);
            e.finish_tti(Tti(t), &mut phy);
        }
        let events = e.take_events();
        assert!(events
            .iter()
            .any(|ev| matches!(ev, EnbEvent::AttachFailed { stage: "setup", .. })));
        assert_eq!(e.n_ues(CELL).unwrap(), 0);
    }

    #[test]
    fn full_buffer_throughput_matches_cqi15_regime() {
        let mut e = enb();
        let mut phy = StaticPhyView(26.0); // CQI 15
        let rnti = e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        run_local(&mut e, &mut phy, 0, 60);
        // Saturate the downlink for 2 simulated seconds.
        for t in 60..2060 {
            if e.ue_stat(CELL, rnti).unwrap().dl_queue_bytes.as_u64() < 1_000_000 {
                e.inject_dl_traffic(CELL, rnti, Bytes(100_000), Tti(t))
                    .unwrap();
            }
            let mut phy2 = StaticPhyView(26.0);
            run_local(&mut e, &mut phy2, t, 1);
        }
        let stats = e.ue_stat(CELL, rnti).unwrap();
        let mbps = stats.dl_delivered_bits as f64 / 2.0 / 1e6;
        assert!(
            (28.0..38.0).contains(&mbps),
            "CQI-15 full-buffer goodput {mbps} Mb/s"
        );
    }

    #[test]
    fn late_decision_rejected_and_counted() {
        let mut e = enb();
        let mut phy = StaticPhyView(20.0);
        e.begin_tti(Tti(10), &mut phy);
        let err = e
            .submit_dl_decision(
                DlSchedulingDecision {
                    cell: CELL,
                    target: Tti(5),
                    dcis: vec![],
                },
                Tti(10),
            )
            .unwrap_err();
        assert_eq!(err.category(), "deadline");
        assert_eq!(e.cell_stats(CELL).unwrap().missed_deadlines, 1);
        assert!(e
            .take_events()
            .iter()
            .any(|ev| ev.kind() == "missed-deadline"));
    }

    #[test]
    fn conflicting_decisions_rejected() {
        let mut e = enb();
        let d = DlSchedulingDecision {
            cell: CELL,
            target: Tti(100),
            dcis: vec![],
        };
        e.submit_dl_decision(d.clone(), Tti(0)).unwrap();
        let err = e.submit_dl_decision(d, Tti(0)).unwrap_err();
        assert_eq!(err.category(), "conflict");
    }

    #[test]
    fn abs_mutes_downlink() {
        let mut e = enb();
        let mut phy = StaticPhyView(20.0);
        let rnti = e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        run_local(&mut e, &mut phy, 0, 60);
        // Mute everything.
        e.set_abs_pattern(CELL, Some([true; 40])).unwrap();
        e.inject_dl_traffic(CELL, rnti, Bytes(50_000), Tti(60))
            .unwrap();
        let before = e.ue_stat(CELL, rnti).unwrap().dl_delivered_bits;
        run_local(&mut e, &mut phy, 60, 100);
        let after = e.ue_stat(CELL, rnti).unwrap().dl_delivered_bits;
        assert_eq!(before, after, "no delivery while muted");
        assert!(e.cell_stats(CELL).unwrap().abs_muted_ttis >= 100);
        // Unmute: traffic flows again.
        e.set_abs_pattern(CELL, None).unwrap();
        run_local(&mut e, &mut phy, 160, 100);
        assert!(e.ue_stat(CELL, rnti).unwrap().dl_delivered_bits > after);
    }

    #[test]
    fn harq_recovers_under_poor_channel() {
        // SINR well below the scheduled MCS's operating point forces
        // retransmissions; chase combining should still deliver most data.
        let mut e = enb();
        let rnti = {
            let mut phy = StaticPhyView(20.0);
            let r = e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
            run_local(&mut e, &mut phy, 0, 60);
            r
        };
        // Now drop the channel: CQI follows (measured), so link adaptation
        // keeps BLER near target; verify retransmissions happen and data
        // still arrives.
        let mut phy = StaticPhyView(2.0);
        for t in 60..1060 {
            if e.ue_stat(CELL, rnti).unwrap().dl_queue_bytes.as_u64() < 100_000 {
                e.inject_dl_traffic(CELL, rnti, Bytes(20_000), Tti(t))
                    .unwrap();
            }
            run_local(&mut e, &mut phy, t, 1);
        }
        let stats = e.ue_stat(CELL, rnti).unwrap();
        assert!(stats.dl_delivered_bits > 0);
        assert!(stats.harq_tx > 0);
        // At the 10% BLER operating point we expect some retransmissions.
        assert!(stats.harq_retx > 0, "expected HARQ retransmissions");
        let retx_rate = stats.harq_retx as f64 / stats.harq_tx as f64;
        assert!(retx_rate < 0.5, "retx rate {retx_rate} too high");
    }

    #[test]
    fn uplink_flows() {
        let mut e = enb();
        let mut phy = StaticPhyView(20.0);
        let rnti = e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        run_local(&mut e, &mut phy, 0, 60);
        e.inject_ul_traffic(CELL, rnti, Bytes(100_000)).unwrap();
        let events = run_local(&mut e, &mut phy, 60, 200);
        assert!(events.iter().any(|ev| ev.kind() == "sr"), "SR raised");
        let stats = e.ue_stat(CELL, rnti).unwrap();
        assert!(
            stats.ul_delivered_bits >= 100_000 * 8,
            "UL backlog drained: {}",
            stats.ul_delivered_bits
        );
    }

    #[test]
    fn handover_emits_forwarding_event() {
        let mut e = enb();
        let mut phy = StaticPhyView(20.0);
        let rnti = e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        run_local(&mut e, &mut phy, 0, 60);
        e.inject_dl_traffic(CELL, rnti, Bytes(5_000), Tti(60))
            .unwrap();
        e.start_handover(CELL, rnti, Tti(60)).unwrap();
        let events = run_local(&mut e, &mut phy, 60, 60);
        let ho = events
            .iter()
            .find(|ev| matches!(ev, EnbEvent::HandoverExecuted { .. }));
        assert!(ho.is_some(), "handover should execute: {events:?}");
        assert_eq!(e.n_ues(CELL).unwrap(), 0);
    }

    #[test]
    fn admit_ue_joins_connected() {
        let mut e = enb();
        let rnti = e
            .admit_ue(CELL, UeId(9), SliceId(1), 1, Bytes(1000), Tti(5))
            .unwrap();
        let s = e.ue_stat(CELL, rnti).unwrap();
        assert!(s.connected);
        assert_eq!(s.dl_queue_bytes, Bytes(1000));
        assert_eq!(s.slice, SliceId(1));
    }

    #[test]
    fn drx_gates_scheduling() {
        let mut e = enb();
        let mut phy = StaticPhyView(20.0);
        let rnti = e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        run_local(&mut e, &mut phy, 0, 60);
        e.set_drx(CELL, rnti, 10, 2).unwrap();
        assert!(e.set_drx(CELL, rnti, 10, 0).is_err());
        assert!(e.set_drx(CELL, rnti, 10, 11).is_err());
        // At TTI 105 (105 % 10 = 5 >= 2) the UE must be filtered out.
        e.begin_tti(Tti(105), &mut phy);
        let input = e.dl_scheduler_input(CELL, Tti(105), Tti(105)).unwrap();
        assert!(input.ues.is_empty());
        e.finish_tti(Tti(105), &mut phy);
        // At TTI 110 (0 < 2) it is schedulable again.
        e.begin_tti(Tti(110), &mut phy);
        let input = e.dl_scheduler_input(CELL, Tti(110), Tti(110)).unwrap();
        assert_eq!(input.ues.len(), 1);
        e.finish_tti(Tti(110), &mut phy);
    }

    #[test]
    fn auto_reattach_retries() {
        let mut e = enb(); // auto_reattach = true
        let mut phy = StaticPhyView(20.0);
        e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        // Let the first attach fail (no scheduling), then start scheduling.
        for t in 0..230 {
            e.begin_tti(Tti(t), &mut phy);
            e.finish_tti(Tti(t), &mut phy);
        }
        let pre_events = e.take_events();
        assert!(pre_events.iter().any(|ev| ev.kind() == "attach-failed"));
        let events = run_local(&mut e, &mut phy, 230, 120);
        assert!(
            events.iter().any(|ev| ev.kind() == "attach"),
            "retried attach should succeed: {events:?}"
        );
    }

    #[test]
    fn scheduler_input_excludes_retx_budget() {
        let mut e = enb();
        let mut phy = StaticPhyView(20.0);
        e.begin_tti(Tti(0), &mut phy);
        let input = e.dl_scheduler_input(CELL, Tti(0), Tti(0)).unwrap();
        assert_eq!(input.available_prb, 50);
        // Future target sees full budget.
        let input = e.dl_scheduler_input(CELL, Tti(0), Tti(10)).unwrap();
        assert_eq!(input.available_prb, 50);
        e.finish_tti(Tti(0), &mut phy);
    }

    #[test]
    fn scell_activation_tracked_and_validated() {
        let mut e = Enb::new(
            {
                let mut cfg = EnbConfig::single_cell(flexran_types::ids::EnbId(1));
                cfg.cells
                    .push(flexran_types::config::CellConfig::paper_default(CellId(1)));
                cfg
            },
            EnbParams::default(),
        )
        .unwrap();
        let rnti = e.rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0)).unwrap();
        // Unknown scell / self-activation rejected.
        assert!(e.set_scell(CELL, rnti, CellId(9), true).is_err());
        assert!(e.set_scell(CELL, rnti, CELL, true).is_err());
        assert!(e.set_scell(CELL, Rnti(0xBEEF), CellId(1), true).is_err());
        // Activate, observe, deactivate.
        e.set_scell(CELL, rnti, CellId(1), true).unwrap();
        assert_eq!(e.ue_stat(CELL, rnti).unwrap().active_scells, vec![1]);
        e.set_scell(CELL, rnti, CellId(1), false).unwrap();
        assert!(e.ue_stat(CELL, rnti).unwrap().active_scells.is_empty());
    }

    #[test]
    fn unknown_cell_and_ue_errors() {
        let mut e = enb();
        assert!(e.rach(CellId(9), UeId(1), SliceId::MNO, 0, Tti(0)).is_err());
        assert!(e
            .inject_dl_traffic(CELL, Rnti(0xBEEF), Bytes(1), Tti(0))
            .is_err());
        assert!(e.detach(CELL, Rnti(0xBEEF), Tti(0)).is_err());
        assert!(e.start_handover(CELL, Rnti(0xBEEF), Tti(0)).is_err());
    }
}

#[cfg(test)]
mod conservation_tests {
    //! Property: the data plane never delivers more payload than the core
    //! network injected, and every injected byte is either delivered,
    //! queued, in flight inside HARQ, or (rarely) dropped after HARQ
    //! exhaustion — under arbitrary traffic patterns and channels.

    use super::*;
    use crate::mac::scheduler::{DlScheduler, RoundRobinScheduler};
    use flexran_types::config::EnbConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn dl_byte_conservation(
            seed in any::<u64>(),
            sinr in 0.0f64..25.0,
            bursts in proptest::collection::vec((0u64..2000, 1u64..40), 1..30),
        ) {
            let params = EnbParams { seed, ..EnbParams::default() };
            let mut e = Enb::new(
                EnbConfig::single_cell(flexran_types::ids::EnbId(1)),
                params,
            )
            .unwrap();
            let mut phy = StaticPhyView(sinr);
            let rnti = e
                .rach(CellId(0), UeId(1), SliceId::MNO, 0, Tti(0))
                .unwrap();
            let mut rr = RoundRobinScheduler::new();
            let mut injected_payload = 0u64;
            let mut t = 0u64;
            let mut burst_iter = bursts.into_iter();
            let mut current = burst_iter.next();
            while t < 2_000 {
                let tti = Tti(t);
                e.begin_tti(tti, &mut phy);
                // Inject per the burst schedule (payload + PDCP header
                // lands in the queue; conservation is on the PDU bytes).
                if let Some((bytes, at)) = current {
                    if t >= at && e.ue_stat(CellId(0), rnti).is_ok() && bytes > 0 {
                        if e.inject_dl_traffic(CellId(0), rnti, Bytes(bytes), tti).is_ok() {
                            injected_payload += bytes + crate::pdcp::PDCP_HEADER_BYTES;
                        }
                        current = burst_iter.next();
                    }
                }
                if let Ok(input) = e.dl_scheduler_input(CellId(0), tti, tti) {
                    let out = rr.schedule_dl(&input);
                    if !out.dcis.is_empty() {
                        let _ = e.submit_dl_decision(
                            DlSchedulingDecision {
                                cell: CellId(0),
                                target: tti,
                                dcis: out.dcis,
                            },
                            tti,
                        );
                    }
                }
                e.finish_tti(tti, &mut phy);
                t += 1;
            }
            if let Ok(s) = e.ue_stat(CellId(0), rnti) {
                let delivered = s.dl_delivered_bits / 8;
                prop_assert!(
                    delivered <= injected_payload,
                    "delivered {delivered} > injected {injected_payload}"
                );
                // Accounting closes: delivered + still queued ≤ injected
                // (the difference is HARQ-in-flight or exhaustion drops).
                prop_assert!(
                    delivered + s.dl_queue_bytes.as_u64()
                        <= injected_payload + 8, // RLC header slack on a partial PDU
                    "delivered {delivered} + queued {} vs injected {injected_payload}",
                    s.dl_queue_bytes.as_u64()
                );
            }
        }
    }
}
