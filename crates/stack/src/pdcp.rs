//! PDCP: per-bearer sequence numbering and header accounting.
//!
//! The data plane's ingress point: EPC traffic enters here, gets a PDCP
//! sequence number and header, and is handed to the RLC entity of the
//! bearer. The FlexRAN Agent API exposes the counters (paper Table 1 lists
//! PDCP among the control modules adopted from the access stratum).

use flexran_types::time::Tti;
use flexran_types::units::Bytes;

/// PDCP header size for a data radio bearer with a 12-bit SN.
pub const PDCP_HEADER_BYTES: u64 = 2;

/// 12-bit PDCP sequence number space.
pub const PDCP_SN_MODULUS: u32 = 4096;

/// Transmit-side PDCP entity for one radio bearer.
#[derive(Debug, Clone, Default)]
pub struct PdcpTx {
    next_sn: u32,
    /// SDUs accepted from the upper layer.
    pub tx_sdus: u64,
    /// SDU payload bytes accepted (excluding the PDCP header).
    pub tx_bytes: Bytes,
    /// Last TTI an SDU was accepted.
    pub last_activity: Option<Tti>,
}

/// A PDCP PDU handed down to RLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdcpPdu {
    pub sn: u32,
    /// Total PDU size (payload + PDCP header).
    pub size: Bytes,
}

impl PdcpTx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept an SDU of `payload` bytes at `now`, producing the PDU that
    /// goes to RLC.
    pub fn submit(&mut self, payload: Bytes, now: Tti) -> PdcpPdu {
        let sn = self.next_sn;
        self.next_sn = (self.next_sn + 1) % PDCP_SN_MODULUS;
        self.tx_sdus += 1;
        self.tx_bytes += payload;
        self.last_activity = Some(now);
        PdcpPdu {
            sn,
            size: Bytes(payload.as_u64() + PDCP_HEADER_BYTES),
        }
    }
}

/// Receive-side PDCP entity: counts deliveries and detects SN gaps (a
/// coarse loss indicator surfaced through statistics reports).
#[derive(Debug, Clone, Default)]
pub struct PdcpRx {
    expected_sn: Option<u32>,
    pub rx_pdus: u64,
    pub rx_bytes: Bytes,
    pub sn_gaps: u64,
}

impl PdcpRx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an in-order delivery of a PDU.
    pub fn deliver(&mut self, pdu: PdcpPdu) {
        if let Some(exp) = self.expected_sn {
            if pdu.sn != exp {
                self.sn_gaps += 1;
            }
        }
        self.expected_sn = Some((pdu.sn + 1) % PDCP_SN_MODULUS);
        self.rx_pdus += 1;
        self.rx_bytes += Bytes(pdu.size.as_u64().saturating_sub(PDCP_HEADER_BYTES));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sn_increments_and_wraps() {
        let mut tx = PdcpTx::new();
        for i in 0..PDCP_SN_MODULUS {
            let pdu = tx.submit(Bytes(100), Tti(i as u64));
            assert_eq!(pdu.sn, i);
        }
        let pdu = tx.submit(Bytes(100), Tti(99999));
        assert_eq!(pdu.sn, 0, "SN wraps at 4096");
    }

    #[test]
    fn header_added() {
        let mut tx = PdcpTx::new();
        let pdu = tx.submit(Bytes(1000), Tti(0));
        assert_eq!(pdu.size, Bytes(1002));
        assert_eq!(tx.tx_bytes, Bytes(1000));
    }

    #[test]
    fn rx_counts_and_gap_detection() {
        let mut tx = PdcpTx::new();
        let mut rx = PdcpRx::new();
        let a = tx.submit(Bytes(10), Tti(0));
        let b = tx.submit(Bytes(10), Tti(0));
        let c = tx.submit(Bytes(10), Tti(0));
        rx.deliver(a);
        rx.deliver(c); // b lost
        assert_eq!(rx.sn_gaps, 1);
        assert_eq!(rx.rx_pdus, 2);
        assert_eq!(rx.rx_bytes, Bytes(20));
        let _ = b;
    }
}
