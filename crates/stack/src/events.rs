//! Data-plane events.
//!
//! These are the raw events the eNodeB emits as it executes; the FlexRAN
//! agent's Reports & Events manager turns them into the *event-trigger*
//! messages of the FlexRAN protocol ("UE attachment, random access
//! attempt, scheduling requests" — paper Table 1).

use flexran_types::ids::{CellId, Rnti, UeId};
use flexran_types::time::Tti;
use flexran_types::units::Bytes;

/// An event produced by the eNodeB data plane during one TTI.
#[derive(Debug, Clone, PartialEq)]
pub enum EnbEvent {
    /// A random-access attempt was received.
    RachAttempt {
        cell: CellId,
        rnti: Rnti,
        ue: UeId,
        at: Tti,
    },
    /// A UE completed attachment and is now connected.
    UeAttached {
        cell: CellId,
        rnti: Rnti,
        ue: UeId,
        at: Tti,
    },
    /// An attach procedure missed one of its deadlines.
    AttachFailed {
        cell: CellId,
        rnti: Rnti,
        ue: UeId,
        at: Tti,
        /// Which stage timed out ("rar", "setup").
        stage: &'static str,
    },
    /// A UE was detached (explicitly or by handover execution).
    UeDetached {
        cell: CellId,
        rnti: Rnti,
        ue: UeId,
        at: Tti,
    },
    /// A UE signalled uplink data waiting (scheduling request).
    SchedulingRequest { cell: CellId, rnti: Rnti, at: Tti },
    /// A measurement report was received from a UE.
    MeasurementReport {
        cell: CellId,
        rnti: Rnti,
        at: Tti,
        serving_rsrp_dbm: f64,
        /// `(neighbour site key, RSRP dBm)` pairs.
        neighbours: Vec<(u32, f64)>,
    },
    /// The handover command was delivered; the UE has left this eNodeB.
    /// The remaining downlink backlog is surfaced so it can be forwarded
    /// to the target eNodeB.
    HandoverExecuted {
        cell: CellId,
        rnti: Rnti,
        ue: UeId,
        at: Tti,
        forwarded_bytes: Bytes,
    },
    /// A scheduling decision arrived after its target subframe and was
    /// dropped (the Fig. 9 deadline-miss path).
    DecisionMissedDeadline { cell: CellId, target: Tti, at: Tti },
}

impl EnbEvent {
    /// The TTI the event occurred in.
    pub fn at(&self) -> Tti {
        match self {
            EnbEvent::RachAttempt { at, .. }
            | EnbEvent::UeAttached { at, .. }
            | EnbEvent::AttachFailed { at, .. }
            | EnbEvent::UeDetached { at, .. }
            | EnbEvent::SchedulingRequest { at, .. }
            | EnbEvent::MeasurementReport { at, .. }
            | EnbEvent::HandoverExecuted { at, .. }
            | EnbEvent::DecisionMissedDeadline { at, .. } => *at,
        }
    }

    /// Short stable label for counters and protocol encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            EnbEvent::RachAttempt { .. } => "rach",
            EnbEvent::UeAttached { .. } => "attach",
            EnbEvent::AttachFailed { .. } => "attach-failed",
            EnbEvent::UeDetached { .. } => "detach",
            EnbEvent::SchedulingRequest { .. } => "sr",
            EnbEvent::MeasurementReport { .. } => "meas",
            EnbEvent::HandoverExecuted { .. } => "handover",
            EnbEvent::DecisionMissedDeadline { .. } => "missed-deadline",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_at_accessors() {
        let e = EnbEvent::RachAttempt {
            cell: CellId(0),
            rnti: Rnti(0x100),
            ue: UeId(7),
            at: Tti(42),
        };
        assert_eq!(e.kind(), "rach");
        assert_eq!(e.at(), Tti(42));
        let e = EnbEvent::DecisionMissedDeadline {
            cell: CellId(0),
            target: Tti(10),
            at: Tti(12),
        };
        assert_eq!(e.kind(), "missed-deadline");
    }
}
