//! Scheduler interfaces and the baseline schedulers.
//!
//! [`DlScheduler`] / [`UlScheduler`] are the *control* interfaces that
//! FlexRAN detaches from the data plane: implementations are registered as
//! VSFs in the agent's MAC control module, swapped at runtime through
//! policy reconfiguration, or bypassed entirely when the master controller
//! runs a centralized scheduler and pushes [`super::dci`] decisions over
//! the FlexRAN protocol.
//!
//! Every scheduler exposes a runtime parameter API ([`DlScheduler::set_param`])
//! — the "parameters section \[that\] acts as a public API that the
//! controller can modify" in the paper's policy reconfiguration messages.
//!
//! Three baselines ship with the data plane: round-robin,
//! proportional-fair and max-CQI.

use flexran_phy::link_adaptation::{mcs_for_cqi, Cqi, Mcs};
use flexran_phy::tables::{itbs_for_mcs, tbs_bits};
use flexran_types::ids::{CellId, Rnti, SliceId};
use flexran_types::time::Tti;
use flexran_types::units::Bytes;
use flexran_types::{FlexError, Result};

use super::dci::{DlDci, UlGrant};

/// A runtime-settable scheduler parameter value, as carried by policy
/// reconfiguration messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    I64(i64),
    F64(f64),
    Str(String),
    /// A sequence of values (e.g. per-slice resource shares).
    List(Vec<f64>),
}

impl ParamValue {
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::I64(v) => Some(*v),
            ParamValue::F64(v) => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::I64(v) => Some(*v as f64),
            ParamValue::F64(v) => Some(*v),
            _ => None,
        }
    }
}

/// What the scheduler knows about one schedulable UE.
#[derive(Debug, Clone)]
pub struct UeSchedInfo {
    pub rnti: Rnti,
    /// Last reported wideband CQI.
    pub cqi: Cqi,
    /// Data-bearer backlog (bytes awaiting transmission).
    pub queue_bytes: Bytes,
    /// Signalling backlog (RRC messages — RAR, connection setup, handover
    /// commands). Schedulers must drain these with priority: attach
    /// deadlines depend on it.
    pub srb_bytes: Bytes,
    /// Exponentially averaged served rate in bits/s (proportional-fair
    /// denominator).
    pub avg_rate_bps: f64,
    pub slice: SliceId,
    /// Intra-slice priority group (0 = highest; the RAN-sharing use case's
    /// premium/secondary split).
    pub priority_group: u8,
    /// Head-of-line delay of the data queue, in ms.
    pub hol_delay_ms: u64,
}

/// A pending HARQ retransmission (informational: the data plane has
/// already reserved the PRBs; `available_prb` excludes them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetxInfo {
    pub rnti: Rnti,
    pub n_prb: u8,
}

/// Everything a downlink scheduler sees for one cell × subframe.
#[derive(Debug, Clone)]
pub struct DlSchedulerInput {
    pub cell: CellId,
    /// When the decision is being computed.
    pub now: Tti,
    /// The subframe the decision is for (equals `now` for local
    /// scheduling; `now + n` for a remote scheduler working ahead).
    pub target: Tti,
    /// PRBs left after HARQ retransmissions were reserved.
    pub available_prb: u8,
    /// DCI budget left for this subframe.
    pub max_dcis: u8,
    pub ues: Vec<UeSchedInfo>,
    pub retx: Vec<RetxInfo>,
}

impl Default for DlSchedulerInput {
    fn default() -> Self {
        DlSchedulerInput {
            cell: CellId(0),
            now: Tti(0),
            target: Tti(0),
            available_prb: 0,
            max_dcis: 0,
            ues: Vec::new(),
            retx: Vec::new(),
        }
    }
}

/// A downlink scheduling output: the assignments for the target subframe.
#[derive(Debug, Clone, Default)]
pub struct DlSchedulerOutput {
    pub dcis: Vec<DlDci>,
}

/// The downlink scheduler interface (the MAC control module's
/// UE-specific-DL-scheduling VSF signature).
pub trait DlScheduler: Send {
    /// Stable name used by VSF caches and policy reconfiguration.
    fn name(&self) -> &str;

    /// Compute the assignments for `input.target` into `out` (cleared
    /// first). This is the hot path: implementations must not allocate
    /// in steady state — keep candidate scratch in `self` and reuse
    /// `out.dcis`'s capacity.
    fn schedule_dl_into(&mut self, input: &DlSchedulerInput, out: &mut DlSchedulerOutput);

    /// Allocating convenience wrapper around
    /// [`DlScheduler::schedule_dl_into`].
    fn schedule_dl(&mut self, input: &DlSchedulerInput) -> DlSchedulerOutput {
        let mut out = DlSchedulerOutput::default();
        self.schedule_dl_into(input, &mut out);
        out
    }

    /// Set a runtime parameter. The default implementation knows none.
    fn set_param(&mut self, key: &str, _value: ParamValue) -> Result<()> {
        Err(FlexError::NotFound(format!(
            "scheduler '{}' has no parameter '{key}'",
            self.name()
        )))
    }

    /// The current parameter values (introspection for the northbound API).
    fn params(&self) -> Vec<(String, ParamValue)> {
        Vec::new()
    }
}

/// Everything an uplink scheduler sees for one cell × subframe.
#[derive(Debug, Clone)]
pub struct UlSchedulerInput {
    pub cell: CellId,
    pub now: Tti,
    pub target: Tti,
    pub available_prb: u8,
    pub max_grants: u8,
    /// `(rnti, bsr-implied backlog bytes, cqi, per-UE PRB cap)`.
    pub ues: Vec<UlUeInfo>,
}

impl Default for UlSchedulerInput {
    fn default() -> Self {
        UlSchedulerInput {
            cell: CellId(0),
            now: Tti(0),
            target: Tti(0),
            available_prb: 0,
            max_grants: 0,
            ues: Vec::new(),
        }
    }
}

/// Uplink per-UE scheduling information.
#[derive(Debug, Clone)]
pub struct UlUeInfo {
    pub rnti: Rnti,
    /// Backlog the eNodeB assumes from the last BSR.
    pub bsr_bytes: Bytes,
    pub cqi: Cqi,
    /// Power-headroom-derived cap on PRBs this UE can drive.
    pub prb_cap: u8,
}

/// Uplink scheduling output.
#[derive(Debug, Clone, Default)]
pub struct UlSchedulerOutput {
    pub grants: Vec<UlGrant>,
}

/// The uplink scheduler interface.
pub trait UlScheduler: Send {
    fn name(&self) -> &str;

    /// Compute the grants for `input.target` into `out` (cleared
    /// first). Hot path — same no-steady-state-allocation contract as
    /// [`DlScheduler::schedule_dl_into`].
    fn schedule_ul_into(&mut self, input: &UlSchedulerInput, out: &mut UlSchedulerOutput);

    /// Allocating convenience wrapper.
    fn schedule_ul(&mut self, input: &UlSchedulerInput) -> UlSchedulerOutput {
        let mut out = UlSchedulerOutput::default();
        self.schedule_ul_into(input, &mut out);
        out
    }
}

/// Minimum PRBs at `mcs` whose transport block covers `bytes`
/// (clamped to `max_prb`; at least 1).
pub fn prbs_for_bytes(mcs: Mcs, bytes: Bytes, max_prb: u8) -> u8 {
    let need_bits = bytes.bits();
    for p in 1..=max_prb {
        if tbs_bits(itbs_for_mcs(mcs.0), p) as u64 >= need_bits {
            return p;
        }
    }
    max_prb.max(1)
}

/// Shared helper: give every UE with signalling backlog a small
/// high-priority allocation first. Returns the PRBs left.
pub fn allocate_srbs(input: &DlSchedulerInput, dcis: &mut Vec<DlDci>, mut prb_left: u8) -> u8 {
    for ue in &input.ues {
        if dcis.len() >= input.max_dcis as usize || prb_left == 0 {
            break;
        }
        if ue.srb_bytes.is_zero() {
            continue;
        }
        // Signalling goes out at a robust MCS so it survives poor channels.
        let mcs = Mcs(mcs_for_cqi(ue.cqi).0.min(5));
        let want = prbs_for_bytes(
            mcs,
            Bytes(ue.srb_bytes.as_u64() + super::MAC_HEADER_BYTES + crate::rlc::RLC_HEADER_BYTES),
            prb_left,
        );
        dcis.push(DlDci {
            rnti: ue.rnti,
            n_prb: want,
            mcs,
        });
        prb_left -= want;
    }
    prb_left
}

/// Shared helper: fill `cand` with the indices (into `input.ues`) of
/// UEs with data backlog, a usable channel, and no DCI yet. Index-based
/// so schedulers can keep one scratch `Vec<usize>` across TTIs instead
/// of collecting a fresh reference `Vec` every subframe.
pub fn backlogged_into(input: &DlSchedulerInput, dcis: &[DlDci], cand: &mut Vec<usize>) {
    cand.clear();
    cand.extend(input.ues.iter().enumerate().filter_map(|(i, u)| {
        let want =
            !u.queue_bytes.is_zero() && u.cqi.0 > 0 && !dcis.iter().any(|d| d.rnti == u.rnti);
        want.then_some(i)
    }));
}

/// Round-robin: equal PRB shares for backlogged UEs, rotating the starting
/// UE each subframe so short allocations even out.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    rotation: usize,
    cand: Vec<usize>,
}

impl RoundRobinScheduler {
    pub fn new() -> Self {
        Self::default()
    }
}

impl DlScheduler for RoundRobinScheduler {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn schedule_dl_into(&mut self, input: &DlSchedulerInput, out: &mut DlSchedulerOutput) {
        out.dcis.clear();
        let mut prb_left = allocate_srbs(input, &mut out.dcis, input.available_prb);
        backlogged_into(input, &out.dcis, &mut self.cand);
        if self.cand.is_empty() || prb_left == 0 {
            return;
        }
        self.cand.sort_unstable_by_key(|&i| input.ues[i].rnti);
        let n = self
            .cand
            .len()
            .min((input.max_dcis as usize).saturating_sub(out.dcis.len()));
        if n == 0 {
            return;
        }
        self.rotation = (self.rotation + 1) % self.cand.len();
        let share = (prb_left as usize / n).max(1) as u8;
        for i in 0..n {
            if prb_left == 0 {
                break;
            }
            let ue = &input.ues[self.cand[(self.rotation + i) % self.cand.len()]];
            let mcs = mcs_for_cqi(ue.cqi);
            let want = prbs_for_bytes(mcs, Bytes(ue.queue_bytes.as_u64() + 8), share.min(prb_left));
            out.dcis.push(DlDci {
                rnti: ue.rnti,
                n_prb: want,
                mcs,
            });
            prb_left -= want;
        }
    }
}

/// Proportional fair: rank by achievable-rate / average-rate, then grant
/// greedily until PRBs or DCIs run out.
#[derive(Debug)]
pub struct ProportionalFairScheduler {
    /// Fairness exponent on the average-rate denominator (1.0 = classic
    /// PF; 0.0 degenerates to max-rate). Runtime-reconfigurable.
    pub fairness_exponent: f64,
    cand: Vec<usize>,
}

impl Default for ProportionalFairScheduler {
    fn default() -> Self {
        ProportionalFairScheduler {
            fairness_exponent: 1.0,
            cand: Vec::new(),
        }
    }
}

impl ProportionalFairScheduler {
    pub fn new() -> Self {
        Self::default()
    }

    fn metric(&self, ue: &UeSchedInfo) -> f64 {
        let mcs = mcs_for_cqi(ue.cqi);
        let rate = tbs_bits(itbs_for_mcs(mcs.0), 50) as f64; // per-TTI at full band
        rate / ue.avg_rate_bps.max(1.0).powf(self.fairness_exponent)
    }
}

impl DlScheduler for ProportionalFairScheduler {
    fn name(&self) -> &str {
        "proportional-fair"
    }

    fn schedule_dl_into(&mut self, input: &DlSchedulerInput, out: &mut DlSchedulerOutput) {
        out.dcis.clear();
        let mut prb_left = allocate_srbs(input, &mut out.dcis, input.available_prb);
        let mut cand = std::mem::take(&mut self.cand);
        backlogged_into(input, &out.dcis, &mut cand);
        cand.sort_unstable_by(|&a, &b| {
            let (a, b) = (&input.ues[a], &input.ues[b]);
            self.metric(b)
                .partial_cmp(&self.metric(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.rnti.cmp(&b.rnti))
        });
        for &i in &cand {
            if prb_left == 0 || out.dcis.len() >= input.max_dcis as usize {
                break;
            }
            let ue = &input.ues[i];
            let mcs = mcs_for_cqi(ue.cqi);
            let want = prbs_for_bytes(mcs, Bytes(ue.queue_bytes.as_u64() + 8), prb_left);
            out.dcis.push(DlDci {
                rnti: ue.rnti,
                n_prb: want,
                mcs,
            });
            prb_left -= want;
        }
        self.cand = cand;
    }

    fn set_param(&mut self, key: &str, value: ParamValue) -> Result<()> {
        match key {
            "fairness_exponent" => {
                let v = value
                    .as_f64()
                    .ok_or_else(|| FlexError::Policy("fairness_exponent must be numeric".into()))?;
                if !(0.0..=2.0).contains(&v) {
                    return Err(FlexError::Policy(format!(
                        "fairness_exponent {v} outside 0..=2"
                    )));
                }
                self.fairness_exponent = v;
                Ok(())
            }
            _ => Err(FlexError::NotFound(format!(
                "proportional-fair has no parameter '{key}'"
            ))),
        }
    }

    fn params(&self) -> Vec<(String, ParamValue)> {
        vec![(
            "fairness_exponent".into(),
            ParamValue::F64(self.fairness_exponent),
        )]
    }
}

/// Max-CQI: always serve the best channels first (throughput-optimal,
/// starvation-prone — the textbook baseline).
#[derive(Debug, Default)]
pub struct MaxCqiScheduler {
    cand: Vec<usize>,
}

impl MaxCqiScheduler {
    pub fn new() -> Self {
        Self::default()
    }
}

impl DlScheduler for MaxCqiScheduler {
    fn name(&self) -> &str {
        "max-cqi"
    }

    fn schedule_dl_into(&mut self, input: &DlSchedulerInput, out: &mut DlSchedulerOutput) {
        out.dcis.clear();
        let mut prb_left = allocate_srbs(input, &mut out.dcis, input.available_prb);
        backlogged_into(input, &out.dcis, &mut self.cand);
        self.cand.sort_unstable_by(|&a, &b| {
            let (a, b) = (&input.ues[a], &input.ues[b]);
            b.cqi.cmp(&a.cqi).then(a.rnti.cmp(&b.rnti))
        });
        for &i in &self.cand {
            if prb_left == 0 || out.dcis.len() >= input.max_dcis as usize {
                break;
            }
            let ue = &input.ues[i];
            let mcs = mcs_for_cqi(ue.cqi);
            let want = prbs_for_bytes(mcs, Bytes(ue.queue_bytes.as_u64() + 8), prb_left);
            out.dcis.push(DlDci {
                rnti: ue.rnti,
                n_prb: want,
                mcs,
            });
            prb_left -= want;
        }
    }
}

/// Round-robin uplink scheduler (the only UL policy the experiments need;
/// the trait exists so UL scheduling is delegable like DL).
#[derive(Debug, Default)]
pub struct UlRoundRobinScheduler {
    rotation: usize,
    cand: Vec<usize>,
}

impl UlRoundRobinScheduler {
    pub fn new() -> Self {
        Self::default()
    }
}

impl UlScheduler for UlRoundRobinScheduler {
    fn name(&self) -> &str {
        "ul-round-robin"
    }

    fn schedule_ul_into(&mut self, input: &UlSchedulerInput, out: &mut UlSchedulerOutput) {
        out.grants.clear();
        self.cand.clear();
        self.cand.extend(
            input
                .ues
                .iter()
                .enumerate()
                .filter_map(|(i, u)| (!u.bsr_bytes.is_zero() && u.cqi.0 > 0).then_some(i)),
        );
        if self.cand.is_empty() {
            return;
        }
        self.cand.sort_unstable_by_key(|&i| input.ues[i].rnti);
        self.rotation = (self.rotation + 1) % self.cand.len();
        let n = self.cand.len().min(input.max_grants as usize);
        let share = (input.available_prb as usize / n.max(1)).max(1) as u8;
        let mut prb_left = input.available_prb;
        for i in 0..n {
            if prb_left == 0 {
                break;
            }
            let ue = &input.ues[self.cand[(self.rotation + i) % self.cand.len()]];
            // UL link adaptation: cap at 16QAM (MCS 16) as UE power limits
            // bite before 64QAM in the uplink.
            let mcs = Mcs(mcs_for_cqi(ue.cqi).0.min(16));
            let want = prbs_for_bytes(mcs, Bytes(ue.bsr_bytes.as_u64() + 8), share)
                .min(ue.prb_cap)
                .min(prb_left);
            if want == 0 {
                continue;
            }
            out.grants.push(UlGrant {
                rnti: ue.rnti,
                n_prb: want,
                mcs,
            });
            prb_left -= want;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ue(rnti: u16, cqi: u8, queue: u64) -> UeSchedInfo {
        UeSchedInfo {
            rnti: Rnti(rnti),
            cqi: Cqi(cqi),
            queue_bytes: Bytes(queue),
            srb_bytes: Bytes::ZERO,
            avg_rate_bps: 1.0,
            slice: SliceId::MNO,
            priority_group: 0,
            hol_delay_ms: 0,
        }
    }

    fn input(ues: Vec<UeSchedInfo>) -> DlSchedulerInput {
        DlSchedulerInput {
            cell: CellId(0),
            now: Tti(100),
            target: Tti(100),
            available_prb: 50,
            max_dcis: 10,
            ues,
            retx: vec![],
        }
    }

    fn total_prbs(out: &DlSchedulerOutput) -> u32 {
        out.dcis.iter().map(|d| d.n_prb as u32).sum()
    }

    #[test]
    fn prbs_for_bytes_covers_request() {
        for cqi in 1..=15u8 {
            let mcs = mcs_for_cqi(Cqi(cqi));
            let p = prbs_for_bytes(mcs, Bytes(500), 50);
            assert!(tbs_bits(itbs_for_mcs(mcs.0), p) as u64 >= 4000 || p == 50);
        }
        assert_eq!(prbs_for_bytes(Mcs(0), Bytes(0), 50), 1);
    }

    #[test]
    fn rr_splits_evenly_among_backlogged() {
        let mut s = RoundRobinScheduler::new();
        let out = s.schedule_dl(&input(vec![
            ue(0x100, 10, 1_000_000),
            ue(0x101, 10, 1_000_000),
            ue(0x102, 10, 0), // no backlog -> not scheduled
        ]));
        assert_eq!(out.dcis.len(), 2);
        for d in &out.dcis {
            assert_eq!(d.n_prb, 25);
        }
    }

    #[test]
    fn rr_never_overcommits() {
        let mut s = RoundRobinScheduler::new();
        for n_ues in 1..30u16 {
            let ues = (0..n_ues).map(|i| ue(0x100 + i, 7, 10_000)).collect();
            let out = s.schedule_dl(&input(ues));
            assert!(total_prbs(&out) <= 50);
            assert!(out.dcis.len() <= 10);
        }
    }

    #[test]
    fn rr_rotation_spreads_service() {
        // 20 backlogged UEs, 10 DCIs per TTI: over 20 TTIs all UEs served.
        let mut s = RoundRobinScheduler::new();
        let ues: Vec<_> = (0..20).map(|i| ue(0x100 + i, 7, 50_000)).collect();
        let mut served = std::collections::HashSet::new();
        for _ in 0..20 {
            let out = s.schedule_dl(&input(ues.clone()));
            for d in out.dcis {
                served.insert(d.rnti);
            }
        }
        assert_eq!(served.len(), 20, "rotation must reach every UE");
    }

    #[test]
    fn pf_prefers_under_served_ue() {
        let mut s = ProportionalFairScheduler::new();
        let mut hungry = ue(0x100, 10, 1_000_000);
        hungry.avg_rate_bps = 1_000.0;
        let mut fed = ue(0x101, 10, 1_000_000);
        fed.avg_rate_bps = 10_000_000.0;
        let out = s.schedule_dl(&input(vec![fed, hungry]));
        assert_eq!(out.dcis[0].rnti, Rnti(0x100), "starved UE first");
    }

    #[test]
    fn pf_param_api() {
        let mut s = ProportionalFairScheduler::new();
        s.set_param("fairness_exponent", ParamValue::F64(0.5))
            .unwrap();
        assert_eq!(s.fairness_exponent, 0.5);
        assert!(s
            .set_param("fairness_exponent", ParamValue::F64(9.0))
            .is_err());
        assert!(s.set_param("bogus", ParamValue::I64(1)).is_err());
        assert_eq!(
            s.params(),
            vec![("fairness_exponent".to_string(), ParamValue::F64(0.5))]
        );
    }

    #[test]
    fn max_cqi_serves_best_channel_first() {
        let mut s = MaxCqiScheduler::new();
        let out = s.schedule_dl(&input(vec![
            ue(0x100, 5, 1_000_000),
            ue(0x101, 15, 1_000_000),
        ]));
        assert_eq!(out.dcis[0].rnti, Rnti(0x101));
        // Full-buffer best UE hogs the band.
        assert_eq!(out.dcis[0].n_prb, 50);
        assert_eq!(out.dcis.len(), 1);
    }

    #[test]
    fn srb_traffic_preempts_data() {
        let mut s = MaxCqiScheduler::new();
        let mut attaching = ue(0x200, 3, 0);
        attaching.srb_bytes = Bytes(50);
        let out = s.schedule_dl(&input(vec![ue(0x100, 15, 1_000_000), attaching]));
        assert_eq!(out.dcis[0].rnti, Rnti(0x200), "SRB first");
        assert!(out.dcis[0].mcs.0 <= 5, "signalling at robust MCS");
        assert!(total_prbs(&out) <= 50);
    }

    #[test]
    fn cqi_zero_ue_not_scheduled() {
        let mut s = RoundRobinScheduler::new();
        let out = s.schedule_dl(&input(vec![ue(0x100, 0, 10_000)]));
        assert!(out.dcis.is_empty());
    }

    #[test]
    fn ul_rr_respects_caps() {
        let mut s = UlRoundRobinScheduler::new();
        let out = s.schedule_ul(&UlSchedulerInput {
            cell: CellId(0),
            now: Tti(0),
            target: Tti(0),
            available_prb: 50,
            max_grants: 8,
            ues: vec![UlUeInfo {
                rnti: Rnti(0x100),
                bsr_bytes: Bytes(1_000_000),
                cqi: Cqi(15),
                prb_cap: 24,
            }],
        });
        assert_eq!(out.grants.len(), 1);
        assert!(out.grants[0].n_prb <= 24, "power-headroom cap");
        assert!(out.grants[0].mcs.0 <= 16, "UL modulation cap");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let mut rr = RoundRobinScheduler::new();
        assert!(rr.schedule_dl(&input(vec![])).dcis.is_empty());
        let mut ul = UlRoundRobinScheduler::new();
        let out = ul.schedule_ul(&UlSchedulerInput {
            cell: CellId(0),
            now: Tti(0),
            target: Tti(0),
            available_prb: 50,
            max_grants: 8,
            ues: vec![],
        });
        assert!(out.grants.is_empty());
    }
}
