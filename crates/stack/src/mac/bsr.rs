//! Buffer status report quantization (3GPP TS 36.321 Table 6.1.3.1-1).
//!
//! Uplink queue sizes are not reported to the eNodeB byte-exact: the UE
//! quantizes them into one of 64 levels. The quantization matters to the
//! platform because the statistics the FlexRAN agent forwards to the
//! master for uplink scheduling carry exactly this fidelity.

/// Upper edge (bytes) of each BSR index per TS 36.321 Table 6.1.3.1-1.
/// Index 0 means "buffer = 0"; index 63 means "> 150 000 bytes".
pub const BSR_TABLE_BYTES: [u32; 64] = [
    0,
    10,
    12,
    14,
    17,
    19,
    22,
    26,
    31,
    36,
    42,
    49,
    57,
    67,
    78,
    91,
    107,
    125,
    146,
    171,
    200,
    234,
    274,
    321,
    376,
    440,
    515,
    603,
    706,
    826,
    967,
    1132,
    1326,
    1552,
    1817,
    2127,
    2490,
    2915,
    3413,
    3995,
    4677,
    5476,
    6411,
    7505,
    8787,
    10287,
    12043,
    14099,
    16507,
    19325,
    22624,
    26487,
    31009,
    36304,
    42502,
    49759,
    58255,
    68201,
    79846,
    93479,
    109439,
    128125,
    150000,
    u32::MAX,
];

/// Quantize a buffer occupancy into its BSR index: the smallest index
/// whose upper edge is ≥ the occupancy.
pub fn bsr_index(buffer_bytes: u64) -> u8 {
    if buffer_bytes == 0 {
        return 0;
    }
    for (i, edge) in BSR_TABLE_BYTES.iter().enumerate().skip(1) {
        if buffer_bytes <= *edge as u64 {
            return i as u8;
        }
    }
    63
}

/// The buffer size the eNodeB assumes for a BSR index (the upper edge —
/// the conservative choice real schedulers make so queues drain).
pub fn bsr_upper_edge_bytes(index: u8) -> u64 {
    let i = index.min(63) as usize;
    if i == 63 {
        // "> 150000": assume a large but finite backlog.
        300_000
    } else {
        BSR_TABLE_BYTES[i] as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(bsr_index(0), 0);
        assert_eq!(bsr_upper_edge_bytes(0), 0);
    }

    #[test]
    fn standard_edges() {
        assert_eq!(bsr_index(10), 1);
        assert_eq!(bsr_index(11), 2);
        assert_eq!(bsr_index(150_000), 62);
        assert_eq!(bsr_index(150_001), 63);
    }

    #[test]
    fn table_is_strictly_increasing() {
        for w in BSR_TABLE_BYTES.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    proptest! {
        /// Quantization never under-reports by more than one level and the
        /// assumed size is always an upper bound below the table maximum.
        #[test]
        fn quantization_bounds(bytes in 0u64..200_000) {
            let idx = bsr_index(bytes);
            let assumed = bsr_upper_edge_bytes(idx);
            prop_assert!(assumed >= bytes.min(150_001));
            if idx > 0 {
                // The previous level would have been too small.
                prop_assert!(bsr_upper_edge_bytes(idx - 1) < bytes);
            }
        }

        #[test]
        fn index_is_monotone(a in 0u64..200_000, b in 0u64..200_000) {
            if a <= b {
                prop_assert!(bsr_index(a) <= bsr_index(b));
            }
        }
    }
}
