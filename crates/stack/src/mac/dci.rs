//! Downlink control information and scheduling decisions.
//!
//! A [`DlSchedulingDecision`] is the unit the FlexRAN protocol carries from
//! a centralized scheduler to an agent ("calls for applying MAC scheduling
//! decisions", paper Table 1) and the unit a local scheduling VSF hands to
//! the data plane. Each decision targets one cell and one subframe; the
//! data plane refuses decisions that arrive after their target subframe —
//! the deadline-miss behaviour at the heart of the Fig. 9 experiment.

use flexran_phy::link_adaptation::Mcs;
use flexran_types::ids::{CellId, Rnti};
use flexran_types::time::Tti;

/// One downlink assignment within a subframe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlDci {
    pub rnti: Rnti,
    /// Number of PRBs granted (the model tracks counts, not positions:
    /// nothing in the platform depends on frequency placement).
    pub n_prb: u8,
    pub mcs: Mcs,
}

/// A full downlink scheduling decision for one cell × subframe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlSchedulingDecision {
    pub cell: CellId,
    /// The subframe the assignments must be applied in.
    pub target: Tti,
    pub dcis: Vec<DlDci>,
}

impl DlSchedulingDecision {
    /// Total PRBs claimed by the decision.
    pub fn total_prbs(&self) -> u32 {
        self.dcis.iter().map(|d| d.n_prb as u32).sum()
    }

    /// Validate against a cell's PRB and DCI budgets.
    pub fn validate(&self, n_prb: u8, max_dcis: u8) -> flexran_types::Result<()> {
        if self.dcis.len() > max_dcis as usize {
            // lint:allow(alloc-reach) error path
            return Err(flexran_types::FlexError::InvalidConfig(format!(
                "{} DCIs exceeds the cell budget of {max_dcis}",
                self.dcis.len()
            )));
        }
        if self.total_prbs() > n_prb as u32 {
            // lint:allow(alloc-reach) error path
            return Err(flexran_types::FlexError::InvalidConfig(format!(
                "{} PRBs exceeds the cell bandwidth of {n_prb}",
                self.total_prbs()
            )));
        }
        // Duplicate-RNTI scan is quadratic but bounded by `max_dcis`
        // (single digits per subframe) — no allocation on the hot path.
        for (i, d) in self.dcis.iter().enumerate() {
            if d.n_prb == 0 {
                // lint:allow(alloc-reach) error path
                return Err(flexran_types::FlexError::InvalidConfig(format!(
                    "zero-PRB DCI for {}",
                    d.rnti
                )));
            }
            if self.dcis[..i].iter().any(|e| e.rnti == d.rnti) {
                // lint:allow(alloc-reach) error path
                return Err(flexran_types::FlexError::Conflict(format!(
                    "duplicate DCI for {} in one subframe",
                    d.rnti
                )));
            }
        }
        Ok(())
    }
}

/// One uplink grant within a subframe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UlGrant {
    pub rnti: Rnti,
    pub n_prb: u8,
    pub mcs: Mcs,
}

/// A full uplink scheduling decision for one cell × subframe. The grant is
/// signalled at `target` and the UE transmits at `target + 4` (FDD timing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UlSchedulingDecision {
    pub cell: CellId,
    pub target: Tti,
    pub grants: Vec<UlGrant>,
}

impl UlSchedulingDecision {
    pub fn total_prbs(&self) -> u32 {
        self.grants.iter().map(|g| g.n_prb as u32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dci(rnti: u16, prb: u8) -> DlDci {
        DlDci {
            rnti: Rnti(rnti),
            n_prb: prb,
            mcs: Mcs(10),
        }
    }

    #[test]
    fn valid_decision_passes() {
        let d = DlSchedulingDecision {
            cell: CellId(0),
            target: Tti(10),
            dcis: vec![dci(0x100, 25), dci(0x101, 25)],
        };
        d.validate(50, 10).unwrap();
        assert_eq!(d.total_prbs(), 50);
    }

    #[test]
    fn overcommitted_prbs_rejected() {
        let d = DlSchedulingDecision {
            cell: CellId(0),
            target: Tti(10),
            dcis: vec![dci(0x100, 30), dci(0x101, 30)],
        };
        assert!(d.validate(50, 10).is_err());
    }

    #[test]
    fn dci_budget_enforced() {
        let dcis: Vec<_> = (0..11).map(|i| dci(0x100 + i, 1)).collect();
        let d = DlSchedulingDecision {
            cell: CellId(0),
            target: Tti(10),
            dcis,
        };
        assert!(d.validate(50, 10).is_err());
    }

    #[test]
    fn duplicate_rnti_is_a_conflict() {
        let d = DlSchedulingDecision {
            cell: CellId(0),
            target: Tti(10),
            dcis: vec![dci(0x100, 10), dci(0x100, 10)],
        };
        let err = d.validate(50, 10).unwrap_err();
        assert_eq!(err.category(), "conflict");
    }

    #[test]
    fn zero_prb_rejected() {
        let d = DlSchedulingDecision {
            cell: CellId(0),
            target: Tti(10),
            dcis: vec![dci(0x100, 0)],
        };
        assert!(d.validate(50, 10).is_err());
    }
}
