//! MAC: scheduling interfaces, DCIs, HARQ, transport-block building and
//! buffer-status quantization.
//!
//! The MAC is the layer the paper's evaluation stresses hardest: its
//! control part (the scheduler) is exactly what FlexRAN detaches into a
//! VSF — runnable at the agent or at the master — while its action part
//! (everything in this module) stays in the data plane.

pub mod bsr;
pub mod dci;
pub mod harq;
pub mod scheduler;

/// MAC PDU fixed header/subheader overhead per transport block (3 bytes:
/// one subheader plus padding indication — the value OAI charges for a
/// single-LC transport block).
pub const MAC_HEADER_BYTES: u64 = 3;

/// HARQ feedback delay in TTIs (FDD: ACK/NACK for subframe `n` is
/// available to the eNodeB at `n + 4`).
pub const HARQ_FEEDBACK_DELAY: u64 = 4;

/// Earliest retransmission opportunity after the original transmission
/// (FDD synchronous timing: `n + 8`).
pub const HARQ_RTT: u64 = 8;

/// Maximum HARQ transmission attempts before the block is handed to
/// higher-layer recovery.
pub const HARQ_MAX_ATTEMPTS: u8 = 4;
