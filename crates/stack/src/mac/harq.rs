//! Downlink HARQ: 8 stop-and-wait processes per UE (FDD).
//!
//! The data plane runs *non-adaptive* HARQ autonomously: a NACKed block is
//! retransmitted with its original MCS/PRB allocation at the synchronous
//! retransmission opportunity, pre-empting scheduler allocations for those
//! PRBs. This keeps retransmissions below the control plane's granularity
//! — which matches the paper's setup, where the centralized scheduler
//! issues new-data decisions and "make\[s\] assumptions about the outcome of
//! previous transmissions for which it has not yet received any feedback"
//! (§5.3).
//!
//! Chase combining is modeled as an SINR gain of `10·log10(k)` dB on the
//! k-th transmission attempt.

use flexran_phy::link_adaptation::Mcs;
use flexran_types::time::Tti;
use flexran_types::units::Bytes;

use super::{HARQ_MAX_ATTEMPTS, HARQ_RTT};

/// State of one HARQ process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProcessState {
    Idle,
    /// Transmitted, waiting for feedback.
    InFlight {
        sent: Tti,
    },
    /// NACKed, waiting for the retransmission opportunity.
    PendingRetx {
        ready_at: Tti,
    },
}

/// One HARQ process: the in-flight transport block and its allocation.
/// The payload is tracked split by bearer (signalling vs data) so that
/// delivery and recovery credit the right queue without any side table —
/// the split lives and dies with the process itself.
#[derive(Debug, Clone)]
pub struct HarqProcess {
    pub state: ProcessState,
    /// Signalling (SRB) payload bytes carried.
    pub srb: u64,
    /// Data (DRB) payload bytes carried.
    pub drb: u64,
    pub mcs: Mcs,
    pub n_prb: u8,
    pub attempts: u8,
}

impl HarqProcess {
    /// Total RLC payload bytes carried (what must be recovered on
    /// failure).
    pub fn payload(&self) -> Bytes {
        Bytes(self.srb + self.drb)
    }
}

impl Default for HarqProcess {
    fn default() -> Self {
        HarqProcess {
            state: ProcessState::Idle,
            srb: 0,
            drb: 0,
            mcs: Mcs(0),
            n_prb: 0,
            attempts: 0,
        }
    }
}

/// The outcome the entity reports when feedback is processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackOutcome {
    Acked {
        srb: u64,
        drb: u64,
    },
    WillRetransmit,
    /// Retries exhausted; payload handed back for higher-layer recovery.
    Exhausted {
        srb: u64,
        drb: u64,
    },
}

/// Per-UE downlink HARQ entity.
#[derive(Debug, Clone, Default)]
pub struct HarqEntity {
    processes: [HarqProcess; 8],
    /// Cumulative counters for statistics reports.
    pub tx_new: u64,
    pub tx_retx: u64,
    pub acked: u64,
    pub exhausted: u64,
}

impl HarqEntity {
    pub fn new() -> Self {
        Self::default()
    }

    /// An idle process id, if any (with 8 processes and 4 ms feedback
    /// there is one in every realistic schedule).
    pub fn idle_process(&self) -> Option<u8> {
        self.processes
            .iter()
            .position(|p| p.state == ProcessState::Idle)
            .map(|i| i as u8)
    }

    /// Record a new-data transmission on `pid` at `now`, carrying `srb`
    /// signalling and `drb` data payload bytes.
    pub fn start(&mut self, pid: u8, srb: u64, drb: u64, mcs: Mcs, n_prb: u8, now: Tti) {
        let p = &mut self.processes[pid as usize % 8];
        debug_assert_eq!(p.state, ProcessState::Idle, "process reuse while busy");
        *p = HarqProcess {
            state: ProcessState::InFlight { sent: now },
            srb,
            drb,
            mcs,
            n_prb,
            attempts: 1,
        };
        self.tx_new += 1;
    }

    /// Process decoder feedback for the transmission sent from `pid`.
    pub fn feedback(&mut self, pid: u8, ack: bool, now: Tti) -> FeedbackOutcome {
        let p = &mut self.processes[pid as usize % 8];
        match p.state {
            ProcessState::InFlight { sent } => {
                if ack {
                    let (srb, drb) = (p.srb, p.drb);
                    *p = HarqProcess::default();
                    self.acked += 1;
                    FeedbackOutcome::Acked { srb, drb }
                } else if p.attempts >= HARQ_MAX_ATTEMPTS {
                    let (srb, drb) = (p.srb, p.drb);
                    *p = HarqProcess::default();
                    self.exhausted += 1;
                    FeedbackOutcome::Exhausted { srb, drb }
                } else {
                    p.state = ProcessState::PendingRetx {
                        ready_at: Tti(sent.0 + HARQ_RTT).max(now),
                    };
                    FeedbackOutcome::WillRetransmit
                }
            }
            _ => {
                debug_assert!(false, "feedback for a process not in flight");
                FeedbackOutcome::WillRetransmit
            }
        }
    }

    /// Retransmissions due at `now`: marks them in flight again and
    /// calls `f(pid, n_prb, mcs, attempt_number)` per block. The per-TTI
    /// hot path — no allocation.
    pub fn drain_due_retx(&mut self, now: Tti, mut f: impl FnMut(u8, u8, Mcs, u8)) {
        for (i, p) in self.processes.iter_mut().enumerate() {
            if let ProcessState::PendingRetx { ready_at } = p.state {
                if ready_at <= now {
                    p.attempts += 1;
                    p.state = ProcessState::InFlight { sent: now };
                    self.tx_retx += 1;
                    // lint:alloc-free-callee the closure body is analyzed at its definition site (closures-as-edges)
                    f(i as u8, p.n_prb, p.mcs, p.attempts);
                }
            }
        }
    }

    /// Allocating convenience wrapper around [`HarqEntity::drain_due_retx`]
    /// (tests and diagnostics; the data plane uses the closure form).
    pub fn take_due_retx(&mut self, now: Tti) -> Vec<(u8, u8, Mcs, u8)> {
        let mut due = Vec::new();
        self.drain_due_retx(now, |pid, n_prb, mcs, attempt| {
            due.push((pid, n_prb, mcs, attempt));
        });
        due
    }

    /// SINR gain from chase combining at the given attempt (1-based).
    pub fn combining_gain_db(attempt: u8) -> f64 {
        10.0 * (attempt.max(1) as f64).log10()
    }

    /// Transmissions awaiting feedback sent at exactly `sent` (used by the
    /// data plane to evaluate feedback arriving `HARQ_FEEDBACK_DELAY`
    /// later).
    pub fn in_flight_sent_at(&self, sent: Tti) -> Vec<(u8, Mcs, u8, u8)> {
        self.processes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p.state {
                ProcessState::InFlight { sent: s } if s == sent => {
                    Some((i as u8, p.mcs, p.n_prb, p.attempts))
                }
                _ => None,
            })
            .collect()
    }

    /// Whether every process is idle (used on detach and by tests).
    pub fn all_idle(&self) -> bool {
        self.processes.iter().all(|p| p.state == ProcessState::Idle)
    }

    /// Total payload bytes currently tied up in HARQ.
    pub fn outstanding(&self) -> Bytes {
        Bytes(
            self.processes
                .iter()
                .filter(|p| p.state != ProcessState::Idle)
                .map(|p| p.srb + p.drb)
                .sum(),
        )
    }

    /// Drop all state (UE detach).
    pub fn reset(&mut self) {
        for p in &mut self.processes {
            *p = HarqProcess::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_frees_the_process() {
        let mut h = HarqEntity::new();
        let pid = h.idle_process().unwrap();
        h.start(pid, 100, 900, Mcs(10), 10, Tti(5));
        assert!(!h.all_idle());
        let out = h.feedback(pid, true, Tti(9));
        assert_eq!(out, FeedbackOutcome::Acked { srb: 100, drb: 900 });
        assert!(h.all_idle());
        assert_eq!(h.acked, 1);
    }

    #[test]
    fn nack_schedules_synchronous_retx() {
        let mut h = HarqEntity::new();
        h.start(0, 0, 500, Mcs(12), 8, Tti(10));
        assert_eq!(
            h.feedback(0, false, Tti(14)),
            FeedbackOutcome::WillRetransmit
        );
        assert!(h.take_due_retx(Tti(17)).is_empty(), "not yet at n+8");
        let due = h.take_due_retx(Tti(18));
        assert_eq!(due, vec![(0, 8, Mcs(12), 2)]);
        // Second NACK at 18+4, retx at 18+8.
        assert_eq!(
            h.feedback(0, false, Tti(22)),
            FeedbackOutcome::WillRetransmit
        );
        assert_eq!(h.take_due_retx(Tti(26)), vec![(0, 8, Mcs(12), 3)]);
    }

    #[test]
    fn exhaustion_returns_payload() {
        let mut h = HarqEntity::new();
        h.start(0, 40, 600, Mcs(5), 4, Tti(0));
        for k in 0..(HARQ_MAX_ATTEMPTS - 1) {
            assert_eq!(
                h.feedback(0, false, Tti(4 + 8 * k as u64)),
                FeedbackOutcome::WillRetransmit
            );
            assert_eq!(h.take_due_retx(Tti(8 + 8 * k as u64)).len(), 1);
        }
        let out = h.feedback(0, false, Tti(100));
        assert_eq!(out, FeedbackOutcome::Exhausted { srb: 40, drb: 600 });
        assert!(h.all_idle());
        assert_eq!(h.exhausted, 1);
    }

    #[test]
    fn eight_processes_available() {
        let mut h = HarqEntity::new();
        for i in 0..8 {
            let pid = h.idle_process().expect("process available");
            h.start(pid, 0, 1, Mcs(0), 1, Tti(i));
        }
        assert!(h.idle_process().is_none());
        assert_eq!(h.outstanding(), Bytes(8));
    }

    #[test]
    fn combining_gain_grows() {
        assert_eq!(HarqEntity::combining_gain_db(1), 0.0);
        assert!((HarqEntity::combining_gain_db(2) - 3.0103).abs() < 0.01);
        assert!(HarqEntity::combining_gain_db(4) > HarqEntity::combining_gain_db(2));
    }

    #[test]
    fn in_flight_lookup_by_send_time() {
        let mut h = HarqEntity::new();
        h.start(0, 0, 10, Mcs(3), 2, Tti(40));
        h.start(1, 0, 20, Mcs(4), 3, Tti(41));
        let hits = h.in_flight_sent_at(Tti(40));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        assert!(h.in_flight_sent_at(Tti(39)).is_empty());
    }
}
