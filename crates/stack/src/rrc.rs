//! RRC procedure state (the *action* part of RRC — decisions like "when
//! to hand over" come from the control plane).
//!
//! The attach procedure is modeled at the granularity the platform's
//! experiments observe it: every downlink RRC message (random-access
//! response, connection setup, handover command) is an SRB SDU that must
//! be *scheduled* like any other downlink data — so when scheduling is
//! centralized and the control channel is too slow for the configured
//! schedule-ahead, these messages miss their RRC deadlines and "the UE
//! \[is\] unable to complete network attachment" (paper Fig. 9's lower
//! triangle).
//!
//! Timeline (defaults in [`RrcTimers`]):
//!
//! ```text
//! RACH ──► RAR + Msg3 (automatic: common-channel scheduling is MAC-
//!          internal, below FlexRAN's delegation granularity)
//!      ──► RRC Connection Setup on SRB (deadline: T300-like setup timer)
//!      ──► Connected
//! ```

use flexran_types::time::Tti;

/// Sizes of the modeled RRC messages, bytes.
pub const CONN_SETUP_BYTES: u64 = 120;
pub const HO_COMMAND_BYTES: u64 = 60;

/// RRC procedure timers (TTIs).
#[derive(Debug, Clone, Copy)]
pub struct RrcTimers {
    /// RACH preamble → Msg3 completion (RAR and the Msg3 grant are
    /// common-channel scheduling, executed by the MAC autonomously).
    pub msg3_delay: u64,
    /// T300-like timer: the connection setup must be delivered this many
    /// TTIs after Msg3.
    pub setup_deadline: u64,
    /// Backoff before a failed attach is retried.
    pub attach_backoff: u64,
    /// The handover command must be delivered this many TTIs after the
    /// procedure starts.
    pub ho_deadline: u64,
}

impl Default for RrcTimers {
    fn default() -> Self {
        RrcTimers {
            msg3_delay: 6,
            setup_deadline: 200,
            attach_backoff: 20,
            ho_deadline: 100,
        }
    }
}

/// Per-UE RRC state at the eNodeB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrcState {
    /// RACH received; RAR/Msg3 complete automatically at `at`.
    AwaitMsg3 { at: Tti },
    /// Connection setup queued on the SRB; waiting for its delivery.
    AwaitSetup { deadline: Tti },
    /// Attached and schedulable for data.
    Connected,
    /// Handover command queued on the SRB; waiting for its delivery.
    HandoverPrep { deadline: Tti },
}

impl RrcState {
    /// Whether the UE may receive data-bearer traffic.
    pub fn is_connected(self) -> bool {
        matches!(self, RrcState::Connected | RrcState::HandoverPrep { .. })
    }

    /// The stage name reported when a deadline expires.
    pub fn stage(self) -> &'static str {
        match self {
            RrcState::AwaitMsg3 { .. } => "msg3",
            RrcState::AwaitSetup { .. } => "setup",
            RrcState::Connected => "connected",
            RrcState::HandoverPrep { .. } => "handover",
        }
    }

    /// The deadline this state is waiting on, if any.
    pub fn deadline(self) -> Option<Tti> {
        match self {
            RrcState::AwaitSetup { deadline } | RrcState::HandoverPrep { deadline } => {
                Some(deadline)
            }
            RrcState::AwaitMsg3 { .. } | RrcState::Connected => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connectivity_by_state() {
        assert!(RrcState::Connected.is_connected());
        assert!(RrcState::HandoverPrep { deadline: Tti(1) }.is_connected());
        assert!(!RrcState::AwaitMsg3 { at: Tti(1) }.is_connected());
        assert!(!RrcState::AwaitSetup { deadline: Tti(1) }.is_connected());
    }

    #[test]
    fn deadlines_exposed() {
        assert_eq!(
            RrcState::AwaitSetup { deadline: Tti(9) }.deadline(),
            Some(Tti(9))
        );
        assert_eq!(RrcState::Connected.deadline(), None);
        assert_eq!(RrcState::AwaitMsg3 { at: Tti(3) }.deadline(), None);
    }

    #[test]
    fn default_timers_are_sane() {
        let t = RrcTimers::default();
        assert!(t.setup_deadline > t.msg3_delay);
        assert!(t.ho_deadline > 0);
    }
}
