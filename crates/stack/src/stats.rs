//! Data-plane statistics exposed through the FlexRAN Agent API.
//!
//! These records are what the agent's Reports & Events manager serializes
//! into *statistics reporting* protocol messages ("transmission queue
//! size, CQI measurements, SINR measurements" — paper Table 1) and what
//! the RIB at the master controller stores per UE and per cell.

use flexran_phy::link_adaptation::Cqi;
use flexran_types::ids::{Rnti, SliceId, UeId};
use flexran_types::time::Tti;
use flexran_types::units::Bytes;

/// Per-UE statistics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct UeStats {
    pub rnti: Rnti,
    pub ue: UeId,
    pub slice: SliceId,
    pub priority_group: u8,
    /// Whether the UE is fully connected (attach finished).
    pub connected: bool,
    /// Last reported wideband CQI.
    pub cqi: Cqi,
    /// TTI of the last CQI update.
    pub cqi_updated: Tti,
    /// Last measured SINR in dB (the raw measurement behind the CQI).
    pub sinr_db: f64,
    /// Downlink data (DRB) transmission-queue occupancy.
    pub dl_queue_bytes: Bytes,
    /// Downlink signalling (SRB) queue occupancy.
    pub srb_queue_bytes: Bytes,
    /// Uplink backlog the eNodeB assumes from the last BSR.
    pub ul_bsr_bytes: Bytes,
    /// Cumulative downlink goodput delivered to the UE (bits).
    pub dl_delivered_bits: u64,
    /// Cumulative uplink goodput received from the UE (bits).
    pub ul_delivered_bits: u64,
    /// Exponentially averaged downlink served rate (bits/s).
    pub avg_rate_bps: f64,
    /// HARQ counters.
    pub harq_tx: u64,
    pub harq_retx: u64,
    /// Head-of-line delay of the data queue (ms).
    pub hol_delay_ms: u64,
    /// Activated secondary component carriers (carrier aggregation).
    pub active_scells: Vec<u16>,
}

/// Per-cell statistics snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellStats {
    /// TTIs stepped.
    pub ttis: u64,
    /// Cumulative PRBs granted downlink (new data + retransmissions).
    pub dl_prbs_used: u64,
    /// Cumulative PRBs granted uplink.
    pub ul_prbs_used: u64,
    /// Cumulative downlink MAC bits put on the air.
    pub dl_mac_bits: u64,
    /// Subframes this cell was muted by an ABS pattern.
    pub abs_muted_ttis: u64,
    /// Scheduling decisions dropped for missing their deadline.
    pub missed_deadlines: u64,
    /// Decisions applied.
    pub decisions_applied: u64,
    /// Attach procedures completed / failed.
    pub attaches: u64,
    pub attach_failures: u64,
}

impl CellStats {
    /// Average downlink PRB utilization over the cell's lifetime.
    pub fn dl_prb_utilization(&self, n_prb: u8) -> f64 {
        if self.ttis == 0 {
            return 0.0;
        }
        self.dl_prbs_used as f64 / (self.ttis as f64 * n_prb as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let mut s = CellStats::default();
        assert_eq!(s.dl_prb_utilization(50), 0.0);
        s.ttis = 100;
        s.dl_prbs_used = 2500;
        assert!((s.dl_prb_utilization(50) - 0.5).abs() < 1e-12);
    }
}
