#![forbid(unsafe_code)]
//! # flexran-stack
//!
//! The LTE layer-2 data plane underneath the FlexRAN agent — the
//! from-scratch replacement for the OpenAirInterface eNodeB that the paper
//! builds on (see `DESIGN.md` for the substitution argument).
//!
//! Following the paper's control/data separation, this crate contains only
//! the *action* part of the access-stratum protocols: queues, HARQ,
//! transport-block delivery, RRC procedure execution. All *decisions*
//! (which UE to schedule, when to hand over) enter from outside through
//! [`enb::Enb::submit_dl_decision`] / [`enb::Enb::submit_ul_decision`] and
//! the RRC command methods — in a full FlexRAN deployment those calls are
//! made by the FlexRAN agent's control modules (crate `flexran-agent`),
//! which in turn may be driven locally (delegated VSFs) or remotely (the
//! master controller).
//!
//! Module map:
//!
//! * [`pdcp`] — per-bearer sequence numbering and header overhead.
//! * [`rlc`] — transmission queues, segmentation, buffer status.
//! * [`mac`] — DCIs, transport-block building, HARQ, BSR quantization,
//!   the scheduler traits, and the baseline schedulers (round-robin,
//!   proportional-fair, max-CQI).
//! * [`rrc`] — UE state machines: RACH/attach, measurement, handover.
//! * [`enb`] — the eNodeB: cells, per-TTI step pipeline, statistics,
//!   event emission.
//! * [`events`] — data-plane events consumed by the FlexRAN agent.
//! * [`stats`] — the counters exposed through the Agent API.

pub mod enb;
pub mod events;
pub mod mac;
pub mod pdcp;
pub mod rlc;
pub mod rrc;
pub mod stats;

pub use enb::{Enb, PhyView, StaticPhyView};
pub use events::EnbEvent;
pub use mac::dci::{DlDci, DlSchedulingDecision, UlGrant, UlSchedulingDecision};
pub use mac::scheduler::{
    DlScheduler, DlSchedulerInput, DlSchedulerOutput, MaxCqiScheduler, ParamValue,
    ProportionalFairScheduler, RetxInfo, RoundRobinScheduler, UeSchedInfo, UlScheduler,
    UlSchedulerInput, UlSchedulerOutput,
};
