//! Integration tests for the campaign orchestrator's load-bearing
//! contracts, end to end against the real chaos harness:
//!
//! 1. **Pool determinism** — the same `(seed, config)` produces
//!    bit-identical digests and fault logs whether run serially or
//!    under the campaign worker pool, at any worker count.
//! 2. **Negative control** — a deliberately violating fault schedule
//!    surfaces in the aggregated report as a failed verdict with the
//!    correct `(seed, TTI)` pin on every seed.
//! 3. **Cancellation accounting** — a cancelled campaign reports its
//!    skipped runs and never reads as green.

use flexran::prelude::ShardSpec;
use flexran_campaign::chaos::{run_chaos_campaign, run_one, ChaosCampaignSpec, ChaosVariant};
use flexran_campaign::{CancelToken, RunRecord};
use flexran_chaos::{run_chaos, ChaosConfig};

/// A campaign small enough for CI yet long enough for every fault class
/// to fire on most seeds.
fn small_spec(seeds: u64, workers: usize) -> ChaosCampaignSpec {
    ChaosCampaignSpec::new(seeds, 600, workers)
}

#[test]
fn pool_runs_are_bit_identical_to_serial_runs() {
    let spec = small_spec(4, 4);

    // Serial ground truth: plain `run_chaos` on the calling thread,
    // one seed after another — the exact path `experiments chaos` used
    // before the campaign existed.
    let serial: Vec<_> = spec.plan().iter().map(|(_, cfg)| run_chaos(cfg)).collect();

    // The same plan through the worker pool.
    let report = run_chaos_campaign(&spec, &CancelToken::new(), &mut |_| {});
    assert!(report.pass(), "{}", report.render_text());
    assert_eq!(report.total(), serial.len());

    for (slot, expect) in report.slots.iter().zip(&serial) {
        let got = slot.as_ref().expect("run completed");
        assert_eq!(got.seed, expect.seed);
        assert_eq!(
            got.digest, expect.digest,
            "digest diverged between serial and pooled runs of seed {}",
            expect.seed
        );
        assert_eq!(got.violations_total, expect.violations_total);
        // The fault log rides along as counters; compare field by field.
        let counter = |name: &str| -> u64 {
            got.counters
                .iter()
                .find(|(k, _)| *k == name)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(counter("agent_crashes"), expect.faults.agent_crashes);
        assert_eq!(counter("master_crashes"), expect.faults.master_crashes);
        assert_eq!(counter("master_restarts"), expect.faults.master_restarts);
        assert_eq!(counter("stalls"), expect.faults.stalls);
        assert_eq!(counter("wire_windows"), expect.faults.wire_windows);
        assert_eq!(counter("delegations"), expect.faults.delegations);
    }
}

#[test]
fn worker_count_does_not_change_the_aggregate() {
    let digests = |workers: usize| -> Vec<u64> {
        let spec = small_spec(3, workers);
        run_chaos_campaign(&spec, &CancelToken::new(), &mut |_| {})
            .completed()
            .map(|r| r.digest)
            .collect()
    };
    let one = digests(1);
    assert_eq!(one, digests(2));
    assert_eq!(one, digests(8));
}

#[test]
fn sharded_variants_share_the_serial_contract() {
    // A 2-shard master must replay bit-identically too — the campaign
    // covers shard variants precisely because this held historically.
    let mut spec = small_spec(2, 2);
    spec.variants = vec![ChaosVariant {
        label: "shards=2".to_string(),
        shards: ShardSpec::Fixed(2),
    }];
    let serial: Vec<u64> = spec
        .plan()
        .iter()
        .map(|(_, cfg)| run_chaos(cfg).digest)
        .collect();
    let pooled: Vec<u64> = run_chaos_campaign(&spec, &CancelToken::new(), &mut |_| {})
        .completed()
        .map(|r| r.digest)
        .collect();
    assert_eq!(serial, pooled);
}

#[test]
fn negative_control_surfaces_with_the_correct_seed_and_tti_pin() {
    const INJECT_AT: u64 = 150;
    let mut spec = small_spec(3, 2);
    spec.base.inject_violation_at = Some(INJECT_AT);

    let report = run_chaos_campaign(&spec, &CancelToken::new(), &mut |_| {});

    // The aggregate verdict must fail — a campaign that swallows an
    // injected violation would also swallow a real one.
    assert!(!report.pass());
    assert!(report.violations_total() >= 3, "one per seed at minimum");

    // Every seed must carry a PRB-capacity pin at (or right after) the
    // injection TTI, attributed to the right seed.
    for record in report.completed() {
        let pin = record
            .violations
            .iter()
            .find(|v| v.oracle == "prb-capacity" && v.tti >= INJECT_AT)
            .unwrap_or_else(|| panic!("seed {} lost its injected pin", record.seed));
        assert_eq!(pin.seed, record.seed, "pin must carry its own seed");
        assert!(
            pin.tti < INJECT_AT + spec.base.ttis,
            "pin TTI {} outside the run window",
            pin.tti
        );
        // The pin replays: rerunning that exact (seed, config) serially
        // reproduces a violation at the same TTI.
        let (_, cfg) = spec
            .plan()
            .into_iter()
            .find(|(_, c)| c.seed == record.seed)
            .expect("planned config for seed");
        let replay = run_chaos(&cfg);
        assert!(
            replay.violations.iter().any(|v| v.tti == pin.tti),
            "replay of seed {} did not reproduce the pinned TTI {}",
            record.seed,
            pin.tti
        );
    }

    // And the machine-readable report carries the pins.
    let json = report.to_json().to_string();
    assert!(json.contains("\"pass\":false"));
    assert!(json.contains("prb-capacity"));
}

#[test]
fn cancelled_campaigns_report_skips_and_fail() {
    let spec = small_spec(6, 1);
    let cancel = CancelToken::new();
    let cancel_from_progress = cancel.clone();
    // Cancel as soon as the first run reports: with one worker at most
    // a couple of runs can slip through before the flag is observed.
    let report = run_chaos_campaign(&spec, &cancel, &mut |_| cancel_from_progress.cancel());
    assert!(report.cancelled);
    assert!(report.skipped() > 0, "cancellation must skip some runs");
    assert!(!report.pass(), "a cancelled campaign must not read green");
    let json = report.to_json().to_string();
    assert!(json.contains("\"cancelled\":true"));
}

#[test]
fn run_one_matches_run_chaos_for_the_same_config() {
    let cfg = ChaosConfig {
        seed: 11,
        ttis: 400,
        ..ChaosConfig::default()
    };
    let direct = run_chaos(&cfg);
    let record: RunRecord = run_one("unit", &cfg);
    assert_eq!(record.digest, direct.digest);
    assert_eq!(record.seed, 11);
    assert_eq!(record.pass, direct.pass());
    assert!(record.kpis.iter().any(|(k, _)| *k == "throughput_mbps"));
}
