//! Property tests: the campaign's aggregation math vs an independent
//! counting oracle.
//!
//! [`flexran_campaign::percentile`] implements the exact nearest-rank
//! definition: the p-th percentile of `n` samples is the smallest
//! sample `v` such that at least `ceil(p/100 · n)` samples are `≤ v`.
//! The oracle below *counts* — for a candidate answer it checks the
//! definition directly, without sharing any arithmetic with the
//! implementation (no rank formula, no sorting assumptions). The
//! properties hold for arbitrary sample sets, arbitrary `p`, and the
//! degenerate `n = 0` / `n = 1` / all-equal cases the nearest-rank
//! definition is notoriously easy to get wrong on.

use flexran_campaign::{percentile, Distribution};
use proptest::collection::vec;
use proptest::prelude::*;

/// The definitional oracle: the smallest sample with at least
/// `ceil(p/100 · n)` samples at or below it (clamped to the min for
/// `p ≈ 0`). Quadratic and arithmetic-free on purpose.
fn oracle_percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len() as f64;
    let need = ((p / 100.0) * n).ceil().clamp(1.0, n) as usize;
    let mut best: Option<f64> = None;
    for &candidate in samples {
        let at_or_below = samples.iter().filter(|&&s| s <= candidate).count();
        if at_or_below >= need && best.is_none_or(|b| candidate < b) {
            best = Some(candidate);
        }
    }
    best
}

fn sorted(samples: &[f64]) -> Vec<f64> {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The implementation matches the counting oracle for arbitrary
    /// sample sets and percentiles, including duplicates.
    #[test]
    fn percentile_matches_the_counting_oracle(
        samples in vec(-1.0e6..1.0e6f64, 1..40),
        p in 0.0..100.0f64,
    ) {
        let s = sorted(&samples);
        prop_assert_eq!(percentile(&s, p), oracle_percentile(&samples, p));
    }

    /// Small integer-valued samples force heavy duplication — the case
    /// where off-by-one rank bugs actually bite.
    #[test]
    fn percentile_matches_the_oracle_under_heavy_ties(
        raw in vec(0u64..5, 1..30),
        p in 0.0..100.0f64,
    ) {
        let samples: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        let s = sorted(&samples);
        prop_assert_eq!(percentile(&s, p), oracle_percentile(&samples, p));
    }

    /// p50/p95/p99 as wired into `Distribution` agree with the oracle,
    /// and the moment statistics are internally consistent.
    #[test]
    fn distribution_percentiles_and_moments_are_consistent(
        samples in vec(-1.0e3..1.0e3f64, 1..40),
    ) {
        let d = Distribution::from_samples(&samples).unwrap();
        prop_assert_eq!(d.n, samples.len());
        prop_assert_eq!(Some(d.p50), oracle_percentile(&samples, 50.0));
        prop_assert_eq!(Some(d.p95), oracle_percentile(&samples, 95.0));
        prop_assert_eq!(Some(d.p99), oracle_percentile(&samples, 99.0));
        // Ordering invariants of the aggregate.
        prop_assert!(d.min <= d.p50 && d.p50 <= d.p95);
        prop_assert!(d.p95 <= d.p99 && d.p99 <= d.max);
        // Tiny slack: the mean goes through a float summation and may
        // land an ulp outside [min, max] when samples are (near-)equal.
        prop_assert!(d.min - 1e-9 <= d.mean && d.mean <= d.max + 1e-9);
        prop_assert!(d.std_dev >= 0.0 && d.ci95 >= 0.0);
    }

    /// All-equal sample sets collapse every statistic onto the value.
    /// Order statistics are exact; the mean goes through a summation
    /// and only promises to match within float rounding.
    #[test]
    fn all_equal_samples_collapse(value in -1.0e6..1.0e6f64, n in 1usize..50) {
        let samples = vec![value; n];
        let d = Distribution::from_samples(&samples).unwrap();
        prop_assert_eq!((d.min, d.max), (value, value));
        prop_assert_eq!((d.p50, d.p95, d.p99), (value, value, value));
        prop_assert!((d.mean - value).abs() <= value.abs() * 1e-12);
        // The spread statistics inherit the mean's rounding: bounded by
        // a relative epsilon, not exactly zero.
        prop_assert!(d.std_dev <= value.abs() * 1e-12);
        prop_assert!(d.ci95 <= value.abs() * 1e-12);
    }

    /// A single sample is every percentile (`n = 1`).
    #[test]
    fn single_sample_is_every_percentile(value in -1.0e6..1.0e6f64, p in 0.0..100.0f64) {
        prop_assert_eq!(percentile(&[value], p), Some(value));
    }
}

/// `n = 0` stays outside proptest: it is a single case, not a family.
#[test]
fn empty_sample_set_has_no_percentile_and_no_distribution() {
    assert_eq!(percentile(&[], 50.0), None);
    assert_eq!(oracle_percentile(&[], 50.0), None);
    assert!(Distribution::from_samples(&[]).is_none());
}
