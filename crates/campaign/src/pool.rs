//! The campaign worker pool: fan N independent runs over OS threads
//! with cooperative cancellation and deterministic, index-addressed
//! result collection.
//!
//! The pool is deliberately boring: a shared atomic work counter hands
//! run indices to `workers` scoped threads; each completed result is
//! shipped back over a channel and stored into the slot of its *plan
//! index*, so the aggregate is independent of completion order and of
//! the worker count — the property the serial-vs-pool determinism test
//! pins. Cancellation is cooperative at run granularity: a cancelled
//! pool finishes the runs already in flight and leaves the rest as
//! `None` slots, which the report surfaces as skipped (never as
//! silently passed).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// Shared cancellation flag. Cloning hands out another handle to the
/// same flag; any handle can cancel.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation: no *new* run starts after this is observed;
    /// runs already executing complete normally.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One completion event, delivered on the orchestrating thread in
/// completion order (progress display), while the result itself is
/// filed by plan index (deterministic aggregation).
#[derive(Debug)]
pub struct Progress<'a, R> {
    /// Plan index of the completed run.
    pub index: usize,
    /// Runs completed so far, including this one.
    pub done: usize,
    /// Total runs planned.
    pub total: usize,
    pub result: &'a R,
}

/// Run `job` over every item on a pool of `workers` threads and collect
/// the results by plan index. `on_done` fires on the calling thread
/// once per completed run — it may cancel the token to stop the
/// campaign early. A `None` slot means the run never started
/// (cancelled before a worker claimed it).
pub fn run_pool<T, R, F>(
    items: &[T],
    workers: usize,
    cancel: &CancelToken,
    job: F,
    on_done: &mut dyn FnMut(&Progress<'_, R>),
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let total = items.len();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(total, || None);
    if total == 0 {
        return slots;
    }
    let workers = workers.clamp(1, total);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                if cancel.is_cancelled() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break; // plan exhausted
                };
                let result = job(i, item);
                if tx.send((i, result)).is_err() {
                    break; // orchestrator gone; nothing left to report to
                }
            });
        }
        // The workers hold the remaining senders; when the last one
        // exits, `recv` errors out and the collection loop ends.
        drop(tx);
        let mut done = 0usize;
        while let Ok((index, result)) = rx.recv() {
            done += 1;
            on_done(&Progress {
                index,
                done,
                total,
                result: &result,
            });
            if let Some(slot) = slots.get_mut(index) {
                *slot = Some(result);
            }
        }
    });
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_filed_by_plan_index_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        for workers in [1, 2, 4, 16] {
            let out = run_pool(
                &items,
                workers,
                &CancelToken::new(),
                |i, v| (i as u64) * 1000 + v * 3,
                &mut |_| {},
            );
            let expect: Vec<Option<u64>> = (0..37u64).map(|v| Some(v * 1000 + v * 3)).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn progress_counts_every_completion() {
        let items = [0u8; 9];
        let mut seen = Vec::new();
        run_pool(&items, 3, &CancelToken::new(), |i, _| i, &mut |p| {
            seen.push((p.done, p.total))
        });
        assert_eq!(seen.len(), 9);
        assert_eq!(seen.last(), Some(&(9, 9)));
    }

    #[test]
    fn cancellation_skips_unstarted_runs_deterministically() {
        // One worker, cancelled from inside the first run (any handle
        // may cancel): run 0 still completes — cancellation is
        // cooperative at run granularity — and everything after it is
        // skipped, a deterministic outcome the report must surface as
        // "skipped", never as a silent pass. (Cancelling from `on_done`
        // also works but races the worker's next claim, so the exact
        // completed count is not deterministic there.)
        let items = [0u8; 5];
        let cancel = CancelToken::new();
        let cancel_in_job = cancel.clone();
        let out = run_pool(
            &items,
            1,
            &cancel,
            |i, _| {
                cancel_in_job.cancel();
                i
            },
            &mut |_| {},
        );
        assert_eq!(out, vec![Some(0), None, None, None, None]);
        assert!(cancel.is_cancelled());
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let out = run_pool::<u8, u8, _>(&[], 4, &CancelToken::new(), |_, _| 0, &mut |_| {});
        assert!(out.is_empty());
    }
}
