//! Exact sample statistics for campaign aggregation.
//!
//! Campaign KPI distributions are computed from the *collected samples*
//! — never from streaming sketches or bucketed histograms — so the
//! reported percentiles are exact under the nearest-rank definition:
//! the p-th percentile of `n` samples is the smallest sample `v` such
//! that at least `ceil(p/100 · n)` samples are `≤ v`. A property test
//! (`tests/stats_proptest.rs`) holds [`percentile`] to that definition
//! against an independent counting oracle, including the `n = 0`,
//! `n = 1` and all-equal edge cases.

/// Exact nearest-rank percentile of an ascending-sorted sample set.
/// `p` is in percent (`50.0` = median). Returns `None` on an empty set.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    let n = sorted.len();
    if n == 0 {
        return None;
    }
    // 1-based nearest rank; p ≤ 0 clamps to the minimum, p ≥ 100 to the
    // maximum. `ceil` never overflows: p is a percent, n a sample count.
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted.get(rank.clamp(1, n) - 1).copied()
}

/// The aggregate of one KPI's samples across a campaign: exact
/// percentiles plus the usual moment statistics and a 95% confidence
/// interval on the mean (normal approximation).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    pub n: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator; 0 when `n < 2`).
    pub std_dev: f64,
    /// Half-width of the 95% CI on the mean: `1.96 · sd / sqrt(n)`.
    pub ci95: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl Distribution {
    /// Aggregate a sample set. Returns `None` when it is empty (a KPI
    /// with zero samples has no distribution — the report never invents
    /// numbers for it). Non-finite samples are dropped before sorting so
    /// a single poisoned measurement cannot corrupt every percentile.
    pub fn from_samples(samples: &[f64]) -> Option<Distribution> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let first = *sorted.first()?;
        let last = *sorted.last()?;
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        Some(Distribution {
            n,
            min: first,
            max: last,
            mean,
            std_dev,
            ci95: 1.96 * std_dev / (n as f64).sqrt(),
            p50: percentile(&sorted, 50.0).unwrap_or(first),
            p95: percentile(&sorted, 95.0).unwrap_or(last),
            p99: percentile(&sorted, 99.0).unwrap_or(last),
        })
    }

    /// Machine-readable form used by every campaign report.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "n": self.n as u64,
            "min": self.min,
            "mean": self.mean,
            "std_dev": self.std_dev,
            "ci95": self.ci95,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_set_has_no_distribution() {
        assert_eq!(percentile(&[], 50.0), None);
        assert!(Distribution::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let d = Distribution::from_samples(&[7.5]).unwrap();
        assert_eq!((d.n, d.min, d.max), (1, 7.5, 7.5));
        assert_eq!((d.p50, d.p95, d.p99), (7.5, 7.5, 7.5));
        assert_eq!(d.std_dev, 0.0);
        assert_eq!(d.ci95, 0.0);
    }

    #[test]
    fn all_equal_samples_collapse() {
        let d = Distribution::from_samples(&[3.0; 17]).unwrap();
        assert_eq!((d.p50, d.p95, d.p99, d.mean), (3.0, 3.0, 3.0, 3.0));
        assert_eq!(d.std_dev, 0.0);
    }

    #[test]
    fn nearest_rank_on_a_known_set() {
        // Classic nearest-rank example: 1..=10.
        let s: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        assert_eq!(percentile(&s, 50.0), Some(5.0));
        assert_eq!(percentile(&s, 95.0), Some(10.0));
        assert_eq!(percentile(&s, 99.0), Some(10.0));
        assert_eq!(percentile(&s, 0.0), Some(1.0));
        assert_eq!(percentile(&s, 100.0), Some(10.0));
        assert_eq!(percentile(&s, 10.0), Some(1.0));
        assert_eq!(percentile(&s, 10.1), Some(2.0));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let d = Distribution::from_samples(&[1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(d.n, 2);
        assert_eq!((d.min, d.max), (1.0, 3.0));
    }
}
