//! Optional per-thread allocation accounting for campaign KPIs.
//!
//! The orchestrator itself must not install a global allocator — any
//! binary that links both this crate and another counting allocator
//! (flexran-bench's, say) would fail to link with two `#[global_allocator]`
//! statics. Instead, whichever *binary* hosts the campaign registers a
//! thread-attributed counter here (`flexran-campaign`'s own binary and
//! the `experiments` runner both do), and jobs sample it around each
//! run. Thread attribution matters: campaign runs execute concurrently,
//! so a process-global counter would blame one run for its neighbours'
//! heap traffic.

use std::sync::OnceLock;

static COUNTER: OnceLock<fn() -> u64> = OnceLock::new();

/// Register the host binary's counter: *allocations made by the calling
/// thread since it started*. First registration wins; later calls are
/// ignored (the counter is process-wide plumbing, not per-campaign).
pub fn register(counter: fn() -> u64) {
    let _ = COUNTER.set(counter);
}

/// Allocations attributed to the calling thread, if a counter was
/// registered. Jobs diff two readings around a run to get its count.
pub fn thread_allocations() -> Option<u64> {
    COUNTER.get().map(|f| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_probe_reads_none_then_sticks_after_register() {
        // Note: OnceLock is process-wide, so this test also covers the
        // first-registration-wins contract.
        fn fake() -> u64 {
            42
        }
        fn other() -> u64 {
            7
        }
        register(fake);
        register(other); // ignored
        assert_eq!(thread_allocations(), Some(42));
    }
}
