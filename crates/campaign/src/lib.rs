//! flexran-campaign — the parallel multi-seed campaign orchestrator.
//!
//! Soaks, sweeps and chaos experiments all share a shape: run the same
//! deterministic simulation N times under independent seeds (and config
//! variants), then decide pass/fail and report KPIs. Run one at a time,
//! that shape yields anecdotes — one seed, one number, no variance.
//! This crate turns it into a statistics-grade test:
//!
//! * [`pool`] fans independent runs over a worker pool of OS threads
//!   (one process), with cooperative cancellation and results filed by
//!   *plan index*, so aggregation is deterministic regardless of
//!   completion order or worker count.
//! * [`report`] aggregates per-run records into one machine-readable
//!   [`CampaignReport`]: per-seed digest + verdict, oracle-violation
//!   pins carrying the exact `(seed, TTI)` for bit-identical replay,
//!   and KPI distributions.
//! * [`stats`] computes those distributions from the collected samples
//!   with *exact* nearest-rank percentiles (p50/p95/p99), a mean, a
//!   sample standard deviation and a 95% CI — property-tested against
//!   an independent oracle.
//! * [`chaos`] plans N seeds × M shard-spec variants of the seeded
//!   fault orchestrator (`flexran-chaos`) — the campaign behind
//!   `experiments chaos` and the `scripts/check.sh` chaos gate.
//! * [`sweep`] runs the scale grid across seeds so `BENCH_scale.json`
//!   gains confidence intervals instead of single-run points.
//! * [`alloc_probe`] lets the host binary plug in a thread-attributed
//!   allocation counter for the allocs/TTI KPI without this crate
//!   owning a `#[global_allocator]`.
//!
//! The load-bearing contract, pinned by `tests/campaign.rs`: a run's
//! digest and fault log depend only on its `(seed, config)` — never on
//! the pool, the worker count, or its neighbours — so a campaign is
//! exactly as trustworthy as the serial runs it replaces, just N of
//! them at once.

#![forbid(unsafe_code)]

pub mod alloc_probe;
pub mod chaos;
pub mod pool;
pub mod report;
pub mod stats;
pub mod sweep;

pub use pool::{run_pool, CancelToken, Progress};
pub use report::{CampaignReport, RunRecord, ViolationPin};
pub use stats::{percentile, Distribution};
