//! `campaign sweep`: the scale grid across seeds.
//!
//! `experiments scale` measures each grid point once, with one seed —
//! a single-run point estimate. The sweep runs every grid point under
//! `seeds` independent seeds on the campaign pool and aggregates each
//! KPI into a [`Distribution`](crate::stats::Distribution), so the
//! emitted `BENCH_scale.json` carries confidence intervals and exact
//! percentiles instead of single-run points. Throughput and the
//! end-state digest are deterministic per `(point, seed)`; TTIs/s and
//! TTI-latency KPIs are wall-clock measurements whose spread is
//! precisely what the distribution quantifies.

use crate::alloc_probe;
use crate::pool::{run_pool, CancelToken, Progress};
use crate::report::{CampaignReport, RunRecord};
use flexran::agent::AgentConfig;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::traffic::FullBufferSource;

/// One planned sweep run: a grid point under one seed.
#[derive(Debug, Clone)]
pub struct SweepRun {
    pub enbs: usize,
    pub ues_per_enb: usize,
    pub seed: u64,
}

/// The sweep spec. The default grid matches `experiments scale`.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    pub grid: Vec<(usize, usize)>,
    /// Seeds `0..seeds` per grid point.
    pub seeds: u64,
    /// Measured TTIs per run (after the attach warm-up).
    pub ttis: u64,
    /// Attach/warm-up TTIs excluded from the measured window.
    pub warmup: u64,
    pub workers: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            grid: vec![(1, 16), (2, 32), (4, 64), (8, 16), (8, 64)],
            seeds: 8,
            ttis: 2_000,
            warmup: 100,
            workers: 1,
        }
    }
}

/// Parse a CLI grid: `1x16,2x32,...`.
pub fn parse_grid(text: &str) -> Result<Vec<(usize, usize)>, String> {
    let mut grid = Vec::new();
    for token in text.split(',') {
        let (e, u) = token
            .trim()
            .split_once('x')
            .ok_or_else(|| format!("bad grid point '{token}' (want ENBSxUES, e.g. 4x64)"))?;
        let enbs = e
            .parse()
            .map_err(|_| format!("bad eNB count in '{token}'"))?;
        let ues = u
            .parse()
            .map_err(|_| format!("bad UE count in '{token}'"))?;
        grid.push((enbs, ues));
    }
    Ok(grid)
}

impl SweepSpec {
    /// The deterministic plan, grid-major then seed order.
    pub fn plan(&self) -> Vec<SweepRun> {
        let mut plan = Vec::new();
        for &(enbs, ues_per_enb) in &self.grid {
            for seed in 0..self.seeds {
                plan.push(SweepRun {
                    enbs,
                    ues_per_enb,
                    seed,
                });
            }
        }
        plan
    }
}

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Execute one sweep run (serial TTI engine — the campaign pool is the
/// parallelism) and record its KPIs and end-state digest.
pub fn run_one(run: &SweepRun, spec: &SweepSpec) -> RunRecord {
    let mut sim = SimHarness::new(SimConfig {
        seed: run.seed,
        workers: None,
        ..SimConfig::default()
    });
    for e in 0..run.enbs {
        let enb = EnbId(e as u32 + 1);
        sim.add_enb(EnbConfig::single_cell(enb), AgentConfig::default());
        for u in 0..run.ues_per_enb {
            let ue_seed = run.seed ^ ((e as u64) << 32) ^ u as u64;
            let ue = sim.add_ue(
                enb,
                CellId(0),
                SliceId::MNO,
                0,
                UeRadioSpec::Fading(15.0, 4.0, 0.95, ue_seed),
            );
            sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
        }
    }
    sim.run(spec.warmup);
    sim.reset_budget();
    let allocs_before = alloc_probe::thread_allocations();
    // TTIs/s is the KPI under measurement; the simulation itself runs
    // on virtual time.
    // lint:allow(wall-clock) measurement-only KPI
    let t0 = std::time::Instant::now();
    sim.run(spec.ttis);
    let wall = t0.elapsed();
    let allocs_after = alloc_probe::thread_allocations();
    let budget = sim.budget_stats();

    // Deterministic end-state digest + cumulative throughput, the same
    // observables `experiments scale` digests.
    let mut digest = 0xcbf29ce484222325u64;
    let mut dl_bits = 0u64;
    for id in 1..=(run.enbs * run.ues_per_enb) as u32 {
        let Some(s) = sim.ue_stats(UeId(id)) else {
            fnv(&mut digest, u64::MAX);
            continue;
        };
        fnv(&mut digest, s.dl_delivered_bits);
        fnv(&mut digest, s.ul_delivered_bits);
        fnv(&mut digest, s.dl_queue_bytes.as_u64());
        fnv(&mut digest, s.cqi.0 as u64);
        fnv(&mut digest, s.harq_tx + s.harq_retx);
        dl_bits += s.dl_delivered_bits;
    }

    let total_ttis = (spec.warmup + spec.ttis).max(1);
    let mut kpis: Vec<(&'static str, f64)> = vec![
        (
            "ttis_per_sec",
            spec.ttis as f64 / wall.as_secs_f64().max(1e-9),
        ),
        (
            "throughput_mbps",
            dl_bits as f64 / total_ttis as f64 / 1000.0,
        ),
        ("tti_p50_us", budget.p50_ns as f64 / 1e3),
        ("tti_p99_us", budget.p99_ns as f64 / 1e3),
    ];
    if let (Some(before), Some(after)) = (allocs_before, allocs_after) {
        kpis.push((
            "allocs_per_tti",
            after.saturating_sub(before) as f64 / spec.ttis.max(1) as f64,
        ));
    }
    RunRecord {
        label: format!("{}x{}", run.enbs, run.ues_per_enb),
        seed: run.seed,
        pass: true, // the sweep has no oracles; failures are digest mismatches downstream
        digest,
        violations_total: 0,
        violations: Vec::new(),
        kpis,
        counters: Vec::new(),
    }
}

/// Run the sweep over the pool.
pub fn run_sweep(
    spec: &SweepSpec,
    cancel: &CancelToken,
    on_done: &mut dyn FnMut(&Progress<'_, RunRecord>),
) -> CampaignReport {
    let plan = spec.plan();
    let workers = spec.workers.clamp(1, plan.len().max(1));
    // lint:allow(wall-clock) measurement-only campaign wall time
    let t0 = std::time::Instant::now();
    let slots = run_pool(&plan, workers, cancel, |_, run| run_one(run, spec), on_done);
    CampaignReport {
        name: "sweep".to_string(),
        workers,
        cancelled: cancel.is_cancelled(),
        slots,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// The `BENCH_scale.json` sweep schema: one series entry per grid
/// point, every KPI a distribution over that point's seeds, plus the
/// per-seed digests for reproducibility cross-checks.
pub fn sweep_json(report: &CampaignReport, spec: &SweepSpec) -> serde_json::Value {
    let mut series = Vec::new();
    for &(enbs, ues_per_enb) in &spec.grid {
        let label = format!("{enbs}x{ues_per_enb}");
        let records: Vec<_> = report.completed().filter(|r| r.label == label).collect();
        let mut kpis: Vec<(String, serde_json::Value)> = Vec::new();
        let mut by_name: Vec<(&'static str, Vec<f64>)> = Vec::new();
        for r in &records {
            for (name, value) in &r.kpis {
                match by_name.iter_mut().find(|(n, _)| n == name) {
                    Some((_, samples)) => samples.push(*value),
                    None => by_name.push((name, vec![*value])),
                }
            }
        }
        for (name, samples) in &by_name {
            if let Some(d) = crate::stats::Distribution::from_samples(samples) {
                kpis.push((name.to_string(), d.to_json()));
            }
        }
        let digests: Vec<serde_json::Value> = records
            .iter()
            .map(|r| serde_json::Value::String(format!("{:016x}", r.digest)))
            .collect();
        series.push(serde_json::json!({
            "enbs": enbs as u64,
            "ues_per_enb": ues_per_enb as u64,
            "seeds": records.len() as u64,
            "kpis": serde_json::Value::Object(kpis),
            "digests": serde_json::Value::Array(digests),
        }));
    }
    serde_json::json!({
        "bench": "scale",
        "mode": "sweep",
        "schema": 1u64,
        "seeds_per_point": spec.seeds,
        "ttis_per_point": spec.ttis,
        "warmup_ttis": spec.warmup,
        "workers": report.workers as u64,
        "completed": (report.total() - report.skipped()) as u64,
        "planned": report.total() as u64,
        "cancelled": report.cancelled,
        "wall_ms": report.wall_ms,
        "series": serde_json::Value::Array(series),
        "note": "distribution-grade scale points: every KPI is aggregated over \
                 independent seeds with exact nearest-rank percentiles and a 95% CI \
                 on the mean; single-run points (mode: single) cannot express run-to-run \
                 variance",
    })
}
