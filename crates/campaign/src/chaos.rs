//! The chaos campaign: N seeds × M config variants of the seeded fault
//! orchestrator fanned over the worker pool.
//!
//! Each run is an independent [`flexran_chaos::run_chaos`] schedule —
//! own seed, own simulation, own oracle battery — so runs parallelize
//! perfectly and the per-seed digests are bit-identical to a serial
//! invocation of the same `(seed, config)`. The campaign collects each
//! run's verdict, digest, fault log and KPI samples into one
//! [`CampaignReport`].

use crate::alloc_probe;
use crate::pool::{run_pool, CancelToken, Progress};
use crate::report::{CampaignReport, RunRecord, ViolationPin};
use flexran::prelude::ShardSpec;
use flexran_chaos::{run_chaos_instrumented, ChaosConfig};

/// One control-plane configuration the campaign soaks. Variants let a
/// single campaign cover, say, the unsharded and the 4-shard master in
/// one parallel invocation (what `scripts/check.sh` does).
#[derive(Debug, Clone)]
pub struct ChaosVariant {
    pub label: String,
    pub shards: ShardSpec,
}

impl ChaosVariant {
    /// Parse a CLI token: `auto`/`1` → single shard, `0`/`per-agent` →
    /// one shard per agent, `N` → `N` fixed shards.
    pub fn parse(token: &str) -> Result<ChaosVariant, String> {
        let (label, shards) = match token.trim() {
            "auto" | "1" => ("shards=1".to_string(), ShardSpec::Auto),
            "per-agent" | "0" => ("shards=per-agent".to_string(), ShardSpec::PerAgent),
            n => {
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("bad shard spec '{n}' (want auto, per-agent, or N)"))?;
                (format!("shards={n}"), ShardSpec::Fixed(n))
            }
        };
        Ok(ChaosVariant { label, shards })
    }
}

/// The campaign spec: per-run bootstrap is derived entirely from
/// `(base, seed, variant)`, so a spec is a complete, replayable
/// description of every run it fans out.
#[derive(Debug, Clone)]
pub struct ChaosCampaignSpec {
    /// Template config; `seed` and `shards` are overridden per run.
    pub base: ChaosConfig,
    /// Seeds `0..seeds` per variant.
    pub seeds: u64,
    pub variants: Vec<ChaosVariant>,
    /// Worker threads (clamped to the plan size; 0 means 1).
    pub workers: usize,
}

impl ChaosCampaignSpec {
    pub fn new(seeds: u64, ttis: u64, workers: usize) -> Self {
        ChaosCampaignSpec {
            base: ChaosConfig {
                ttis,
                ..ChaosConfig::default()
            },
            seeds,
            variants: vec![ChaosVariant {
                label: "shards=1".to_string(),
                shards: ShardSpec::Auto,
            }],
            workers,
        }
    }

    /// The deterministic run plan, variant-major then seed order. The
    /// plan index is the aggregation slot, independent of completion
    /// order.
    pub fn plan(&self) -> Vec<(String, ChaosConfig)> {
        let mut plan = Vec::new();
        for variant in &self.variants {
            for seed in 0..self.seeds {
                plan.push((
                    variant.label.clone(),
                    ChaosConfig {
                        seed,
                        shards: variant.shards,
                        ..self.base.clone()
                    },
                ));
            }
        }
        plan
    }
}

/// Execute one planned run and convert it into a campaign record.
pub fn run_one(label: &str, cfg: &ChaosConfig) -> RunRecord {
    let allocs_before = alloc_probe::thread_allocations();
    // Per-run wall time is a measurement-only KPI, never fed back into
    // the simulation or the digest.
    // lint:allow(wall-clock) measurement-only KPI
    let t0 = std::time::Instant::now();
    let (report, telemetry) = run_chaos_instrumented(cfg);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let total_ttis = (cfg.warmup + cfg.ttis).max(1);
    let mut kpis: Vec<(&'static str, f64)> = vec![
        // Mb/s: cumulative bits over 1 ms TTIs.
        (
            "throughput_mbps",
            report.dl_delivered_bits as f64 / total_ttis as f64 / 1000.0,
        ),
        ("tti_p50_us", telemetry.budget.p50_ns as f64 / 1e3),
        ("tti_p99_us", telemetry.budget.p99_ns as f64 / 1e3),
        ("run_wall_ms", wall_ms),
    ];
    if let (Some(before), Some(after)) = (allocs_before, alloc_probe::thread_allocations()) {
        kpis.push((
            "allocs_per_tti",
            after.saturating_sub(before) as f64 / total_ttis as f64,
        ));
    }
    RunRecord {
        label: label.to_string(),
        seed: cfg.seed,
        pass: report.pass(),
        digest: report.digest,
        violations_total: report.violations_total,
        violations: report
            .violations
            .iter()
            .map(|v| ViolationPin {
                label: label.to_string(),
                seed: v.seed,
                tti: v.tti,
                oracle: v.oracle.to_string(),
                detail: v.detail.clone(),
            })
            .collect(),
        kpis,
        counters: vec![
            ("agent_crashes", report.faults.agent_crashes),
            ("master_crashes", report.faults.master_crashes),
            ("master_restarts", report.faults.master_restarts),
            ("stalls", report.faults.stalls),
            ("wire_windows", report.faults.wire_windows),
            ("delegations", report.faults.delegations),
            ("rollouts", report.faults.rollouts),
        ],
    }
}

/// Run the whole campaign over the pool and aggregate. `on_done` fires
/// once per completed run on the calling thread (live progress; it may
/// cancel the token).
pub fn run_chaos_campaign(
    spec: &ChaosCampaignSpec,
    cancel: &CancelToken,
    on_done: &mut dyn FnMut(&Progress<'_, RunRecord>),
) -> CampaignReport {
    let plan = spec.plan();
    let workers = spec.workers.clamp(1, plan.len().max(1));
    // lint:allow(wall-clock) measurement-only campaign wall time
    let t0 = std::time::Instant::now();
    let slots = run_pool(
        &plan,
        workers,
        cancel,
        |_, (label, cfg)| run_one(label, cfg),
        on_done,
    );
    CampaignReport {
        name: "chaos".to_string(),
        workers,
        cancelled: cancel.is_cancelled(),
        slots,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}
