//! Campaign run records and the aggregated, machine-readable report.
//!
//! Aggregation is deterministic by construction: records are stored in
//! plan order (never completion order), violation pins keep their exact
//! `(seed, TTI)` for bit-identical replay, and KPI distributions are
//! computed by [`crate::stats`] from the full sample sets. The report
//! can never swallow a failure: a skipped (cancelled) run, a violated
//! oracle, or a cancelled campaign each force `pass() == false`.

use crate::stats::Distribution;

/// One oracle violation in the aggregate roll-up, pinned to the exact
/// `(seed, TTI)` — and the config variant — that replays it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationPin {
    /// Config-variant label of the violating run (e.g. `shards=4`).
    pub label: String,
    pub seed: u64,
    pub tti: u64,
    pub oracle: String,
    pub detail: String,
}

impl std::fmt::Display for ViolationPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "violation: config={} seed={} tti={} oracle={} — {}",
            self.label, self.seed, self.tti, self.oracle, self.detail
        )
    }
}

/// What one completed run contributes to the campaign.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Config-variant label (one campaign may cover several variants).
    pub label: String,
    pub seed: u64,
    pub pass: bool,
    /// Deterministic end-state digest — identical for every replay of
    /// the same `(seed, config)`, serial or pooled, in any process.
    pub digest: u64,
    pub violations_total: u64,
    /// Recorded violation pins (the run may cap these; the total above
    /// counts all).
    pub violations: Vec<ViolationPin>,
    /// KPI samples this run contributes, in stable (name, value) form.
    pub kpis: Vec<(&'static str, f64)>,
    /// Named counters for the per-run report entry (fault log etc.).
    pub counters: Vec<(&'static str, u64)>,
}

/// The aggregated campaign outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// Campaign name (report filename stem, progress header).
    pub name: String,
    /// Worker threads the pool ran with.
    pub workers: usize,
    /// Whether the campaign was cancelled before completing its plan.
    pub cancelled: bool,
    /// Per-run records in *plan order*; `None` marks a run that never
    /// started (cancelled).
    pub slots: Vec<Option<RunRecord>>,
    /// Campaign wall time (measurement-only; excluded from any
    /// determinism comparison).
    pub wall_ms: f64,
}

impl CampaignReport {
    /// Runs planned.
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Completed records, in plan order.
    pub fn completed(&self) -> impl Iterator<Item = &RunRecord> {
        self.slots.iter().flatten()
    }

    /// Runs that never started (cancelled before a worker claimed them).
    pub fn skipped(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// The campaign verdict: every planned run completed and passed.
    /// Skipped runs fail the verdict — an aggregation that dropped work
    /// must never read as green.
    pub fn pass(&self) -> bool {
        !self.cancelled && self.skipped() == 0 && self.completed().all(|r| r.pass)
    }

    /// Total violations across every completed run.
    pub fn violations_total(&self) -> u64 {
        self.completed().map(|r| r.violations_total).sum()
    }

    /// Every recorded violation pin, in plan order.
    pub fn pins(&self) -> impl Iterator<Item = &ViolationPin> {
        self.completed().flat_map(|r| r.violations.iter())
    }

    /// KPI distributions over the completed runs' samples, in
    /// first-seen KPI order. Exact percentiles — see [`crate::stats`].
    pub fn kpi_distributions(&self) -> Vec<(&'static str, Distribution)> {
        let mut by_name: Vec<(&'static str, Vec<f64>)> = Vec::new();
        for record in self.completed() {
            for (name, value) in &record.kpis {
                match by_name.iter_mut().find(|(n, _)| n == name) {
                    Some((_, samples)) => samples.push(*value),
                    None => by_name.push((name, vec![*value])),
                }
            }
        }
        by_name
            .iter()
            .filter_map(|(name, samples)| Distribution::from_samples(samples).map(|d| (*name, d)))
            .collect()
    }

    /// The machine-readable campaign report (schema documented in
    /// EXPERIMENTS.md §"Campaign reports").
    pub fn to_json(&self) -> serde_json::Value {
        let per_run: Vec<serde_json::Value> = self
            .completed()
            .map(|r| {
                let counters: Vec<(String, serde_json::Value)> = r
                    .counters
                    .iter()
                    .map(|(k, v)| (k.to_string(), serde_json::Value::UInt(*v)))
                    .collect();
                let kpis: Vec<(String, serde_json::Value)> = r
                    .kpis
                    .iter()
                    .map(|(k, v)| (k.to_string(), serde_json::Value::Float(*v)))
                    .collect();
                serde_json::json!({
                    "label": r.label.clone(),
                    "seed": r.seed,
                    "pass": r.pass,
                    "digest": format!("{:016x}", r.digest),
                    "violations": r.violations_total,
                    "counters": serde_json::Value::Object(counters),
                    "kpis": serde_json::Value::Object(kpis),
                })
            })
            .collect();
        let violations: Vec<serde_json::Value> = self
            .pins()
            .map(|p| {
                serde_json::json!({
                    "label": p.label.clone(),
                    "seed": p.seed,
                    "tti": p.tti,
                    "oracle": p.oracle.clone(),
                    "detail": p.detail.clone(),
                })
            })
            .collect();
        let kpis: Vec<(String, serde_json::Value)> = self
            .kpi_distributions()
            .iter()
            .map(|(name, d)| (name.to_string(), d.to_json()))
            .collect();
        serde_json::json!({
            "campaign": self.name.clone(),
            "schema": 1u64,
            "workers": self.workers as u64,
            "planned": self.total() as u64,
            "completed": (self.total() - self.skipped()) as u64,
            "skipped": self.skipped() as u64,
            "cancelled": self.cancelled,
            "pass": self.pass(),
            "violations_total": self.violations_total(),
            "wall_ms": self.wall_ms,
            "per_run": serde_json::Value::Array(per_run),
            "violations": serde_json::Value::Array(violations),
            "kpis": serde_json::Value::Object(kpis),
        })
    }

    /// Human-readable summary (progress footer / CI log).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = if self.pass() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "campaign '{}': {}/{} runs completed ({} skipped), workers={}, \
             violations={}, wall={:.1}s — {verdict}",
            self.name,
            self.total() - self.skipped(),
            self.total(),
            self.skipped(),
            self.workers,
            self.violations_total(),
            self.wall_ms / 1000.0,
        );
        for (name, d) in self.kpi_distributions() {
            let _ = writeln!(
                out,
                "  kpi {name}: n={} mean={:.3}±{:.3} p50={:.3} p95={:.3} p99={:.3} \
                 min={:.3} max={:.3}",
                d.n, d.mean, d.ci95, d.p50, d.p95, d.p99, d.min, d.max
            );
        }
        for pin in self.pins() {
            let _ = writeln!(out, "  {pin}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, seed: u64, pass: bool, kpi: f64) -> RunRecord {
        RunRecord {
            label: label.to_string(),
            seed,
            pass,
            digest: seed.wrapping_mul(0x9E37_79B9),
            violations_total: u64::from(!pass),
            violations: if pass {
                vec![]
            } else {
                vec![ViolationPin {
                    label: label.to_string(),
                    seed,
                    tti: 777,
                    oracle: "prb-capacity".to_string(),
                    detail: "test".to_string(),
                }]
            },
            kpis: vec![("throughput_mbps", kpi)],
            counters: vec![("agent_crashes", seed)],
        }
    }

    fn report(slots: Vec<Option<RunRecord>>) -> CampaignReport {
        CampaignReport {
            name: "unit".to_string(),
            workers: 2,
            cancelled: false,
            slots,
            wall_ms: 1.0,
        }
    }

    #[test]
    fn all_passing_runs_pass_and_aggregate_kpis() {
        let r = report(vec![
            Some(record("a", 0, true, 1.0)),
            Some(record("a", 1, true, 3.0)),
        ]);
        assert!(r.pass());
        assert_eq!(r.violations_total(), 0);
        let kpis = r.kpi_distributions();
        assert_eq!(kpis.len(), 1);
        let (name, d) = &kpis[0];
        assert_eq!(*name, "throughput_mbps");
        assert_eq!((d.n, d.min, d.max, d.mean), (2, 1.0, 3.0, 2.0));
    }

    #[test]
    fn a_single_failing_run_fails_the_campaign_and_keeps_its_pin() {
        let r = report(vec![
            Some(record("a", 0, true, 1.0)),
            Some(record("a", 3, false, 2.0)),
        ]);
        assert!(!r.pass());
        assert_eq!(r.violations_total(), 1);
        let pins: Vec<_> = r.pins().collect();
        assert_eq!(pins.len(), 1);
        assert_eq!((pins[0].seed, pins[0].tti), (3, 777));
        let json = r.to_json().to_string();
        assert!(json.contains("\"pass\":false"));
        assert!(json.contains("\"tti\":777"));
    }

    #[test]
    fn skipped_runs_never_read_as_green() {
        let r = report(vec![Some(record("a", 0, true, 1.0)), None]);
        assert!(!r.pass(), "a skipped run must fail the verdict");
        assert_eq!(r.skipped(), 1);
    }

    #[test]
    fn json_has_the_documented_top_level_fields() {
        let json = report(vec![Some(record("a", 0, true, 1.0))]).to_json();
        let text = serde_json::to_string_pretty(&json).unwrap();
        for key in [
            "\"campaign\"",
            "\"schema\"",
            "\"workers\"",
            "\"planned\"",
            "\"completed\"",
            "\"skipped\"",
            "\"cancelled\"",
            "\"pass\"",
            "\"violations_total\"",
            "\"per_run\"",
            "\"violations\"",
            "\"kpis\"",
            "\"digest\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
