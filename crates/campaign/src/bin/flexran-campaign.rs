//! flexran-campaign — run a multi-seed campaign from the command line.
//!
//! ```text
//! flexran-campaign chaos --seeds 8 --ttis 2000 --configs 1,4 --workers 0 --out target/campaign
//! flexran-campaign sweep --seeds 8 --ttis 2000 --grid 1x16,2x32 --out target/campaign
//! ```
//!
//! `chaos` fans N seeds × M shard-spec variants of the seeded fault
//! orchestrator and fails (exit 1) on any oracle violation, printing
//! the exact `(config, seed, TTI)` pin to replay each one. `sweep` runs
//! the scale grid across seeds and writes a distribution-grade
//! `BENCH_scale.json`. Both write `campaign_<name>.json` (schema in
//! EXPERIMENTS.md §"Campaign reports") into `--out`.
//!
//! Exit codes: 0 pass, 1 campaign failed (violation / skipped runs /
//! cancelled), 2 usage error.

use std::io::Write as _;

use flexran_campaign::chaos::{run_chaos_campaign, ChaosCampaignSpec, ChaosVariant};
use flexran_campaign::sweep::{parse_grid, run_sweep, SweepSpec};
use flexran_campaign::{alloc_probe, CampaignReport, CancelToken};

/// Thread-attributed counting allocator so campaign runs can report an
/// allocs/TTI KPI. Per-thread counters matter: runs execute
/// concurrently, and a process-global count would blame one run for its
/// neighbours' heap traffic.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        // `const` init: the TLS slot must not itself allocate lazily,
        // or the first counted allocation would recurse.
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    pub struct CountingAllocator;

    // SAFETY: delegates every operation unchanged to `System`, which
    // upholds the `GlobalAlloc` contract; the counter update has no
    // effect on the returned memory.
    unsafe impl GlobalAlloc for CountingAllocator {
        // SAFETY: same contract as the caller's — `layout` is passed
        // through to `System.alloc` unchanged.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // `try_with`: TLS may already be torn down during thread
            // exit; losing those few counts is fine, aborting is not.
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            // SAFETY: forwarding the caller's obligations verbatim.
            unsafe { System.alloc(layout) }
        }

        // SAFETY: `ptr`/`layout` come from a prior `alloc` on `System`
        // (every path above delegates there), so the pair is valid.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: forwarding the caller's obligations verbatim.
            unsafe { System.dealloc(ptr, layout) }
        }

        // SAFETY: same contract as the caller's — all arguments are
        // passed through to `System.realloc` unchanged.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            // SAFETY: forwarding the caller's obligations verbatim.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Allocations made by the calling thread since it started.
    pub fn thread_allocations() -> u64 {
        ALLOCS.try_with(Cell::get).unwrap_or(0)
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAllocator = counting_alloc::CountingAllocator;

const USAGE: &str = "\
usage: flexran-campaign <chaos|sweep> [flags]

  chaos — N seeds x M shard-spec variants of the seeded fault orchestrator
    --seeds N             seeds 0..N per variant          (default 8)
    --ttis N              chaos TTIs per run              (default 2000)
    --configs LIST        shard specs, e.g. 1,4,per-agent (default 1)
    --negative-control T  inject a PRB violation at TTI T (proves the
                          oracles fire and pin correctly; inverts exit)
  sweep — the scale grid across seeds; BENCH_scale.json with CIs
    --seeds N             seeds 0..N per grid point       (default 8)
    --ttis N              measured TTIs per run           (default 2000)
    --warmup N            warm-up TTIs per run            (default 100)
    --grid LIST           grid points, e.g. 1x16,2x32     (default scale grid)

  common flags
    --workers N           pool threads; 0 = all cores     (default 0)
    --out DIR             report directory                (default target/campaign)
    --max-seconds S       cancel (cooperatively) after S seconds
    --quick               clamp to a smoke-sized campaign (4 seeds, 500 TTIs)

exit: 0 pass, 1 fail, 2 usage error";

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value '{value}' for {flag}"))
}

/// Common campaign flags shared by both subcommands.
struct CommonArgs {
    workers: usize,
    out: std::path::PathBuf,
    max_seconds: Option<u64>,
    quick: bool,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            workers: 0,
            out: std::path::PathBuf::from("target/campaign"),
            max_seconds: None,
            quick: false,
        }
    }
}

impl CommonArgs {
    /// Consume a common flag; `Ok(false)` means the flag is not a
    /// common one and the subcommand parser should reject it.
    fn consume(
        &mut self,
        flag: &str,
        value: &mut dyn FnMut() -> Result<String, String>,
    ) -> Result<bool, String> {
        match flag {
            "--workers" => self.workers = parse(&value()?, flag)?,
            "--out" => self.out = std::path::PathBuf::from(value()?),
            "--max-seconds" => self.max_seconds = Some(parse(&value()?, flag)?),
            "--quick" => self.quick = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Arm the `--max-seconds` watchdog: a detached thread that sleeps
    /// and then cancels. Cooperative — in-flight runs finish, unstarted
    /// runs are skipped and the campaign reports itself cancelled.
    fn arm_watchdog(&self, cancel: &CancelToken) {
        if let Some(secs) = self.max_seconds {
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_secs(secs));
                cancel.cancel();
            });
        }
    }

    fn write_report(&self, report: &CampaignReport) -> Result<(), String> {
        std::fs::create_dir_all(&self.out)
            .map_err(|e| format!("create {}: {e}", self.out.display()))?;
        let path = self.out.join(format!("campaign_{}.json", report.name));
        let json = serde_json::to_string_pretty(&report.to_json())
            .map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("report: {}", path.display());
        Ok(())
    }
}

fn progress_line(
    name: &str,
) -> impl FnMut(&flexran_campaign::Progress<'_, flexran_campaign::RunRecord>) + '_ {
    move |p| {
        let r = p.result;
        let verdict = if r.pass { "ok" } else { "VIOLATION" };
        println!(
            "[{:>3}/{:>3}] {name} {} seed={} digest={:016x} {}",
            p.done, p.total, r.label, r.seed, r.digest, verdict
        );
        let _ = std::io::stdout().flush();
    }
}

fn run_chaos(args: &[String]) -> Result<i32, String> {
    let mut common = CommonArgs::default();
    let mut seeds = 8u64;
    let mut ttis = 2_000u64;
    let mut configs = vec!["1".to_string()];
    let mut negative_control: Option<u64> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => seeds = parse(&value()?, flag)?,
            "--ttis" => ttis = parse(&value()?, flag)?,
            "--configs" => {
                configs = value()?.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--negative-control" => negative_control = Some(parse(&value()?, flag)?),
            other => {
                if !common.consume(other, &mut value)? {
                    return Err(format!("unknown chaos flag '{other}'"));
                }
            }
        }
    }
    if common.quick {
        seeds = seeds.min(4);
        ttis = ttis.min(500);
    }

    let mut spec = ChaosCampaignSpec::new(seeds, ttis, common.resolved_workers());
    spec.variants = configs
        .iter()
        .map(|t| ChaosVariant::parse(t))
        .collect::<Result<Vec<_>, _>>()?;
    spec.base.inject_violation_at = negative_control;

    let cancel = CancelToken::new();
    common.arm_watchdog(&cancel);
    println!(
        "campaign chaos: {} seeds x {} variants, {} TTIs/run, {} workers",
        seeds,
        spec.variants.len(),
        ttis,
        spec.workers
    );
    let report = run_chaos_campaign(&spec, &cancel, &mut progress_line("chaos"));
    print!("{}", report.render_text());
    common.write_report(&report)?;

    if let Some(tti) = negative_control {
        // Negative control: the campaign must FAIL, and every seed's
        // roll-up must pin a violation at (or right after) the
        // injection TTI. A green negative control means dead oracles.
        let every_run_pinned = report
            .completed()
            .all(|r| r.violations.iter().any(|v| v.tti >= tti));
        let ok = !report.pass() && report.skipped() == 0 && every_run_pinned;
        println!(
            "negative control (inject at TTI {tti}): {}",
            if ok {
                "oracles fired and pinned — ok"
            } else {
                "NOT DETECTED"
            }
        );
        return Ok(if ok { 0 } else { 1 });
    }
    Ok(if report.pass() { 0 } else { 1 })
}

fn run_sweep_cmd(args: &[String]) -> Result<i32, String> {
    let mut common = CommonArgs::default();
    let mut spec = SweepSpec::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => spec.seeds = parse(&value()?, flag)?,
            "--ttis" => spec.ttis = parse(&value()?, flag)?,
            "--warmup" => spec.warmup = parse(&value()?, flag)?,
            "--grid" => spec.grid = parse_grid(&value()?)?,
            other => {
                if !common.consume(other, &mut value)? {
                    return Err(format!("unknown sweep flag '{other}'"));
                }
            }
        }
    }
    if common.quick {
        spec.seeds = spec.seeds.min(4);
        spec.ttis = spec.ttis.min(500);
        spec.grid.truncate(2);
    }
    spec.workers = common.resolved_workers();

    let cancel = CancelToken::new();
    common.arm_watchdog(&cancel);
    println!(
        "campaign sweep: {} grid points x {} seeds, {} TTIs/run, {} workers",
        spec.grid.len(),
        spec.seeds,
        spec.ttis,
        spec.workers
    );
    let report = run_sweep(&spec, &cancel, &mut progress_line("sweep"));
    print!("{}", report.render_text());
    common.write_report(&report)?;

    let bench = flexran_campaign::sweep::sweep_json(&report, &spec);
    let path = common.out.join("BENCH_scale.json");
    let json = serde_json::to_string_pretty(&bench).map_err(|e| format!("serialize sweep: {e}"))?;
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("sweep distributions: {}", path.display());
    Ok(if report.pass() { 0 } else { 1 })
}

fn main() {
    alloc_probe::register(counting_alloc::thread_allocations);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        Some((cmd, rest)) if cmd == "chaos" => run_chaos(rest),
        Some((cmd, rest)) if cmd == "sweep" => run_sweep_cmd(rest),
        Some((cmd, _)) if cmd == "--help" || cmd == "-h" || cmd == "help" => {
            println!("{USAGE}");
            Ok(0)
        }
        Some((cmd, _)) => Err(format!("unknown subcommand '{cmd}'")),
        None => Err("missing subcommand".to_string()),
    }
    .unwrap_or_else(|err| {
        eprintln!("error: {err}\n\n{USAGE}");
        2
    });
    std::process::exit(code);
}
