// Fixture: the annotation suppresses D2 on the next line.
pub fn scratch() {
    // Never iterated, only membership-tested. lint:allow(nondet-iter)
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, 2u32);
}
