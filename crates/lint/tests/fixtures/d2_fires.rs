// Fixture: D2 must fire on hash collections in per-TTI modules.
pub fn scratch() {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, 2u32);
}
