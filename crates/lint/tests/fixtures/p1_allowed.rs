// Fixture: annotations and test code suppress P1.
pub fn checked(xs: &[u32]) -> u32 {
    // Caller guarantees non-empty. lint:allow(panic)
    xs[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = [1u32, 2];
        assert_eq!(xs.first().copied().unwrap(), checked(&xs));
    }
}
