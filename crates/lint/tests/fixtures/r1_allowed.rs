// Fixture: the same mutation is legal inside the designated updater
// module (the integration test passes this file as `updater.rs`), and an
// explicit annotation covers deliberate exceptions elsewhere.
pub fn writer(rib: &mut Rib, enb: EnbId) {
    rib.remove_agent(enb);
}

pub fn annotated(rib: &mut Rib, enb: EnbId) {
    // Fixture of the explicit escape hatch. lint:allow(rib-write)
    rib.remove_agent(enb);
}
