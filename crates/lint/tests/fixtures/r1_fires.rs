// Fixture: R1 must fire when a non-updater controller module names a
// RIB mutation method.
pub fn rogue(rib: &mut Rib, enb: EnbId) {
    rib.remove_agent(enb);
}
