// Fixture: D1 must fire on wall-clock reads in deterministic code.
pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}
