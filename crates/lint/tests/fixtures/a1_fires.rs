// Fixture: A1 must fire on allocation inside a `*_into` hot path.
pub fn encode_into(out: &mut Vec<u8>, n: u32) {
    let s = format!("{n}");
    out.extend_from_slice(s.as_bytes());
}
