// Fixture: a justified annotation suppresses D1.
pub fn deadline() -> std::time::Instant {
    // Redial backoff is real-time by nature. lint:allow(wall-clock)
    std::time::Instant::now()
}
