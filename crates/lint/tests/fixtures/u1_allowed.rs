// SAFETY: caller guarantees `p` is valid, aligned and readable.
pub unsafe fn raw_read(p: *const u32) -> u32 {
    // SAFETY: as documented on the function.
    unsafe { *p }
}
