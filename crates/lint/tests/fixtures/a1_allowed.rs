// Fixture: A1 is scoped to `*_into` bodies and honours the annotation.
pub fn encode_into(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_be_bytes());
}

pub fn encode(n: u32) -> Vec<u8> {
    // Not a `*_into` function: allocating is fine here.
    let mut out = Vec::new();
    out.extend_from_slice(&n.to_be_bytes());
    out
}

pub fn error_path_into(out: &mut String, n: u32) {
    // Cold path, runs once per failure. lint:allow(hot-alloc)
    out.push_str(&format!("{n}"));
}
