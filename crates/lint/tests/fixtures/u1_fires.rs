// Fixture: U1 must fire on `unsafe` without a SAFETY comment.
pub unsafe fn raw_read(p: *const u32) -> u32 {
    unsafe { *p }
}
