// Fixture: P1 must fire on unwrap and slice indexing in runtime code.
pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    xs[0] + *head
}
