//! End-to-end workspace scans against synthetic mini-workspaces: the
//! cache-hit path, baseline determinism, and — most importantly — proof
//! that the A2 reachability engine is *live*: toggling the annotations
//! that define roots and cut edges flips the verdict.

use std::fs;
use std::path::{Path, PathBuf};

use flexran_lint::baseline::Baseline;
use flexran_lint::scan_workspace;

/// A throwaway workspace under the system temp dir. Unique per test so
/// parallel tests never share a cache file.
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(name: &str) -> MiniWorkspace {
        let root =
            std::env::temp_dir().join(format!("flexran-lint-it-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp workspace");
        MiniWorkspace { root }
    }

    /// Write `crates/<krate>/src/<file>` (and a stub Cargo.toml so the
    /// scanner picks the crate up).
    fn write(&self, krate: &str, file: &str, src: &str) {
        let dir = self.root.join("crates").join(krate);
        fs::create_dir_all(dir.join("src")).expect("create crate dirs");
        fs::write(
            dir.join("Cargo.toml"),
            format!("[package]\nname = \"{krate}\"\n"),
        )
        .expect("write Cargo.toml");
        fs::write(dir.join("src").join(file), src).expect("write source");
    }

    fn root(&self) -> &Path {
        &self.root
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Lint ids of every diagnostic a scan produces, with lines.
fn lint_ids(ws: &MiniWorkspace) -> Vec<(String, u32)> {
    scan_workspace(ws.root(), true)
        .expect("scan")
        .diags
        .into_iter()
        .map(|d| (d.lint.id().to_string(), d.line))
        .collect()
}

/// A body whose allocation is one call away from the root: the root
/// itself is clean, so only *transitive* analysis can flag it.
const TRANSITIVE_ALLOC: &str = "pub fn hot_path(x: u32) -> u32 {\n    helper(x)\n}\n\nfn helper(x: u32) -> u32 {\n    let s = format!(\"{x}\");\n    s.len() as u32\n}\n";

#[test]
fn a2_no_alloc_marker_is_live() {
    // With the `lint:no-alloc` marker the root's cone is checked and the
    // transitive allocation fires...
    let ws = MiniWorkspace::new("a2-marker");
    ws.write(
        "stack",
        "hot.rs",
        &format!("// lint:no-alloc\n{TRANSITIVE_ALLOC}"),
    );
    let diags = lint_ids(&ws);
    assert!(
        diags.iter().any(|(id, _)| id == "A2"),
        "marked root must surface the transitive allocation, got {diags:?}"
    );

    // ...and deleting the annotation removes the root: the engine is
    // driven by the annotations, not firing vacuously on every fn.
    let ws = MiniWorkspace::new("a2-marker-deleted");
    ws.write("stack", "hot.rs", TRANSITIVE_ALLOC);
    let diags = lint_ids(&ws);
    assert!(
        diags.iter().all(|(id, _)| id != "A2"),
        "unmarked fn is not an A2 root, got {diags:?}"
    );
}

#[test]
fn a2_allow_deletion_makes_the_lint_fire() {
    // An `*_into` fn is a root by naming convention; the justified
    // edge-cut keeps it clean...
    let ws = MiniWorkspace::new("a2-allow");
    ws.write(
        "stack",
        "codec.rs",
        "pub fn encode_into(x: u32) -> u32 {\n    // lint:allow(alloc-reach) cold path, test fixture\n    helper(x)\n}\n\nfn helper(x: u32) -> u32 {\n    let s = format!(\"{x}\");\n    s.len() as u32\n}\n",
    );
    let diags = lint_ids(&ws);
    assert!(
        diags.iter().all(|(id, _)| id != "A2"),
        "allow on the call edge must cut the cone, got {diags:?}"
    );

    // ...and deleting the allow makes A2 fire on the same code.
    let ws = MiniWorkspace::new("a2-allow-deleted");
    ws.write(
        "stack",
        "codec.rs",
        "pub fn encode_into(x: u32) -> u32 {\n    helper(x)\n}\n\nfn helper(x: u32) -> u32 {\n    let s = format!(\"{x}\");\n    s.len() as u32\n}\n",
    );
    let diags = lint_ids(&ws);
    assert!(
        diags.iter().any(|(id, _)| id == "A2"),
        "without the allow the transitive allocation must fire, got {diags:?}"
    );
}

#[test]
fn warm_scan_serves_every_file_from_the_cache() {
    let ws = MiniWorkspace::new("cache");
    ws.write(
        "proto",
        "a.rs",
        "pub fn ok(x: u32) -> u32 {\n    x + 1\n}\n",
    );
    ws.write(
        "proto",
        "b.rs",
        "pub fn also_ok(x: u32) -> u32 {\n    x * 2\n}\n",
    );

    let cold = scan_workspace(ws.root(), false).expect("cold scan");
    assert_eq!(cold.files, 2);
    assert_eq!(cold.cache_hits, 0, "nothing cached on the first scan");

    let warm = scan_workspace(ws.root(), false).expect("warm scan");
    assert_eq!(warm.files, 2);
    assert_eq!(
        warm.cache_hits, 2,
        "unchanged files must be served from the cache"
    );
    assert_eq!(
        format!("{:?}", cold.diags),
        format!("{:?}", warm.diags),
        "cached and fresh scans agree"
    );

    // Editing one file invalidates exactly that entry.
    ws.write(
        "proto",
        "b.rs",
        "pub fn also_ok(x: u32) -> u32 {\n    x * 3\n}\n",
    );
    let edited = scan_workspace(ws.root(), false).expect("post-edit scan");
    assert_eq!(edited.cache_hits, 1, "only the untouched file is a hit");
}

#[test]
fn baseline_regeneration_is_deterministic() {
    let ws = MiniWorkspace::new("baseline-det");
    // Two files with violations, written in non-sorted order.
    ws.write(
        "proto",
        "z.rs",
        "pub fn run(v: &[u32]) -> u32 {\n    v[0]\n}\n",
    );
    ws.write(
        "proto",
        "a.rs",
        "pub fn run2(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    );
    let one = Baseline::from_diagnostics(&scan_workspace(ws.root(), true).expect("scan").diags)
        .serialize();
    let two = Baseline::from_diagnostics(&scan_workspace(ws.root(), true).expect("scan").diags)
        .serialize();
    assert_eq!(one, two, "refreezing must be byte-identical");
    assert!(one.contains("a.rs"), "violations present: {one}");
    assert!(one.contains("z.rs"), "violations present: {one}");
}
