//! Fixture tests: every lint id fires on its positive fixture with the
//! exact expected diagnostics, and is suppressed by its allow / exempt /
//! baseline mechanism on the negative one.

use flexran_lint::baseline::Baseline;
use flexran_lint::lints::{analyze_source, LintId};

fn fixture(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::read_to_string(format!("{path}/{name}")).expect("fixture exists")
}

/// `(lint id, line)` pairs for a fixture analyzed as crate `krate`,
/// reported under `file`.
fn diags(krate: &str, file: &str, name: &str) -> Vec<(&'static str, u32)> {
    analyze_source(krate, file, &fixture(name))
        .into_iter()
        .map(|d| (d.lint.id(), d.line))
        .collect()
}

#[test]
fn d1_fires_on_wall_clock() {
    assert_eq!(
        diags("sim", "crates/sim/src/x.rs", "d1_fires.rs"),
        vec![("D1", 3)]
    );
}

#[test]
fn d1_suppressed_by_allow() {
    assert_eq!(diags("sim", "crates/sim/src/x.rs", "d1_allowed.rs"), vec![]);
}

#[test]
fn d2_fires_on_hash_collections() {
    assert_eq!(
        diags("stack", "crates/stack/src/x.rs", "d2_fires.rs"),
        vec![("D2", 3)]
    );
}

#[test]
fn d2_suppressed_by_allow() {
    assert_eq!(
        diags("stack", "crates/stack/src/x.rs", "d2_allowed.rs"),
        vec![]
    );
}

#[test]
fn p1_fires_on_unwrap_and_indexing() {
    assert_eq!(
        diags("proto", "crates/proto/src/x.rs", "p1_fires.rs"),
        vec![("P1", 3), ("P1", 4)]
    );
}

#[test]
fn p1_suppressed_by_allow_and_test_code() {
    assert_eq!(
        diags("proto", "crates/proto/src/x.rs", "p1_allowed.rs"),
        vec![]
    );
}

#[test]
fn p1_inactive_outside_control_plane_crates() {
    // The same source in a crate without P1 produces nothing.
    assert_eq!(
        diags("stack", "crates/stack/src/x.rs", "p1_fires.rs"),
        vec![]
    );
}

#[test]
fn r1_fires_outside_the_updater() {
    assert_eq!(
        diags(
            "controller",
            "crates/controller/src/master.rs",
            "r1_fires.rs"
        ),
        vec![("R1", 4)]
    );
}

#[test]
fn r1_exempts_updater_and_honours_allow() {
    // Same mutation methods, analyzed as the designated updater module.
    assert_eq!(
        diags(
            "controller",
            "crates/controller/src/updater.rs",
            "r1_allowed.rs"
        ),
        vec![]
    );
    // And in a non-exempt module, only the annotated call is suppressed.
    assert_eq!(
        diags(
            "controller",
            "crates/controller/src/master.rs",
            "r1_allowed.rs"
        ),
        vec![("R1", 5)]
    );
}

#[test]
fn a1_fires_inside_into_bodies() {
    assert_eq!(
        diags("proto", "crates/proto/src/x.rs", "a1_fires.rs"),
        vec![("A1", 3)]
    );
}

#[test]
fn a1_scoped_to_into_bodies_and_allows() {
    assert_eq!(
        diags("proto", "crates/proto/src/x.rs", "a1_allowed.rs"),
        vec![]
    );
}

#[test]
fn u1_fires_without_safety_comment() {
    assert_eq!(
        diags("phy", "crates/phy/src/x.rs", "u1_fires.rs"),
        vec![("U1", 2), ("U1", 3)]
    );
}

#[test]
fn u1_satisfied_by_safety_comments() {
    assert_eq!(diags("phy", "crates/phy/src/x.rs", "u1_allowed.rs"), vec![]);
}

#[test]
fn diagnostics_carry_file_and_message() {
    let d = analyze_source("sim", "crates/sim/src/x.rs", &fixture("d1_fires.rs"));
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].file, "crates/sim/src/x.rs");
    assert!(d[0].message.contains("Instant::now"));
    assert!(d[0].message.contains("lint:allow(wall-clock)"));
}

#[test]
fn baseline_suppresses_frozen_violations_but_not_new_ones() {
    let old = analyze_source("stack", "crates/stack/src/x.rs", &fixture("d2_fires.rs"));
    assert_eq!(old.len(), 1);
    let baseline = Baseline::from_diagnostics(&old);

    // The frozen violation gates clean.
    let gated = baseline.gate(&old);
    assert!(gated.new.is_empty());
    assert_eq!(gated.baselined.len(), 1);

    // Seeding a second HashMap into the same file trips the count.
    let grown = format!(
        "{}\npub fn more() {{ let _ = std::collections::HashMap::<u32, u32>::new(); }}\n",
        fixture("d2_fires.rs")
    );
    let now = analyze_source("stack", "crates/stack/src/x.rs", &grown);
    assert_eq!(now.len(), 2);
    let gated = baseline.gate(&now);
    assert_eq!(gated.new.len(), 1, "the new violation is not absorbed");
    assert_eq!(gated.baselined.len(), 1);

    // Fixing the original site makes the entry stale, not a failure.
    let gated = baseline.gate(&[]);
    assert!(gated.new.is_empty());
    assert_eq!(gated.stale.len(), 1);
    assert_eq!(gated.stale[0].1, LintId::D2);
}
