//! The reachability engine: A2, P2 and S1 over the workspace call graph.
//!
//! * **A2 `alloc-reach`** — from every no-alloc root (`*_into` name or
//!   `// lint:no-alloc` marker), walk the conservative graph; any
//!   allocation site in a reachable callee fires, and any call that
//!   resolves to nothing fires too ("I cannot prove this alloc-free")
//!   unless the call site carries `// lint:alloc-free-callee`. The
//!   root's *own* body is A1's per-file business — A2 reports only what
//!   per-file analysis cannot see.
//! * **P2 `panic-reach`** — roots are every runtime (non-test) function
//!   of the control-plane crates (`proto`, `agent`, `controller`),
//!   where P1 already enforces panic-freedom per file. P2 extends the
//!   guarantee *across the crate boundary*: explicit panics
//!   (`unwrap`/`expect`/`panic!`-family) in any other crate's function
//!   reachable from those roots fire. Indexing sites are left to P1:
//!   bounds-proved `s[i]` is pervasive and correct in the DSP math the
//!   control plane calls into, and flagging it transitively would bury
//!   the real signal (torn-down control planes come from `unwrap`, not
//!   from proven bounds).
//! * **S1 `phase-discipline`** — roots are `run_rib_slot` and anything
//!   marked `// lint:parallel-phase`; targets are functions marked
//!   `// lint:serial-only` (`begin_cycle`, `finish_cycle`, session
//!   re-homing). Any call edge from the parallel-phase cone into a
//!   serial-only function fires unless the site carries
//!   `lint:allow(phase-discipline)`. This turns PR 6's cfg-gated
//!   runtime phase guard into a static gate.
//!
//! Every diagnostic carries its witness path (`root → … → callee`) so a
//! finding is actionable without re-running the analysis by hand.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, Resolution};
use crate::lints::{Diagnostic, LintId};

/// Crates whose runtime functions are P2 roots (the crates P1 already
/// covers per-file; keep the two in sync with `lints_for_crate`).
/// `campaign` is deliberately P1-only: per-file panic-freedom keeps the
/// orchestrator itself from tearing down a soak, but its call graph
/// reaches straight into the chaos harness, whose assertion-style
/// `expect`s are the point — transitive panic-reachability would flag
/// the entire test battery.
pub const P2_ROOT_CRATES: &[&str] = &["proto", "agent", "controller"];

/// Walk the graph from `roots`, following workspace edges for which
/// `edge_ok(caller, call, target)` holds. Returns the parent map:
/// `node -> (caller, call line)` for every node reached *through an
/// edge* (roots are reachable but have no parent).
fn bfs(
    graph: &CallGraph,
    roots: &[usize],
    mut edge_ok: impl FnMut(usize, &crate::symbols::Call, usize) -> bool,
) -> (Vec<usize>, BTreeMap<usize, (usize, u32)>) {
    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut queue: VecDeque<usize> = roots.iter().copied().collect();
    let mut order = Vec::new();
    let mut parent = BTreeMap::new();
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for (call, res) in &graph.calls[n] {
            let Resolution::Workspace(targets) = res else {
                continue;
            };
            for &t in targets {
                if seen.contains(&t) || !edge_ok(n, call, t) {
                    continue;
                }
                seen.insert(t);
                parent.insert(t, (n, call.line));
                queue.push_back(t);
            }
        }
    }
    (order, parent)
}

/// Render the witness path `root → … → node` using graph labels,
/// elided in the middle if longer than five hops.
fn witness(graph: &CallGraph, parent: &BTreeMap<usize, (usize, u32)>, node: usize) -> String {
    let mut chain = vec![node];
    let mut cur = node;
    while let Some(&(p, _)) = parent.get(&cur) {
        chain.push(p);
        cur = p;
        if chain.len() > 32 {
            break; // cycle safety; parent maps are acyclic by construction
        }
    }
    chain.reverse();
    let labels: Vec<String> = chain.iter().map(|&i| graph.label(i)).collect();
    if labels.len() <= 5 {
        labels.join(" -> ")
    } else {
        format!(
            "{} -> {} -> ... -> {}",
            labels[0],
            labels[1],
            labels[labels.len() - 1]
        )
    }
}

/// Run all three interprocedural lints. Diagnostics come back
/// deduplicated by `(file, line, lint)` and unsorted — the caller merges
/// them into the per-file stream and sorts once.
pub fn analyze(graph: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen: BTreeSet<(String, u32, LintId)> = BTreeSet::new();
    let mut emit = |lint: LintId, file: &str, line: u32, message: String| {
        if seen.insert((file.to_string(), line, lint)) {
            diags.push(Diagnostic {
                lint,
                file: file.to_string(),
                line,
                message,
            });
        }
    };

    a2(graph, &mut emit);
    p2(graph, &mut emit);
    s1(graph, &mut emit);
    diags
}

fn a2(graph: &CallGraph, emit: &mut impl FnMut(LintId, &str, u32, String)) {
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| graph.fns[i].sym.no_alloc_root && !graph.fns[i].sym.is_test)
        .collect();
    for &root in &roots {
        // `lint:alloc-free-callee` cuts the edge (callee audited
        // alloc-free); `lint:allow(alloc-reach)` on a call site cuts it
        // too (justified cold branch — rare control message, crash
        // recovery — exempt from the steady-state no-alloc contract).
        let (order, parent) = bfs(graph, &[root], |_, call, _| {
            !call.assume_alloc_free && !call.allow_alloc_reach
        });
        for &n in &order {
            let f = &graph.fns[n];
            // Direct allocs in the root itself (and in any fn that is a
            // root in its own right) are A1's per-file findings.
            if !f.sym.no_alloc_root {
                for site in &f.sym.allocs {
                    emit(
                        LintId::A2,
                        f.file,
                        site.line,
                        format!(
                            "allocation (`{}`) reachable from no-alloc root `{}` \
                             [{}]; hoist it out of the hot path or annotate the call \
                             chain `// lint:allow(alloc-reach)` with a justification",
                            site.what,
                            graph.label(root),
                            witness(graph, &parent, n),
                        ),
                    );
                }
            }
            for (call, res) in &graph.calls[n] {
                if *res == Resolution::Unknown && !call.assume_alloc_free && !call.allow_alloc_reach
                {
                    emit(
                        LintId::A2,
                        f.file,
                        call.line,
                        format!(
                            "cannot prove `{}{}` alloc-free on the no-alloc path from `{}` \
                             [{}]; audit the callee and annotate \
                             `// lint:alloc-free-callee`, or allow with justification",
                            if call.method { "." } else { "" },
                            call.name,
                            graph.label(root),
                            witness(graph, &parent, n),
                        ),
                    );
                }
            }
        }
    }
}

fn p2(graph: &CallGraph, emit: &mut impl FnMut(LintId, &str, u32, String)) {
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| {
            let f = &graph.fns[i];
            P2_ROOT_CRATES.contains(&f.krate) && !f.sym.is_test
        })
        .collect();
    let (order, parent) = bfs(graph, &roots, |_, _, _| true);
    for &n in &order {
        let f = &graph.fns[n];
        if P2_ROOT_CRATES.contains(&f.krate) {
            continue; // P1 covers these per-file (with its own baseline)
        }
        for site in &f.sym.panics {
            if site.what == "indexing" {
                continue; // left to per-file P1 — see module docs
            }
            emit(
                LintId::P2,
                f.file,
                site.line,
                format!(
                    "`{}` reachable from the control plane [{}]; propagate \
                     `flexran_types::Error` instead of panicking under the master",
                    site.what,
                    witness(graph, &parent, n),
                ),
            );
        }
    }
}

fn s1(graph: &CallGraph, emit: &mut impl FnMut(LintId, &str, u32, String)) {
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| {
            let f = &graph.fns[i];
            (f.sym.parallel_root || f.sym.name == "run_rib_slot") && !f.sym.is_test
        })
        .collect();
    // Don't traverse *into* serial-only functions: the violation is the
    // edge; flagging the serial body's own callees would be noise.
    let (order, parent) = bfs(graph, &roots, |_, _, t| !graph.fns[t].sym.serial_only);
    for &n in &order {
        let f = &graph.fns[n];
        for (call, res) in &graph.calls[n] {
            let Resolution::Workspace(targets) = res else {
                continue;
            };
            if call.allow_phase {
                continue;
            }
            for &t in targets {
                if graph.fns[t].sym.serial_only {
                    emit(
                        LintId::S1,
                        f.file,
                        call.line,
                        format!(
                            "serial-phase-only `{}` called from the parallel phase \
                             [{} -> {}]; shard slots must not run barrier-phase code",
                            graph.label(t),
                            witness(graph, &parent, n),
                            graph.label(t),
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::symbols::{summarize, FileSummary};

    fn run(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
        let summaries: Vec<FileSummary> =
            files.iter().map(|(k, f, s)| summarize(k, f, s)).collect();
        let graph = CallGraph::build(&summaries, BTreeMap::new());
        analyze(&graph)
    }

    fn ids(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
        diags.iter().map(|d| (d.lint.id(), d.line)).collect()
    }

    #[test]
    fn a2_fires_one_call_deep_and_reports_the_witness() {
        let src = "fn encode_into(out: &mut [u8]) { helper(out); }
fn helper(out: &mut [u8]) { let s = x.to_vec(); }";
        let diags = run(&[("stack", "crates/stack/src/x.rs", src)]);
        assert_eq!(ids(&diags), vec![("A2", 2)]);
        assert!(
            diags[0].message.contains("encode_into -> helper"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn a2_respects_alloc_free_callee_and_allow() {
        let src = "fn encode_into(out: &mut [u8]) {
            audited(out); // lint:alloc-free-callee verified by allocgate
        }";
        let diags = run(&[("stack", "crates/stack/src/x.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn a2_flags_unresolved_calls_conservatively() {
        let src = "fn encode_into(out: &mut [u8]) { out.mystery(); }";
        let diags = run(&[("stack", "crates/stack/src/x.rs", src)]);
        assert_eq!(ids(&diags), vec![("A2", 1)]);
        assert!(diags[0].message.contains("mystery"));
    }

    #[test]
    fn a2_negative_control_clean_transitive_path() {
        let src = "fn encode_into(out: &mut [u8]) { helper(out); }
fn helper(out: &mut [u8]) { out.len(); }";
        let diags = run(&[("stack", "crates/stack/src/x.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn p2_crosses_the_crate_boundary() {
        let proto = "fn decode(b: &[u8]) { flexran_stack_helper(b); }";
        let stack = "fn flexran_stack_helper(b: &[u8]) { b.first().unwrap(); }";
        let diags = run(&[
            ("proto", "crates/proto/src/x.rs", proto),
            ("stack", "crates/stack/src/y.rs", stack),
        ]);
        assert_eq!(ids(&diags), vec![("P2", 1)]);
        assert_eq!(diags[0].file, "crates/stack/src/y.rs");
        assert!(diags[0].message.contains("decode -> flexran_stack_helper"));
    }

    #[test]
    fn p2_does_not_refire_inside_p1_crates_or_from_tests() {
        // The unwrap in proto itself is P1's per-file finding, and the
        // stack helper is only called from a #[cfg(test)] fn.
        let proto = "fn decode(b: &[u8]) { b.first().unwrap(); }
#[cfg(test)]
mod tests { fn t() { flexran_stack_helper(&[]); } }";
        let stack = "fn flexran_stack_helper(b: &[u8]) { b.first().unwrap(); }";
        let diags = run(&[
            ("proto", "crates/proto/src/x.rs", proto),
            ("stack", "crates/stack/src/y.rs", stack),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn s1_flags_serial_calls_from_the_parallel_cone() {
        let src = "// lint:parallel-phase
fn run_slot() { deep(); }
fn deep() { barrier(); }
// lint:serial-only
fn barrier() {}";
        let diags = run(&[("controller", "crates/controller/src/x.rs", src)]);
        assert_eq!(ids(&diags), vec![("S1", 3)]);
        assert!(diags[0].message.contains("barrier"));
    }

    #[test]
    fn s1_allow_suppresses_and_serial_outside_cone_is_fine() {
        let src = "// lint:parallel-phase
fn run_slot() { barrier(); } // lint:allow(phase-discipline) proven single-shard
// lint:serial-only
fn barrier() {}
fn orchestrator() { barrier(); }";
        let diags = run(&[("controller", "crates/controller/src/x.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn run_rib_slot_is_an_implicit_s1_root() {
        let src = "fn run_rib_slot() { barrier(); }
// lint:serial-only
fn barrier() {}";
        let diags = run(&[("controller", "crates/controller/src/x.rs", src)]);
        assert_eq!(ids(&diags), vec![("S1", 1)]);
    }
}
