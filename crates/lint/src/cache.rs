//! File-hash keyed cache of per-file analysis results.
//!
//! Per-file work (lexing, the token lints, symbol extraction) dominates
//! a lint run; the interprocedural phase consumes only [`FileSummary`]
//! values and is cheap. So the cache stores, per source file keyed by
//! an FNV-1a hash of its *content*, the per-file diagnostics plus the
//! file's symbol summary. On a warm run with no edits every file is a
//! hit and the analyzer never re-lexes anything; the reachability phase
//! is recomputed from summaries every run (it is a whole-workspace
//! fixpoint — caching it per-file would be incorrect).
//!
//! The cache lives at `target/flexran-lint.cache`, a line-oriented text
//! format with an explicit version header. Bump [`CACHE_VERSION`]
//! whenever the lint catalog, the lexer, or the summary shape changes —
//! any mismatch (or any parse hiccup) discards the whole cache, which
//! is always safe: the cache is a pure accelerator, never a source of
//! truth.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lints::{Diagnostic, LintId};
use crate::symbols::{Call, FileSummary, FnSym, Site};

/// Bump on any change to the lexer, the lint catalog, the summary
/// shape, or this file format.
pub const CACHE_VERSION: u32 = 1;

/// Workspace-relative location of the cache file.
pub fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("flexran-lint.cache")
}

/// FNV-1a over the file content (and the crate name, which selects the
/// active lint set for the file).
pub fn content_hash(krate: &str, src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in krate
        .as_bytes()
        .iter()
        .chain([0u8].iter())
        .chain(src.as_bytes())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached per-file result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub hash: u64,
    pub diags: Vec<Diagnostic>,
    pub summary: FileSummary,
}

/// The cache: workspace-relative path → entry.
#[derive(Debug, Default)]
pub struct Cache {
    pub entries: BTreeMap<String, Entry>,
}

impl Cache {
    /// Load from disk; any problem yields an empty cache.
    pub fn load(root: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(cache_path(root)) else {
            return Cache::default();
        };
        parse(&text).unwrap_or_default()
    }

    /// Look up a file by path + content hash.
    pub fn get(&self, file: &str, hash: u64) -> Option<&Entry> {
        self.entries.get(file).filter(|e| e.hash == hash)
    }

    pub fn put(&mut self, file: &str, entry: Entry) {
        self.entries.insert(file.to_string(), entry);
    }

    /// Persist. Failure is non-fatal (e.g. no `target/` yet): the next
    /// run just misses.
    pub fn store(&self, root: &Path) {
        let path = cache_path(root);
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let _ = fs::write(&path, self.serialize());
    }

    pub fn serialize(&self) -> String {
        let mut out = format!("flexran-lint-cache v{CACHE_VERSION}\n");
        for (file, e) in &self.entries {
            out.push_str(&format!(
                "file {:016x} {} {}\n",
                e.hash, e.summary.krate, file
            ));
            for d in &e.diags {
                out.push_str(&format!(
                    "D {} {} {}\n",
                    d.lint.id(),
                    d.line,
                    esc(&d.message)
                ));
            }
            for f in &e.summary.fns {
                let flags = (f.is_test as u8)
                    | (f.no_alloc_root as u8) << 1
                    | (f.serial_only as u8) << 2
                    | (f.parallel_root as u8) << 3;
                out.push_str(&format!(
                    "F {} {} {} {} {}\n",
                    f.line,
                    flags,
                    f.name,
                    f.impl_type.as_deref().unwrap_or("-"),
                    f.trait_name.as_deref().unwrap_or("-"),
                ));
                for c in &f.calls {
                    let cflags = (c.method as u8)
                        | (c.assume_alloc_free as u8) << 1
                        | (c.allow_phase as u8) << 2
                        | (c.allow_alloc_reach as u8) << 3;
                    out.push_str(&format!(
                        "C {} {} {} {}\n",
                        c.line,
                        cflags,
                        c.name,
                        c.qualifier.as_deref().unwrap_or("-"),
                    ));
                }
                for a in &f.allocs {
                    out.push_str(&format!("A {} {}\n", a.line, esc(&a.what)));
                }
                for p in &f.panics {
                    out.push_str(&format!("P {} {}\n", p.line, esc(&p.what)));
                }
            }
        }
        out
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn opt(s: &str) -> Option<String> {
    (s != "-").then(|| s.to_string())
}

fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != format!("flexran-lint-cache v{CACHE_VERSION}") {
        return None;
    }
    let mut cache = Cache::default();
    let mut cur: Option<(String, Entry)> = None;
    let flush = |cur: &mut Option<(String, Entry)>, cache: &mut Cache| {
        if let Some((file, e)) = cur.take() {
            cache.entries.insert(file, e);
        }
    };
    for line in lines {
        let (tag, rest) = line.split_once(' ')?;
        match tag {
            "file" => {
                flush(&mut cur, &mut cache);
                let mut it = rest.splitn(3, ' ');
                let hash = u64::from_str_radix(it.next()?, 16).ok()?;
                let krate = it.next()?.to_string();
                let file = it.next()?.to_string();
                cur = Some((
                    file.clone(),
                    Entry {
                        hash,
                        diags: Vec::new(),
                        summary: FileSummary {
                            krate,
                            file,
                            fns: Vec::new(),
                        },
                    },
                ));
            }
            "D" => {
                let (_, e) = cur.as_mut()?;
                let mut it = rest.splitn(3, ' ');
                let lint = LintId::from_id(it.next()?)?;
                let line_no: u32 = it.next()?.parse().ok()?;
                e.diags.push(Diagnostic {
                    lint,
                    file: e.summary.file.clone(),
                    line: line_no,
                    message: unesc(it.next()?),
                });
            }
            "F" => {
                let (_, e) = cur.as_mut()?;
                let mut it = rest.splitn(5, ' ');
                let line_no: u32 = it.next()?.parse().ok()?;
                let flags: u8 = it.next()?.parse().ok()?;
                let name = it.next()?.to_string();
                let impl_type = opt(it.next()?);
                let trait_name = opt(it.next()?);
                e.summary.fns.push(FnSym {
                    name,
                    impl_type,
                    trait_name,
                    line: line_no,
                    is_test: flags & 1 != 0,
                    no_alloc_root: flags & 2 != 0,
                    serial_only: flags & 4 != 0,
                    parallel_root: flags & 8 != 0,
                    calls: Vec::new(),
                    allocs: Vec::new(),
                    panics: Vec::new(),
                });
            }
            "C" => {
                let (_, e) = cur.as_mut()?;
                let f = e.summary.fns.last_mut()?;
                let mut it = rest.splitn(4, ' ');
                let line_no: u32 = it.next()?.parse().ok()?;
                let flags: u8 = it.next()?.parse().ok()?;
                f.calls.push(Call {
                    name: it.next()?.to_string(),
                    line: line_no,
                    method: flags & 1 != 0,
                    qualifier: opt(it.next()?),
                    assume_alloc_free: flags & 2 != 0,
                    allow_phase: flags & 4 != 0,
                    allow_alloc_reach: flags & 8 != 0,
                });
            }
            "A" | "P" => {
                let (_, e) = cur.as_mut()?;
                let f = e.summary.fns.last_mut()?;
                let (line_s, what) = rest.split_once(' ')?;
                let site = Site {
                    what: unesc(what),
                    line: line_s.parse().ok()?,
                };
                if tag == "A" {
                    f.allocs.push(site);
                } else {
                    f.panics.push(site);
                }
            }
            _ => return None,
        }
    }
    flush(&mut cur, &mut cache);
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::summarize;

    #[test]
    fn roundtrips_diags_and_summaries() {
        let src = "fn encode_into(out: &mut [u8]) {
            helper(); // lint:alloc-free-callee audited
            let s = x.to_vec();
            x.unwrap();
        }
        // lint:serial-only
        fn barrier() { WireWriter::seal(w); }";
        let summary = summarize("proto", "crates/proto/src/x.rs", src);
        let diags = vec![Diagnostic {
            lint: LintId::P1,
            file: "crates/proto/src/x.rs".into(),
            line: 4,
            message: "`.unwrap()` on a runtime path; use\nnewline and \\ backslash".into(),
        }];
        let mut cache = Cache::default();
        cache.put(
            "crates/proto/src/x.rs",
            Entry {
                hash: content_hash("proto", src),
                diags: diags.clone(),
                summary: summary.clone(),
            },
        );
        let reparsed = parse(&cache.serialize()).expect("parses");
        let e = reparsed
            .get("crates/proto/src/x.rs", content_hash("proto", src))
            .expect("hit");
        assert_eq!(e.diags, diags);
        assert_eq!(e.summary, summary);
    }

    #[test]
    fn version_or_content_mismatch_misses() {
        let mut cache = Cache::default();
        cache.put(
            "crates/proto/src/x.rs",
            Entry {
                hash: content_hash("proto", "fn f() {}"),
                diags: Vec::new(),
                summary: summarize("proto", "crates/proto/src/x.rs", "fn f() {}"),
            },
        );
        assert!(cache
            .get("crates/proto/src/x.rs", content_hash("proto", "fn f() { }"))
            .is_none());
        let stale = cache.serialize().replace(
            &format!("cache v{CACHE_VERSION}"),
            &format!("cache v{}", CACHE_VERSION + 1),
        );
        assert!(parse(&stale).is_none());
    }

    #[test]
    fn garbage_is_rejected_not_trusted() {
        assert!(parse("not a cache").is_none());
        assert!(parse(&format!(
            "flexran-lint-cache v{CACHE_VERSION}\nbogus line here"
        ))
        .is_none());
    }
}
