//! The checked-in violation baseline (`lint-baseline.toml`).
//!
//! Pre-existing violations are frozen as per-`(file, lint)` *counts*
//! rather than line numbers, so unrelated edits that shift lines do not
//! invalidate the baseline, while any *new* violation in a file pushes
//! its count past the frozen allowance and fails CI. Fixing sites makes
//! the baseline stale (actual < allowed); the tool reports that as a
//! warning nudging a `--update-baseline` ratchet, never as a failure.
//!
//! The format is a plain TOML array-of-tables subset, parsed by hand —
//! this tool deliberately carries zero dependencies:
//!
//! ```toml
//! [[entry]]
//! file = "crates/proto/src/wire.rs"
//! lint = "P1"
//! count = 12
//! ```

use std::collections::BTreeMap;

use crate::lints::{Diagnostic, LintId};

/// Frozen allowances, keyed by `(file, lint)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<(String, LintId), u32>,
}

/// Result of gating diagnostics against a baseline.
#[derive(Debug, Default)]
pub struct Gated {
    /// Violations beyond the frozen allowance — these fail CI. Within a
    /// `(file, lint)` group the *last* sites in line order are reported
    /// as new (the frozen allowance covers the first `allowed` ones; any
    /// edit that adds a site anywhere in the file trips the count).
    pub new: Vec<Diagnostic>,
    /// Violations covered by the baseline.
    pub baselined: Vec<Diagnostic>,
    /// `(file, lint, allowed, actual)` where actual < allowed.
    pub stale: Vec<(String, LintId, u32, u32)>,
}

impl Baseline {
    /// Parse the baseline file contents. Unknown keys are ignored;
    /// malformed entries are an error (a corrupt baseline must not
    /// silently gate nothing).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut cur: Option<(Option<String>, Option<LintId>, Option<u32>)> = None;
        let mut flush = |cur: &mut Option<(Option<String>, Option<LintId>, Option<u32>)>|
         -> Result<(), String> {
            if let Some((file, lint, count)) = cur.take() {
                match (file, lint, count) {
                    (Some(f), Some(l), Some(c)) => {
                        entries.insert((f, l), c);
                        Ok(())
                    }
                    parts => Err(format!("incomplete [[entry]]: {parts:?}")),
                }
            } else {
                Ok(())
            }
        };
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut cur)?;
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", ln + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(slot) = cur.as_mut() else {
                return Err(format!("line {}: `{key}` outside [[entry]]", ln + 1));
            };
            match key {
                "file" => slot.0 = Some(unquote(value)?),
                "lint" => {
                    let id = unquote(value)?;
                    slot.1 = Some(
                        LintId::from_id(&id)
                            .ok_or_else(|| format!("line {}: unknown lint `{id}`", ln + 1))?,
                    );
                }
                "count" => {
                    slot.2 = Some(
                        value
                            .parse()
                            .map_err(|_| format!("line {}: bad count `{value}`", ln + 1))?,
                    );
                }
                _ => {}
            }
        }
        flush(&mut cur)?;
        Ok(Baseline { entries })
    }

    /// Serialize in the canonical (sorted, commented) form.
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# flexran-lint baseline — pre-existing violations frozen per (file, lint).\n\
             # New violations fail CI; burn entries down and regenerate with\n\
             # `cargo run -p flexran-lint -- --update-baseline`.\n",
        );
        for ((file, lint), count) in &self.entries {
            out.push_str("\n[[entry]]\n");
            out.push_str(&format!("file = \"{file}\"\n"));
            out.push_str(&format!("lint = \"{}\"\n", lint.id()));
            out.push_str(&format!("count = {count}\n"));
        }
        out
    }

    /// Build a baseline that freezes exactly `diags`.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        let mut entries: BTreeMap<(String, LintId), u32> = BTreeMap::new();
        for d in diags {
            *entries.entry((d.file.clone(), d.lint)).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Split `diags` into baselined and new, and detect stale entries.
    pub fn gate(&self, diags: &[Diagnostic]) -> Gated {
        let mut groups: BTreeMap<(String, LintId), Vec<Diagnostic>> = BTreeMap::new();
        for d in diags {
            groups
                .entry((d.file.clone(), d.lint))
                .or_default()
                .push(d.clone());
        }
        let mut gated = Gated::default();
        for (key, group) in &groups {
            let allowed = self.entries.get(key).copied().unwrap_or(0) as usize;
            for (i, d) in group.iter().enumerate() {
                if i < allowed {
                    gated.baselined.push(d.clone());
                } else {
                    gated.new.push(d.clone());
                }
            }
        }
        for ((file, lint), allowed) in &self.entries {
            let actual = groups
                .get(&(file.clone(), *lint))
                .map(|g| g.len() as u32)
                .unwrap_or(0);
            if actual < *allowed {
                gated.stale.push((file.clone(), *lint, *allowed, actual));
            }
        }
        gated
    }
}

fn unquote(v: &str) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("expected quoted string, got `{v}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, lint: LintId, line: u32) -> Diagnostic {
        Diagnostic {
            lint,
            file: file.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn parse_serialize_roundtrip() {
        let b = Baseline::from_diagnostics(&[
            diag("a.rs", LintId::P1, 1),
            diag("a.rs", LintId::P1, 2),
            diag("b.rs", LintId::D2, 9),
        ]);
        let text = b.serialize();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.entries[&("a.rs".into(), LintId::P1)], 2);
    }

    #[test]
    fn gate_splits_new_from_baselined() {
        let b = Baseline::from_diagnostics(&[diag("a.rs", LintId::P1, 1)]);
        // Same file gains a second P1: one baselined, one new.
        let gated = b.gate(&[diag("a.rs", LintId::P1, 1), diag("a.rs", LintId::P1, 5)]);
        assert_eq!(gated.baselined.len(), 1);
        assert_eq!(gated.new.len(), 1);
        assert_eq!(gated.new[0].line, 5);
        assert!(gated.stale.is_empty());
    }

    #[test]
    fn gate_detects_stale_entries() {
        let b =
            Baseline::from_diagnostics(&[diag("a.rs", LintId::P1, 1), diag("a.rs", LintId::P1, 2)]);
        let gated = b.gate(&[diag("a.rs", LintId::P1, 1)]);
        assert!(gated.new.is_empty());
        assert_eq!(gated.stale, vec![("a.rs".into(), LintId::P1, 2, 1)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[[entry]]\nfile = \"x\"\n").is_err());
        assert!(Baseline::parse("count = 3\n").is_err());
        assert!(Baseline::parse("[[entry]]\nfile = \"x\"\nlint = \"Z9\"\ncount = 1\n").is_err());
        assert!(Baseline::parse("").unwrap().entries.is_empty());
    }
}
