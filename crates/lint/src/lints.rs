//! The project lint catalog and the per-file analyzer.
//!
//! Each lint encodes an invariant the platform's correctness argument
//! rests on (see DESIGN.md §"Static analysis & invariants" for the full
//! catalog with rationale):
//!
//! * **D1 `wall-clock`** — no wall-clock / ambient-nondeterminism calls
//!   (`Instant::now`, `SystemTime`, `thread_rng`, `env::var`) in
//!   simulation/TTI code. Virtual time must be the only clock.
//! * **D2 `nondet-iter`** — no `HashMap`/`HashSet` in per-TTI modules;
//!   their iteration order is seeded per-process and breaks the
//!   serial ≡ parallel bit-identity contract. Use `BTreeMap`/`BTreeSet`.
//! * **P1 `panic`** — no `unwrap`/`expect`/`panic!`-family/indexing in
//!   the runtime paths of `proto`, `agent`, `controller`: a malformed
//!   frame or a lost session must surface as `flexran_types::Error`,
//!   never tear down the control plane.
//! * **R1 `rib-write`** — only `controller::rib`, the designated
//!   single writer `controller::updater`, and the shard container
//!   `controller::shard` (which owns one updater per shard and the
//!   read-only merge) may name RIB mutation methods (paper Fig. 5
//!   single-writer/multi-reader discipline, applied per shard: no
//!   module outside the shard's own updater may mutate its RIB).
//! * **A1 `hot-alloc`** — no allocating calls inside `*_into` function
//!   bodies, or inside any function annotated `// lint:no-alloc` on the
//!   lines directly above its `fn` (the zero-alloc hot-path contract
//!   measured by `experiments scale` and gated by `experiments
//!   allocgate`). The annotation is how per-TTI paths whose names don't
//!   end in `_into` — shard RIB-slot bodies, the finish-cycle merge,
//!   interference coupling — opt into coverage.
//! * **U1 `unsafe`** — every `unsafe` token needs a `// SAFETY:` comment
//!   within the three preceding lines.
//!
//! Suppression: `// lint:allow(<key>[, <key>...])` on the same line or
//! the line directly above, with a justification in the trailing text.
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt
//! from every lint except U1 — tests may panic, but unsafe stays
//! audited everywhere.

use std::collections::BTreeSet;

use crate::lexer::{lex, Comment, Tok, TokKind};

/// Lint identifiers. `A2`/`P2`/`S1` are the interprocedural lints
/// computed over the workspace call graph (see [`crate::reach`]); the
/// rest are per-file token lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    D1,
    D2,
    P1,
    R1,
    A1,
    U1,
    /// Transitive no-alloc: nothing reachable from a `*_into` /
    /// `lint:no-alloc` root may allocate.
    A2,
    /// Transitive panic-reachability: nothing reachable from the
    /// control-plane runtime crates may panic, even in other crates.
    P2,
    /// Shard/phase discipline: nothing reachable from a parallel-phase
    /// root (`run_rib_slot`) may call a serial-phase-only function.
    S1,
}

impl LintId {
    pub const ALL: [LintId; 9] = [
        LintId::D1,
        LintId::D2,
        LintId::P1,
        LintId::R1,
        LintId::A1,
        LintId::U1,
        LintId::A2,
        LintId::P2,
        LintId::S1,
    ];

    /// Stable id used in diagnostics and the baseline file.
    pub fn id(self) -> &'static str {
        match self {
            LintId::D1 => "D1",
            LintId::D2 => "D2",
            LintId::P1 => "P1",
            LintId::R1 => "R1",
            LintId::A1 => "A1",
            LintId::U1 => "U1",
            LintId::A2 => "A2",
            LintId::P2 => "P2",
            LintId::S1 => "S1",
        }
    }

    /// The key accepted by `// lint:allow(...)`.
    pub fn allow_key(self) -> &'static str {
        match self {
            LintId::D1 => "wall-clock",
            LintId::D2 => "nondet-iter",
            LintId::P1 => "panic",
            LintId::R1 => "rib-write",
            LintId::A1 => "hot-alloc",
            LintId::U1 => "unsafe",
            LintId::A2 => "alloc-reach",
            LintId::P2 => "panic-reach",
            LintId::S1 => "phase-discipline",
        }
    }

    pub fn from_id(s: &str) -> Option<LintId> {
        LintId::ALL.iter().copied().find(|l| l.id() == s)
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub lint: LintId,
    /// Path relative to the workspace root.
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// Severity is uniform today (every lint gates CI through the baseline);
/// the field exists so the JSON output is future-proof.
pub const SEVERITY: &str = "deny";

/// Which lints run for a crate. `krate` is the directory name under
/// `crates/` (`proto`, `controller`, ...).
pub fn lints_for_crate(krate: &str) -> Vec<LintId> {
    let mut out = Vec::new();
    // Determinism + nondeterministic iteration: everything that can sit
    // on a TTI path. `bench` measures wall time by design and `lint` is
    // this tool.
    if !matches!(krate, "bench" | "lint") {
        out.push(LintId::D1);
        out.push(LintId::D2);
    }
    // Panic-freedom on the control-plane runtime paths, plus the
    // campaign orchestrator: a panicking aggregator would take down a
    // multi-hour soak and lose every completed run's record.
    if matches!(krate, "proto" | "agent" | "controller" | "campaign") {
        out.push(LintId::P1);
    }
    // RIB single-writer discipline: the RIB lives in `controller`;
    // `apps` is covered too (belt and braces over the read-only
    // RibView). Other crates have unrelated methods with colliding
    // names (`SimHarness::agent_mut`).
    if matches!(krate, "controller" | "apps") {
        out.push(LintId::R1);
    }
    // Hot-path allocation and the unsafe audit apply everywhere.
    out.push(LintId::A1);
    out.push(LintId::U1);
    out
}

/// Modules inside `controller` allowed to name RIB mutation methods:
/// the RIB itself, the single-writer updater, and the shard container
/// (each shard owns exactly one updater; `merged_rib` adopts cloned
/// subtrees into a fresh, local forest). Everything else — master,
/// northbound, apps — must route writes through a shard's own updater.
fn r1_exempt(krate: &str, rel_path: &str) -> bool {
    krate == "controller"
        && (rel_path.ends_with("rib.rs")
            || rel_path.ends_with("updater.rs")
            || rel_path.ends_with("shard.rs"))
}

/// Analyze one file's source. `file` is the workspace-relative path used
/// in diagnostics; `krate` selects the active lint set.
pub fn analyze_source(krate: &str, file: &str, src: &str) -> Vec<Diagnostic> {
    let active = lints_for_crate(krate);
    let out = lex(src);
    let allows = collect_allows(&out.comments);
    let safety_lines: BTreeSet<u32> = out
        .comments
        .iter()
        .filter(|c| c.text.contains("SAFETY:"))
        .map(|c| c.line)
        .collect();
    let test_spans = find_test_spans(&out.toks);
    let mut into_bodies = find_into_bodies(&out.toks);
    into_bodies.extend(find_marked_bodies(&out.toks, &out.comments));

    let in_test = |line: u32| test_spans.iter().any(|(a, b)| (*a..=*b).contains(&line));
    let allowed = |lint: LintId, line: u32| {
        let key = lint.allow_key();
        allows
            .iter()
            .any(|(l, k)| (*l == line || *l + 1 == line) && k == key)
    };
    let in_into = |ti: usize| into_bodies.iter().any(|(a, b)| (*a..=*b).contains(&ti));

    let mut diags = Vec::new();
    let mut emit = |lint: LintId, line: u32, message: String| {
        if lint != LintId::U1 && in_test(line) {
            return;
        }
        if allowed(lint, line) {
            return;
        }
        diags.push(Diagnostic {
            lint,
            file: file.to_string(),
            line,
            message,
        });
    };

    let toks = &out.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        // P1 (indexing): `expr[...]` can panic. Detected as a `[` that
        // directly follows an expression tail (identifier, `)` or `]`),
        // which skips array literals, types, slice patterns and
        // attributes. Keywords (`let [a, b] = ..`) are excluded.
        if active.contains(&LintId::P1) && t.text == "[" && i > 0 && is_expr_tail(&toks[i - 1]) {
            emit(
                LintId::P1,
                t.line,
                "slice/array indexing can panic on a runtime path; use `.get()` / \
                 `.split_first()` or prove bounds and annotate `// lint:allow(panic)`"
                    .into(),
            );
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let line = t.line;
        match t.text.as_str() {
            // ------------------------- D1: wall clock -------------------
            "Instant" if active.contains(&LintId::D1) && seq(toks, i + 1, &["::", "now"]) => {
                emit(
                    LintId::D1,
                    line,
                    "wall-clock read (`Instant::now`) in deterministic code; \
                     use the sim clock / TTI, or justify with `// lint:allow(wall-clock)`"
                        .into(),
                );
            }
            "SystemTime" if active.contains(&LintId::D1) => {
                emit(
                    LintId::D1,
                    line,
                    "`SystemTime` in deterministic code; use the sim clock / TTI".into(),
                );
            }
            "thread_rng" if active.contains(&LintId::D1) => {
                emit(
                    LintId::D1,
                    line,
                    "`thread_rng` is seeded per-thread; use a seeded RNG".into(),
                );
            }
            "env"
                if active.contains(&LintId::D1)
                    && (seq(toks, i + 1, &["::", "var"])
                        || seq(toks, i + 1, &["::", "var_os"])) =>
            {
                emit(
                    LintId::D1,
                    line,
                    "environment read in deterministic code; thread configuration through \
                     explicit config structs"
                        .into(),
                );
            }
            // --------------------- D2: nondet iteration -----------------
            "HashMap" | "HashSet" if active.contains(&LintId::D2) => {
                emit(
                    LintId::D2,
                    line,
                    format!(
                        "`{}` has nondeterministic iteration order; use `BTree{}`",
                        t.text,
                        &t.text[4..]
                    ),
                );
            }
            // ------------------------ P1: panic-freedom -----------------
            "unwrap" | "expect"
                if active.contains(&LintId::P1)
                    && prev_is(toks, i, ".")
                    && next_is(toks, i + 1, "(") =>
            {
                emit(
                    LintId::P1,
                    line,
                    format!(
                        "`.{}()` on a runtime path; propagate `flexran_types::Error` instead",
                        t.text
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if active.contains(&LintId::P1) && next_is(toks, i + 1, "!") =>
            {
                emit(
                    LintId::P1,
                    line,
                    format!("`{}!` on a runtime path; return an error instead", t.text),
                );
            }
            // --------------------- R1: RIB single-writer ----------------
            "agent_mut" | "remove_agent" | "mark_stale" | "mark_fresh" | "adopt_agent"
                if active.contains(&LintId::R1)
                    && !r1_exempt(krate, file)
                    && prev_is(toks, i, ".")
                    && next_is(toks, i + 1, "(") =>
            {
                emit(
                    LintId::R1,
                    line,
                    format!(
                        "RIB mutation (`.{}`) outside the single-writer updater \
                         (controller::updater) — route the write through RibUpdater",
                        t.text
                    ),
                );
            }
            // ------------------------- U1: unsafe audit -----------------
            "unsafe" => {
                let documented = (line.saturating_sub(3)..=line).any(|l| safety_lines.contains(&l));
                if !documented {
                    emit(
                        LintId::U1,
                        line,
                        "`unsafe` without a `// SAFETY:` comment in the 3 preceding lines".into(),
                    );
                }
            }
            _ => {}
        }

        // ------------------- A1: hot-path allocation --------------------
        if active.contains(&LintId::A1) && in_into(i) {
            if let Some(what) = alloc_pattern(toks, i) {
                emit(
                    LintId::A1,
                    line,
                    format!(
                        "allocation (`{what}`) inside a `*_into` hot path; reuse \
                         caller-provided scratch instead"
                    ),
                );
            }
        }
    }
    diags.sort_by_key(|a| (a.line, a.lint));
    diags
}

/// Allocating construct starting at token `i` inside an `_into` body.
pub(crate) fn alloc_pattern(toks: &[Tok], i: usize) -> Option<&'static str> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    match t.text.as_str() {
        "Vec" | "String" | "Box" | "BTreeMap" | "BTreeSet" | "VecDeque" | "HashMap" | "HashSet" => {
            if seq(toks, i + 1, &["::", "new"]) || seq(toks, i + 1, &["::", "with_capacity"]) {
                return Some("constructor");
            }
            if t.text == "String" && seq(toks, i + 1, &["::", "from"]) {
                return Some("String::from");
            }
            if t.text == "Box" && seq(toks, i + 1, &["::", "new"]) {
                return Some("Box::new");
            }
            None
        }
        "vec" if next_is(toks, i + 1, "!") => Some("vec!"),
        "format" if next_is(toks, i + 1, "!") => Some("format!"),
        "clone" if prev_is(toks, i, ".") && next_is(toks, i + 1, "(") => Some(".clone()"),
        "to_vec" if prev_is(toks, i, ".") && next_is(toks, i + 1, "(") => Some(".to_vec()"),
        "to_string" if prev_is(toks, i, ".") && next_is(toks, i + 1, "(") => Some(".to_string()"),
        "to_owned" if prev_is(toks, i, ".") && next_is(toks, i + 1, "(") => Some(".to_owned()"),
        // `.collect()` and the turbofish form `.collect::<Vec<_>>()`.
        "collect"
            if prev_is(toks, i, ".")
                && (next_is(toks, i + 1, "(") || seq(toks, i + 1, &["::", "<"])) =>
        {
            Some(".collect()")
        }
        _ => None,
    }
}

/// Does `t` end an expression a `[` could index? Identifiers that are
/// really keywords introduce patterns/items instead and are excluded.
pub(crate) fn is_expr_tail(t: &Tok) -> bool {
    match t.kind {
        TokKind::Punct => t.text == ")" || t.text == "]",
        TokKind::Ident => !matches!(
            t.text.as_str(),
            "let"
                | "mut"
                | "ref"
                | "in"
                | "return"
                | "if"
                | "else"
                | "match"
                | "move"
                | "as"
                | "const"
                | "static"
                | "break"
                | "continue"
                | "where"
                | "unsafe"
                | "dyn"
                | "impl"
                | "for"
                | "while"
                | "loop"
                | "box"
                | "pub"
                | "crate"
                | "use"
                | "mod"
                | "enum"
                | "struct"
                | "union"
                | "trait"
                | "type"
                | "fn"
                | "Some"
                | "Ok"
                | "Err"
                | "None"
        ),
        _ => false,
    }
}

/// `toks[i..]` matches `texts` exactly.
pub(crate) fn seq(toks: &[Tok], i: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, want)| toks.get(i + k).is_some_and(|t| t.text == *want))
}

pub(crate) fn next_is(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

pub(crate) fn prev_is(toks: &[Tok], i: usize, text: &str) -> bool {
    i > 0 && toks[i - 1].text == text
}

/// Parse `lint:allow(key, key2)` annotations out of comments, yielding
/// `(line, key)` pairs. Doc comments are documentation: a quoted
/// `lint:allow(...)` inside one (e.g. the annotation grammar described
/// in a module doc) must never suppress anything.
pub(crate) fn collect_allows(comments: &[Comment]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(end) = rest.find(')') else { break };
            for key in rest[..end].split(',') {
                let key = key.trim();
                if !key.is_empty() {
                    out.push((c.line, key.to_string()));
                }
            }
            rest = &rest[end..];
        }
    }
    out
}

/// Line spans `[start, end]` of `#[cfg(test)]` / `#[test]` items.
pub(crate) fn find_test_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && next_is(toks, i + 1, "[") {
            // Collect idents inside the attribute.
            let attr_start = i;
            let mut depth = 0usize;
            let mut has_test = false;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if toks[j].kind == TokKind::Ident => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test {
                // Skip any further attributes, then span the item body.
                let mut k = j + 1;
                while k < toks.len() && toks[k].text == "#" && next_is(toks, k + 1, "[") {
                    let mut d = 0usize;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Find the item's opening brace (or `;` for an item
                // without a body).
                let mut paren = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        ";" if paren == 0 => break,
                        "{" if paren == 0 => {
                            let (end_line, end_tok) = match_brace(toks, k);
                            spans.push((toks[attr_start].line, end_line));
                            k = end_tok;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Token-index spans of the bodies of functions whose name ends in
/// `_into`.
fn find_into_bodies(toks: &[Tok]) -> Vec<(usize, usize)> {
    find_fn_bodies(toks, |toks, i| {
        toks.get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text.ends_with("_into"))
    })
}

/// Token spans of function bodies annotated `// lint:no-alloc` within
/// the three lines above their `fn` keyword (attributes may sit
/// between). These opt into the A1 hot-path allocation lint. Each
/// marker binds to the *first* `fn` that follows it, never to later
/// siblings that also happen to start within the window. Doc comments
/// never bind — a doc block *describing* the marker is not a marker.
fn find_marked_bodies(toks: &[Tok], comments: &[Comment]) -> Vec<(usize, usize)> {
    let markers: Vec<u32> = comments
        .iter()
        .filter(|c| !c.doc && c.text.contains("lint:no-alloc"))
        .map(|c| c.line)
        .collect();
    if markers.is_empty() {
        return Vec::new();
    }
    let mut marked_fns = BTreeSet::new();
    for marker in markers {
        let first = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.kind == TokKind::Ident
                    && t.text == "fn"
                    && t.line > marker
                    && t.line <= marker + 3
            })
            .map(|(i, _)| i)
            .next();
        if let Some(i) = first {
            marked_fns.insert(i);
        }
    }
    find_fn_bodies(toks, |_, i| marked_fns.contains(&i))
}

/// Token spans (exclusive of the braces) of every `fn` body for which
/// `qualifies(toks, fn_token_index)` holds.
fn find_fn_bodies(toks: &[Tok], qualifies: impl Fn(&[Tok], usize) -> bool) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && qualifies(toks, i) {
            // Scan to the body's opening brace at paren depth 0.
            let mut paren = 0i32;
            let mut k = i + 2;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    ";" if paren == 0 => break, // trait method declaration
                    "{" if paren == 0 => {
                        let (_, end_tok) = match_brace(toks, k);
                        spans.push((k + 1, end_tok.saturating_sub(1)));
                        k = end_tok;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Given `toks[open]` == `{`, return `(line, index)` of the matching `}`.
pub(crate) fn match_brace(toks: &[Tok], open: usize) -> (u32, usize) {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return (t.line, k);
                }
            }
            _ => {}
        }
    }
    let last = toks.len().saturating_sub(1);
    (toks.last().map(|t| t.line).unwrap_or(1), last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_ids(krate: &str, src: &str) -> Vec<(&'static str, u32)> {
        analyze_source(krate, "src/x.rs", src)
            .into_iter()
            .map(|d| (d.lint.id(), d.line))
            .collect()
    }

    #[test]
    fn d1_fires_and_allows() {
        let src = "fn f() {\n\
                   let t = Instant::now();\n\
                   let u = Instant::now(); // lint:allow(wall-clock) phase timing only\n\
                   }";
        assert_eq!(lint_ids("sim", src), vec![("D1", 2)]);
        // Not active for bench.
        assert!(lint_ids("bench", src).is_empty());
    }

    #[test]
    fn p1_needs_call_shape() {
        // `unwrap` as a plain identifier (e.g. a fn named unwrap_frames)
        // must not fire; `.unwrap()` must.
        let src = "fn f() { let unwrap = 1; let _ = x.unwrap(); }";
        assert_eq!(lint_ids("proto", src), vec![("P1", 1)]);
        assert!(lint_ids("stack", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_except_unsafe() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n\
                   fn g() { unsafe { y() } }\n}";
        let ids = lint_ids("proto", src);
        assert_eq!(ids, vec![("U1", 4)]);
    }

    #[test]
    fn a1_only_inside_into_bodies() {
        let src = "fn encode(x: u8) -> Vec<u8> { vec![x] }\n\
                   fn encode_into(x: u8, out: &mut Vec<u8>) { let s = format!(\"{x}\"); }\n";
        let ids = lint_ids("stack", src);
        assert_eq!(ids, vec![("A1", 2)]);
    }

    #[test]
    fn a1_covers_no_alloc_marked_bodies() {
        let src = "// lint:no-alloc — per-TTI path\n\
                   fn finish(out: &mut Vec<u8>) { let s = format!(\"x\"); }\n\
                   fn unmarked(out: &mut Vec<u8>) { let s = format!(\"x\"); }\n";
        let ids = lint_ids("controller", src);
        assert_eq!(ids, vec![("A1", 2)]);
    }

    #[test]
    fn a1_marker_reaches_past_attributes() {
        let src = "// lint:no-alloc\n\
                   #[inline]\n\
                   fn hot(out: &mut Vec<u8>) { let v = Vec::new(); }\n";
        let ids = lint_ids("stack", src);
        assert_eq!(ids, vec![("A1", 3)]);
    }

    #[test]
    fn a1_marker_too_far_above_does_not_bind() {
        let src = "// lint:no-alloc\n\n\n\n\
                   fn cold(out: &mut Vec<u8>) { let v = Vec::new(); }\n";
        assert!(lint_ids("stack", src).is_empty());
    }

    #[test]
    fn u1_satisfied_by_safety_comment() {
        let src = "// SAFETY: delegates to System with no invariants of its own.\n\
                   unsafe fn f() {}\n\
                   \n\n\n\n\
                   fn g() { unsafe { h() } }";
        let ids = lint_ids("bench", src);
        assert_eq!(ids, vec![("U1", 7)]);
    }

    #[test]
    fn r1_scoped_to_non_updater_modules() {
        let src = "fn f(rib: &mut Rib) { rib.agent_mut(e).mark_stale(t); }";
        let in_master = analyze_source("controller", "src/master.rs", src);
        assert_eq!(in_master.len(), 2);
        let in_updater = analyze_source("controller", "src/updater.rs", src);
        assert!(in_updater.is_empty());
        let in_shard = analyze_source("controller", "src/shard.rs", src);
        assert!(in_shard.is_empty(), "each shard owns its single writer");
    }

    #[test]
    fn r1_flags_cross_shard_adoption_outside_the_shard_module() {
        let src = "fn f(rib: &mut Rib, n: AgentNode) { rib.adopt_agent(n); }";
        let in_master = analyze_source("controller", "src/master.rs", src);
        assert_eq!(in_master.len(), 1, "adopting a subtree is a RIB write");
        let in_shard = analyze_source("controller", "src/shard.rs", src);
        assert!(in_shard.is_empty());
    }
}
