#![forbid(unsafe_code)]
//! # flexran-lint
//!
//! A self-contained static analyzer that machine-enforces the workspace's
//! real-time invariants: determinism (no wall clock in TTI code, no
//! nondeterministic iteration), panic-freedom on control-plane runtime
//! paths, the RIB single-writer discipline, zero-allocation `*_into` hot
//! paths, and an audited `unsafe` surface. See [`lints`] for the catalog
//! and DESIGN.md §"Static analysis & invariants" for the rationale.
//!
//! Since v2 the analyzer is interprocedural: [`symbols`] extracts a
//! per-file symbol table on the same hand-rolled lexer, [`callgraph`]
//! builds a conservative workspace call graph over it, and [`reach`]
//! walks the graph to enforce the transitive lints (A2 no-alloc
//! reachability, P2 panic reachability, S1 shard/phase discipline).
//! Per-file results are memoized in a content-hash keyed cache
//! ([`cache`]) so warm runs skip re-lexing the workspace.
//!
//! Run it with `cargo run -p flexran-lint` from the workspace root (the
//! `scripts/check.sh` gate does), or use [`run_workspace`] from tests.
//! Pre-existing violations are frozen in `lint-baseline.toml`
//! ([`baseline`]); anything new fails the run.

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod reach;
pub mod symbols;

use std::fs;
use std::path::{Path, PathBuf};

use baseline::{Baseline, Gated};
use cache::{Cache, Entry};
use callgraph::CallGraph;
use lints::Diagnostic;

/// Options for a workspace run.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Ignore the baseline (report every violation as new).
    pub no_baseline: bool,
    /// Ignore the per-file result cache (re-lex everything).
    pub no_cache: bool,
}

/// Outcome of a workspace run.
#[derive(Debug)]
pub struct Report {
    /// Every violation found, baseline-gated.
    pub gated: Gated,
    /// Files scanned.
    pub files: usize,
    /// Files served from the content-hash cache.
    pub cache_hits: usize,
    /// The baseline that was applied (empty when missing/ignored).
    pub baseline: Baseline,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.gated.new.is_empty()
    }
}

/// Workspace-relative path of the baseline file.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// Scan every crate under `<root>/crates/*/src` and gate the findings
/// against `<root>/lint-baseline.toml` (unless disabled).
pub fn run_workspace(root: &Path, opts: &Options) -> Result<Report, String> {
    let scan = scan_workspace(root, opts.no_cache)?;
    let baseline = if opts.no_baseline {
        Baseline::default()
    } else {
        load_baseline(root)?
    };
    Ok(Report {
        gated: baseline.gate(&scan.diags),
        files: scan.files,
        cache_hits: scan.cache_hits,
        baseline,
    })
}

/// Raw scan result, before baseline gating.
#[derive(Debug)]
pub struct Scan {
    /// Per-file and interprocedural diagnostics, sorted.
    pub diags: Vec<Diagnostic>,
    pub files: usize,
    pub cache_hits: usize,
}

/// Scan the workspace: per-file lints (cache-accelerated) followed by
/// the interprocedural reachability lints over the assembled call
/// graph. This is the raw input for `--update-baseline`.
pub fn scan_workspace(root: &Path, no_cache: bool) -> Result<Scan, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();

    let mut store = if no_cache {
        Cache::default()
    } else {
        Cache::load(root)
    };
    let mut diags = Vec::new();
    let mut summaries = Vec::new();
    let mut files = 0usize;
    let mut cache_hits = 0usize;
    for crate_dir in crate_dirs {
        let krate = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("non-UTF8 crate dir under {}", crates_dir.display()))?
            .to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut rs_files = Vec::new();
        walk_rs(&src, &mut rs_files)?;
        rs_files.sort();
        for path in rs_files {
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let hash = cache::content_hash(&krate, &text);
            if let Some(entry) = store.get(&rel, hash) {
                diags.extend(entry.diags.iter().cloned());
                summaries.push(entry.summary.clone());
                cache_hits += 1;
            } else {
                let file_diags = lints::analyze_source(&krate, &rel, &text);
                let summary = symbols::summarize(&krate, &rel, &text);
                store.put(
                    &rel,
                    Entry {
                        hash,
                        diags: file_diags.clone(),
                        summary: summary.clone(),
                    },
                );
                diags.extend(file_diags);
                summaries.push(summary);
            }
            files += 1;
        }
    }

    // Interprocedural phase: always recomputed — it is a whole-workspace
    // fixpoint over the (possibly cached) per-file summaries.
    let graph = CallGraph::build(&summaries, callgraph::crate_deps(root));
    diags.extend(reach::analyze(&graph));
    drop(graph);

    if !no_cache {
        store.store(root);
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(Scan {
        diags,
        files,
        cache_hits,
    })
}

/// Scan the workspace and return `(diagnostics, files_scanned)` without
/// baseline gating or caching — kept for callers that want the raw
/// diagnostic stream.
pub fn collect_diagnostics(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let scan = scan_workspace(root, true)?;
    Ok((scan.diags, scan.files))
}

/// Load the baseline file; a missing file is an empty baseline.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    match fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("read {}: {e}", path.display())),
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render diagnostics as JSON (hand-rolled: the tool has no deps).
pub fn to_json(gated: &Gated) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let push = |d: &Diagnostic, baselined: bool, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&format!(
            "\n  {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"baselined\": {}, \"message\": \"{}\"}}",
            d.lint.id(),
            lints::SEVERITY,
            json_escape(&d.file),
            d.line,
            baselined,
            json_escape(&d.message)
        ));
    };
    for d in &gated.new {
        push(d, false, &mut out, &mut first);
    }
    for d in &gated.baselined {
        push(d, true, &mut out, &mut first);
    }
    out.push_str("\n]\n");
    out
}

/// Render diagnostics as a minimal SARIF 2.1.0 document (the format CI
/// artifact viewers and code-scanning UIs ingest). New findings are
/// `error`; baselined ones are `note` so the ratchet debt stays visible
/// without failing the scan.
pub fn to_sarif(gated: &Gated) -> String {
    let mut rules = String::new();
    for (i, lint) in lints::LintId::ALL.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        rules.push_str(&format!(
            "\n        {{\"id\": \"{}\", \"name\": \"{}\"}}",
            lint.id(),
            lint.allow_key()
        ));
    }
    let mut results = String::new();
    let mut first = true;
    let mut push = |d: &Diagnostic, level: &str| {
        if !first {
            results.push(',');
        }
        first = false;
        results.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            d.lint.id(),
            json_escape(&d.message),
            json_escape(&d.file),
            d.line
        ));
    };
    for d in &gated.new {
        push(d, "error");
    }
    for d in &gated.baselined {
        push(d, "note");
    }
    format!(
        "{{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [{{\n    \"tool\": {{\"driver\": {{\
         \"name\": \"flexran-lint\", \"rules\": [{rules}\n      ]}}}},\n    \
         \"results\": [{results}\n      ]\n  }}]\n}}\n"
    )
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}
