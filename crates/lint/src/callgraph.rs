//! The conservative workspace call graph.
//!
//! Nodes are every [`FnSym`] extracted by [`crate::symbols`]; edges are
//! name-resolved call sites. Resolution is deliberately
//! over-approximate — when in doubt, an edge exists:
//!
//! * `.m(..)` method calls edge to **every** workspace method named `m`
//!   (inherent or trait impl). That is how trait dispatch is handled:
//!   a call through `dyn DlScheduler` reaches every implementation of
//!   the trait method, which is exactly the conservative answer for a
//!   platform whose whole point is swapping VSFs at runtime.
//! * `Type::f(..)` prefers the `f` defined in an `impl Type` block
//!   (`Self::f` resolves `Self` via the caller's impl), and falls back
//!   to every `f` in the workspace.
//! * Plain `f(..)` edges to every workspace function named `f`.
//!
//! Two filters keep the over-approximation honest instead of useless:
//!
//! * **Crate dependency direction** — an edge from crate `a` into crate
//!   `b` only exists if `a` (transitively) depends on `b` per the
//!   `Cargo.toml` graph. Without this, a `.send(..)` in the controller
//!   would "reach" the simulator's fault-injecting link (same method
//!   name), which cannot happen in a compiled binary.
//! * **The std allowlist** — calls that resolve to nothing in the
//!   workspace are *unknown*. Unknown calls to a curated list of
//!   allocation-free `std` names (slice/iterator/Option/arithmetic
//!   APIs) are accepted; anything else unknown is surfaced by A2 as a
//!   conservative finding unless the call site carries
//!   `// lint:alloc-free-callee`. Growth idioms (`push`, `insert`,
//!   `extend_from_slice`) are deliberately allowlisted: amortized
//!   pooled growth is this codebase's pattern, and the zero-alloc
//!   steady state is enforced at runtime by `experiments allocgate` —
//!   the lint hunts constructors, clones and formatters, the
//!   allocations pools can't amortize away.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use crate::symbols::{Call, FileSummary, FnSym};

/// Allocation-free `std`/`core` names accepted when a call resolves to
/// nothing in the workspace. Kept sorted for readability; matched
/// exactly.
pub const STD_NO_ALLOC: &[&str] = &[
    // Slices, arrays, Vec (in-place / pooled growth).
    "as_bytes",
    "as_mut",
    "as_mut_slice",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "capacity",
    "chunks",
    "chunks_exact",
    "clear",
    "contains",
    "contains_key",
    "copy_from_slice",
    "dedup",
    "drain",
    "extend_from_slice",
    "fill",
    "first",
    "first_mut",
    "get",
    "get_mut",
    "get_or_insert_with",
    "insert",
    "is_empty",
    "iter",
    "iter_mut",
    "keys",
    "last",
    "last_mut",
    "len",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "pop",
    "pop_front",
    "push",
    "push_back",
    "push_front",
    "push_str",
    "remove",
    "resize",
    "retain",
    "reverse",
    "rotate_left",
    "rotate_right",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "split_at",
    "split_at_mut",
    "split_first",
    "split_last",
    "swap",
    "swap_remove",
    "truncate",
    "values",
    "values_mut",
    "windows",
    "append",
    // Iterator adaptors and consumers (lazy / in-place).
    "all",
    "any",
    "by_ref",
    "chain",
    "cloned",
    "copied",
    "count",
    "cycle",
    "enumerate",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "flat_map",
    "flatten",
    "fold",
    "fuse",
    "inspect",
    "map",
    "map_while",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "next_back",
    "nth",
    "peekable",
    "peek",
    "position",
    "product",
    "rev",
    "scan",
    "skip",
    "skip_while",
    "step_by",
    "sum",
    "take",
    "take_while",
    "zip",
    // Option / Result plumbing.
    "and_then",
    "err",
    "expect_err",
    "filter",
    "flatten",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "is_some_and",
    "is_none_or",
    "map_err",
    "map_or",
    "map_or_else",
    "ok",
    "ok_or",
    "ok_or_else",
    "or",
    "or_else",
    "replace",
    "take",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "unwrap_unchecked",
    "xor",
    "and",
    "as_deref",
    "as_deref_mut",
    "cloned",
    "copied",
    "get_or_insert",
    "insert",
    "into_inner",
    "iter",
    "zip",
    // Numerics, ordering, conversion.
    "abs",
    "ceil",
    "clamp",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "cmp",
    "div_euclid",
    "eq",
    "exp",
    "floor",
    "fract",
    "from_le_bytes",
    "from_be_bytes",
    "hash",
    "is_finite",
    "is_nan",
    "ln",
    "log10",
    "log2",
    "max",
    "min",
    "ne",
    "partial_cmp",
    "powf",
    "powi",
    "rem_euclid",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "signum",
    "sqrt",
    "to_be_bytes",
    "to_le_bytes",
    "total_cmp",
    "trunc",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "rotate_left",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
    "pow",
    "isqrt",
    "abs_diff",
    "midpoint",
    // str scanning (non-allocating views).
    "bytes",
    "char_indices",
    "chars",
    "ends_with",
    "find",
    "lines",
    "parse",
    "rfind",
    "split",
    "split_once",
    "split_whitespace",
    "splitn",
    "rsplit_once",
    "starts_with",
    "strip_prefix",
    "strip_suffix",
    "trim",
    "trim_end",
    "trim_end_matches",
    "trim_start",
    "trim_start_matches",
    "trim_matches",
    // mem / ptr / misc std facilities.
    "borrow",
    "borrow_mut",
    "default",
    "drop",
    "from",
    "into",
    "min_stack",
    "size_of",
    "swap",
    "take",
    "try_from",
    "try_into",
    // Time arithmetic (Instant/Duration math is alloc-free; *reading*
    // the clock is D1's business, not A2's).
    "as_micros",
    "as_millis",
    "as_nanos",
    "as_secs",
    "as_secs_f64",
    "checked_duration_since",
    "duration_since",
    "elapsed",
    "from_micros",
    "from_millis",
    "from_nanos",
    "from_secs",
    "from_secs_f64",
    "now",
    "saturating_duration_since",
    "subsec_nanos",
    // More in-place slice/collection/scalar APIs seen on workspace hot
    // paths. `reserve`/`resize_with`/`extend` are the same pooled-growth
    // class as `push` (amortized; gated at runtime by allocgate).
    "chunks_mut",
    "chunks_exact_mut",
    "copy_within",
    // `clone_from` reuses the destination's existing allocation — it is
    // the no-alloc-path *fix* for `a = b.clone()`, so it must not fire.
    "clone_from",
    "first_chunk",
    "last_chunk",
    "split_first_chunk",
    "split_last_chunk",
    "split_at_checked",
    "into_iter",
    "front",
    "front_mut",
    "back",
    "back_mut",
    "extend",
    "reserve",
    "resize_with",
    "then",
    "then_some",
    "div_ceil",
    "div_floor",
    "is_multiple_of",
    "rem",
    "cos",
    "sin",
    "tan",
    "atan2",
    "hypot",
    "mul_add",
    "to_bits",
    "from_bits",
    "from_utf8",
    "is_ascii_digit",
    "is_ascii_alphabetic",
    "is_ascii_alphanumeric",
    "is_ascii_whitespace",
    "eq_ignore_ascii_case",
    // Thread/synchronization primitives used by the worker pool: none
    // of these allocate per call (spawning threads does — `spawn` and
    // `scope` are deliberately NOT listed).
    "lock",
    "try_lock",
    "park",
    "park_timeout",
    "unpark",
    "yield_now",
    "notify_one",
    "notify_all",
    "wait",
    "wait_timeout",
    "store",
    "load",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    // Socket I/O on established connections (kernel copies, no user
    // heap); connection *setup* helpers are not listed.
    "read",
    "write",
    "write_all",
    "flush",
    "set_nodelay",
    "set_nonblocking",
    "set_read_timeout",
    "set_write_timeout",
    // Vetted external deps. `rand` (seeded `SmallRng` draws are pure
    // arithmetic) and `bytes` (`put_*` grows a pooled `BytesMut`, same
    // amortized class as `push`; `freeze`/`split_to` are refcount ops).
    "random",
    "random_range",
    "random_bool",
    "put_u8",
    "put_u16",
    "put_u16_le",
    "put_u32",
    "put_u32_le",
    "put_u64",
    "put_u64_le",
    "put_slice",
    "get_u8",
    "get_u16",
    "get_u16_le",
    "get_u32",
    "get_u32_le",
    "get_u64",
    "get_u64_le",
    "advance",
    "remaining",
    "freeze",
    "split_to",
    "split_off",
    "copy_to_slice",
    "chunk",
    "has_remaining",
];

/// One fully-indexed function node.
#[derive(Debug)]
pub struct FnRef<'a> {
    pub sym: &'a FnSym,
    pub krate: &'a str,
    pub file: &'a str,
}

/// How one call site resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Edges into the workspace (node indices).
    Workspace(Vec<usize>),
    /// A `std` name from the allowlist — accepted, no edge.
    Std,
    /// Resolved to nothing: flagged conservatively by A2 unless the
    /// call site is annotated `// lint:alloc-free-callee`.
    Unknown,
}

/// The workspace call graph.
pub struct CallGraph<'a> {
    pub fns: Vec<FnRef<'a>>,
    /// Per-node resolved calls: `(call, resolution)`.
    pub calls: Vec<Vec<(&'a Call, Resolution)>>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    methods_by_name: BTreeMap<&'a str, Vec<usize>>,
    std_names: BTreeSet<&'static str>,
    /// crate dir -> transitive workspace dependencies (incl. itself).
    deps: BTreeMap<String, BTreeSet<String>>,
}

/// Primitive type names: valid call qualifiers (`u32::from`) that are
/// lowercase yet are std types, not module paths.
fn is_primitive(q: &str) -> bool {
    matches!(
        q,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
            | "bool"
            | "char"
            | "str"
    )
}

/// Parse `crates/*/Cargo.toml` `[dependencies]` sections into a map of
/// crate dir -> directly-depended workspace crate dirs. Workspace deps
/// are named `flexran-<dir>` (the core crate is plain `flexran`).
pub fn crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return direct;
    };
    let mut dirs: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    for dir in dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let Ok(text) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let mut in_deps = false;
        let mut deps = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                // dev-dependencies don't ship in the runtime binary; the
                // graph models what a deployed control plane can call.
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            let Some(key) = line.split(['=', '.']).next().map(str::trim) else {
                continue;
            };
            if key == "flexran" {
                deps.insert("core".to_string());
            } else if let Some(dep) = key.strip_prefix("flexran-") {
                deps.insert(dep.to_string());
            }
        }
        direct.insert(name, deps);
    }
    // Transitive closure, including self.
    let keys: Vec<String> = direct.keys().cloned().collect();
    let mut closed: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for k in &keys {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![k.clone()];
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(ds) = direct.get(&cur) {
                for d in ds {
                    if !seen.contains(d) {
                        stack.push(d.clone());
                    }
                }
            }
        }
        closed.insert(k.clone(), seen);
    }
    closed
}

impl<'a> CallGraph<'a> {
    /// Build the graph over every summary. `deps` comes from
    /// [`crate_deps`]; an empty map disables the dependency-direction
    /// filter (unit tests).
    pub fn build(
        summaries: &'a [FileSummary],
        deps: BTreeMap<String, BTreeSet<String>>,
    ) -> CallGraph<'a> {
        let mut fns = Vec::new();
        for s in summaries {
            for f in &s.fns {
                fns.push(FnRef {
                    sym: f,
                    krate: &s.krate,
                    file: &s.file,
                });
            }
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.sym.name).or_default().push(i);
            if f.sym.impl_type.is_some() || f.sym.trait_name.is_some() {
                methods_by_name.entry(&f.sym.name).or_default().push(i);
            }
        }
        let mut graph = CallGraph {
            fns,
            calls: Vec::new(),
            by_name,
            methods_by_name,
            std_names: STD_NO_ALLOC.iter().copied().collect(),
            deps,
        };
        graph.calls = (0..graph.fns.len())
            .map(|i| {
                graph.fns[i]
                    .sym
                    .calls
                    .iter()
                    .map(|c| (c, graph.resolve(i, c)))
                    .collect()
            })
            .collect();
        graph
    }

    /// May code in crate `from` link against crate `to`?
    fn crate_reaches(&self, from: &str, to: &str) -> bool {
        if from == to || self.deps.is_empty() {
            return true;
        }
        self.deps.get(from).is_some_and(|ds| ds.contains(to))
    }

    fn visible(&self, caller: usize, targets: &[usize]) -> Vec<usize> {
        let from = self.fns[caller].krate;
        targets
            .iter()
            .copied()
            .filter(|&t| !self.fns[t].sym.is_test && self.crate_reaches(from, self.fns[t].krate))
            .collect()
    }

    /// Resolve one call site from node `caller`.
    pub fn resolve(&self, caller: usize, call: &Call) -> Resolution {
        if call.method {
            let targets = self
                .methods_by_name
                .get(call.name.as_str())
                .map(|t| self.visible(caller, t))
                .unwrap_or_default();
            if !targets.is_empty() {
                return Resolution::Workspace(targets);
            }
            return if self.std_names.contains(call.name.as_str()) {
                Resolution::Std
            } else {
                Resolution::Unknown
            };
        }
        if let Some(q) = &call.qualifier {
            let q = if q == "Self" {
                self.fns[caller].sym.impl_type.as_deref().unwrap_or("Self")
            } else {
                q.as_str()
            };
            // Primitive qualifiers (`u32::from`, `f64::from_bits`) are
            // lowercase but name std types, never module paths — without
            // this, `u32::from` would fall back onto every workspace
            // `from` (e.g. `Error::from`).
            if is_primitive(q) {
                return Resolution::Std;
            }
            if let Some(all) = self.by_name.get(call.name.as_str()) {
                let same_type: Vec<usize> = self
                    .visible(caller, all)
                    .into_iter()
                    .filter(|&t| self.fns[t].sym.impl_type.as_deref() == Some(q))
                    .collect();
                if !same_type.is_empty() {
                    return Resolution::Workspace(same_type);
                }
                // A lowercase qualifier is a module path (`rlc::encode`),
                // not a type: fall back to name resolution. An uppercase
                // one is a type — if none of its workspace impls define
                // the name, the callee is not workspace code.
                if q.chars().next().is_some_and(|c| c.is_lowercase()) {
                    let any = self.visible(caller, all);
                    if !any.is_empty() {
                        return Resolution::Workspace(any);
                    }
                }
            }
            // `Enum::Variant(..)` constructors and std-type associated
            // fns (`Vec::new`, `u32::from_le_bytes`): allocating
            // constructors are the alloc-site detector's business, not
            // an edge, so these are accepted here.
            if call.name.chars().next().is_some_and(|c| c.is_uppercase())
                || q.chars().next().is_some_and(|c| c.is_uppercase())
                || self.std_names.contains(call.name.as_str())
            {
                return Resolution::Std;
            }
            return Resolution::Unknown;
        }
        if let Some(all) = self.by_name.get(call.name.as_str()) {
            let targets = self.visible(caller, all);
            if !targets.is_empty() {
                return Resolution::Workspace(targets);
            }
        }
        if self.std_names.contains(call.name.as_str()) {
            Resolution::Std
        } else {
            Resolution::Unknown
        }
    }

    /// Human-readable label for node `i` (`Type::name` or `name`).
    pub fn label(&self, i: usize) -> String {
        let f = &self.fns[i];
        match (&f.sym.impl_type, &f.sym.trait_name) {
            (Some(t), _) => format!("{t}::{}", f.sym.name),
            (None, Some(tr)) => format!("{tr}::{}", f.sym.name),
            (None, None) => f.sym.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::summarize;

    fn graph_of(
        files: &[(&str, &str, &str)],
    ) -> (Vec<FileSummary>, BTreeMap<String, BTreeSet<String>>) {
        let summaries: Vec<FileSummary> = files
            .iter()
            .map(|(krate, file, src)| summarize(krate, file, src))
            .collect();
        (summaries, BTreeMap::new())
    }

    fn find(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.sym.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn trait_method_calls_edge_to_every_impl() {
        let (summaries, deps) = graph_of(&[(
            "stack",
            "crates/stack/src/x.rs",
            "trait Sched { fn pick(&self) -> u32; }
             struct A; impl Sched for A { fn pick(&self) -> u32 { 1 } }
             struct B; impl Sched for B { fn pick(&self) -> u32 { 2 } }
             fn drive(s: &dyn Sched) -> u32 { s.pick() }",
        )]);
        let g = CallGraph::build(&summaries, deps);
        let drive = find(&g, "drive");
        let (_, res) = &g.calls[drive][0];
        let Resolution::Workspace(targets) = res else {
            panic!("expected workspace edges, got {res:?}");
        };
        // The declaration plus both impls — conservative dispatch.
        assert_eq!(targets.len(), 3);
        let labels: Vec<String> = targets.iter().map(|&t| g.label(t)).collect();
        assert!(labels.contains(&"A::pick".to_string()));
        assert!(labels.contains(&"B::pick".to_string()));
    }

    #[test]
    fn qualified_calls_prefer_the_matching_impl() {
        let (summaries, deps) = graph_of(&[(
            "stack",
            "crates/stack/src/x.rs",
            "struct A; impl A { fn make() -> A { A } }
             struct B; impl B { fn make() -> B { B } }
             fn f() { let _ = A::make(); }",
        )]);
        let g = CallGraph::build(&summaries, deps);
        let f = find(&g, "f");
        let (_, res) = &g.calls[f][0];
        assert_eq!(*res, Resolution::Workspace(vec![find(&g, "make")]));
        let Resolution::Workspace(t) = res else {
            unreachable!()
        };
        assert_eq!(g.label(t[0]), "A::make");
    }

    #[test]
    fn unknown_and_std_calls_classify() {
        let (summaries, deps) = graph_of(&[(
            "stack",
            "crates/stack/src/x.rs",
            "fn f(v: &mut Vec<u32>) { v.len(); v.mystery_method(); helper(); }",
        )]);
        let g = CallGraph::build(&summaries, deps);
        let f = find(&g, "f");
        let kinds: Vec<&Resolution> = g.calls[f].iter().map(|(_, r)| r).collect();
        assert_eq!(kinds[0], &Resolution::Std);
        assert_eq!(kinds[1], &Resolution::Unknown);
        assert_eq!(
            kinds[2],
            &Resolution::Unknown,
            "helper not defined anywhere"
        );
    }

    #[test]
    fn dependency_direction_filters_edges() {
        let (summaries, _) = graph_of(&[
            (
                "controller",
                "crates/controller/src/x.rs",
                "struct M; impl M { fn run(&self, t: &T) { t.send(); } } struct T;",
            ),
            (
                "sim",
                "crates/sim/src/y.rs",
                "struct Link; impl Link { fn send(&self) {} }",
            ),
            (
                "proto",
                "crates/proto/src/z.rs",
                "struct Tcp; impl Tcp { fn send(&self) {} }",
            ),
        ]);
        // controller depends on proto; sim is not in its cone.
        let mut deps = BTreeMap::new();
        deps.insert(
            "controller".to_string(),
            ["controller", "proto"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        let g = CallGraph::build(&summaries, deps);
        let run = find(&g, "run");
        let (_, res) = &g.calls[run][0];
        let Resolution::Workspace(targets) = res else {
            panic!("expected edges")
        };
        let labels: Vec<String> = targets.iter().map(|&t| g.label(t)).collect();
        assert_eq!(labels, vec!["Tcp::send".to_string()], "sim edge filtered");
    }

    #[test]
    fn self_qualifier_resolves_via_the_enclosing_impl() {
        let (summaries, deps) = graph_of(&[(
            "stack",
            "crates/stack/src/x.rs",
            "struct A; impl A { fn helper() {} fn f() { Self::helper(); } }",
        )]);
        let g = CallGraph::build(&summaries, deps);
        let f = find(&g, "f");
        let (_, res) = &g.calls[f][0];
        assert_eq!(*res, Resolution::Workspace(vec![find(&g, "helper")]));
    }

    #[test]
    fn workspace_dep_parsing_is_transitive() {
        // Uses the real workspace: controller -> proto -> types.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let deps = crate_deps(&root);
        let c = deps.get("controller").expect("controller crate");
        assert!(c.contains("proto"));
        assert!(c.contains("types"), "transitive through proto");
        assert!(!c.contains("sim"), "controller does not link the simulator");
    }
}
