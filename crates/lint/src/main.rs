#![forbid(unsafe_code)]
//! `flexran-lint` — the workspace invariant checker CLI.
//!
//! ```text
//! flexran-lint [--root DIR] [--json] [--sarif PATH] [--no-baseline]
//!              [--no-cache] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean (possibly with baselined violations), 1 new
//! violations, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use flexran_lint::baseline::Baseline;
use flexran_lint::{collect_diagnostics, run_workspace, to_json, to_sarif, Options, BASELINE_FILE};

struct Args {
    root: PathBuf,
    json: bool,
    sarif: Option<PathBuf>,
    no_baseline: bool,
    no_cache: bool,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        sarif: None,
        no_baseline: false,
        no_cache: false,
        update_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--json" => args.json = true,
            "--sarif" => {
                args.sarif = Some(PathBuf::from(it.next().ok_or("--sarif needs a path")?));
            }
            "--no-baseline" => args.no_baseline = true,
            "--no-cache" => args.no_cache = true,
            "--update-baseline" => args.update_baseline = true,
            "--help" | "-h" => {
                return Err("usage: flexran-lint [--root DIR] [--json] [--sarif PATH] \
                            [--no-baseline] [--no-cache] [--update-baseline]"
                    .into())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    // Running via `cargo run -p flexran-lint` from a crate dir: walk up
    // to the workspace root (the dir containing `crates/`).
    if !args.root.join("crates").is_dir() {
        let mut cur = args
            .root
            .canonicalize()
            .map_err(|e| format!("bad --root: {e}"))?;
        while !cur.join("crates").is_dir() {
            let Some(parent) = cur.parent() else {
                return Err("could not find a workspace root containing `crates/`".into());
            };
            cur = parent.to_path_buf();
        }
        args.root = cur;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        // The baseline must be reproducible on any host: bypass the
        // cache and refreeze from a cold scan. Paths are already
        // workspace-relative with forward slashes, and serialization is
        // BTreeMap-ordered, so the output is byte-deterministic.
        return match collect_diagnostics(&args.root) {
            Ok((diags, files)) => {
                let baseline = Baseline::from_diagnostics(&diags);
                let path = args.root.join(BASELINE_FILE);
                if let Err(e) = std::fs::write(&path, baseline.serialize()) {
                    eprintln!("write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!(
                    "flexran-lint: froze {} violation(s) across {} file(s) into {}",
                    diags.len(),
                    files,
                    path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("flexran-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let opts = Options {
        no_baseline: args.no_baseline,
        no_cache: args.no_cache,
    };
    let report = match run_workspace(&args.root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flexran-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.sarif {
        if let Err(e) = std::fs::write(path, to_sarif(&report.gated)) {
            eprintln!("write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        print!("{}", to_json(&report.gated));
    } else {
        for d in &report.gated.new {
            println!("{}:{}: [{}] {}", d.file, d.line, d.lint.id(), d.message);
        }
        for (file, lint, allowed, actual) in &report.gated.stale {
            println!(
                "note: stale baseline: {file} [{id}] allows {allowed} but only {actual} remain \
                 — ratchet with --update-baseline",
                id = lint.id()
            );
        }
        println!(
            "flexran-lint: {} file(s) ({} cached), {} new violation(s), {} baselined, \
             {} stale entr(ies)",
            report.files,
            report.cache_hits,
            report.gated.new.len(),
            report.gated.baselined.len(),
            report.gated.stale.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
