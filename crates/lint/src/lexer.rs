//! A lightweight Rust tokenizer — just enough lexical fidelity for the
//! project lints.
//!
//! The analyzer needs to see identifiers, punctuation and line numbers
//! while *not* being fooled by the contents of strings, comments, char
//! literals or lifetimes. It does not need types, macros expansion or a
//! parse tree, so the lexer stays a few hundred lines and the whole tool
//! carries zero dependencies (the build environment vendors everything;
//! `syn` is not among it, and the lints below don't need it).
//!
//! Guarantees:
//! * string/char/byte/raw-string literal *contents* never produce tokens
//!   (so `"unwrap()"` in a message is invisible to the lints),
//! * comments are captured separately with their line numbers (the
//!   allow-annotation and `// SAFETY:` mechanisms read them),
//! * `'a` lexes as a lifetime, `'a'` as a char literal,
//! * `::` is folded into a single punctuation token (pattern matching
//!   convenience).

/// Token classes the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `Instant`, ...).
    Ident,
    /// Punctuation; multi-char only for `::`.
    Punct,
    /// Any literal: number, string, char, byte string.
    Literal,
    /// `'a` — kept distinct so char-literal handling can't eat one.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment with its 1-based starting line. Doc comments (`///`,
/// `//!`, `/** */`, `/*! */`) are tagged: they are *documentation*, so
/// `lint:` markers quoted inside them (e.g. a doc block describing the
/// annotation grammar) must never act as live annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    pub doc: bool,
}

/// Lexer output: the token stream plus comments.
#[derive(Debug, Default)]
pub struct LexOut {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated constructs are consumed to end of input
/// rather than reported — the workspace compiles before it is linted, so
/// the lexer never needs to diagnose syntax.
pub fn lex(src: &str) -> LexOut {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: LexOut::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexOut,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> LexOut {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                '\'' => self.char_or_lifetime(line),
                'r' if self.raw_string_ahead(1) => {
                    self.bump(); // r
                    self.raw_string(line);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump(); // b
                    self.string_literal(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // b
                    self.byte_char(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump(); // b
                    self.bump(); // r
                    self.raw_string(line);
                }
                'r' if self.peek(1) == Some('#')
                    && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_') =>
                {
                    // Raw identifier r#type.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "::".into(), line);
                }
                _ => {
                    let c = match self.bump() {
                        Some(c) => c,
                        None => break,
                    };
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// Is a raw string (`"` or `#..#"`) starting at `self.pos + ahead`?
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `///` (but not `////`, which rustdoc treats as plain) and `//!`
        // are doc comments.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.out.comments.push(Comment { line, text, doc });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        // `/**` (but not `/***` or the empty `/**/`) and `/*!` are doc
        // comments.
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
            || text.starts_with("/*!");
        self.out.comments.push(Comment { line, text, doc });
    }

    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, "\"..\"".into(), line);
    }

    fn raw_string(&mut self, line: u32) {
        // At `#...#"` or `"`; count hashes.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // Need `hashes` following '#'s to close.
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Literal, "r\"..\"".into(), line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // A lifetime is `'` + ident-start NOT followed by a closing `'`
        // (that latter case is a char literal like 'a').
        let next = self.peek(1);
        let is_lifetime =
            next.is_some_and(|c| c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // Char literal.
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, "'.'".into(), line);
    }

    fn byte_char(&mut self, line: u32) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, "b'.'".into(), line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        // Integer / prefix part (also eats hex/oct/bin digits + suffixes).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part — but not the `..` of a range expression.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokKind::Literal, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r#"
            let x = "Instant::now() unwrap()"; // Instant::now in comment
            /* HashMap */
            let y = 'u'; let z: &'static str = "s";
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"static".to_string()) || !ids.is_empty());
        let out = lex(src);
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains("Instant::now in comment"));
        assert!(!out.comments[0].doc);
    }

    #[test]
    fn doc_comments_are_tagged() {
        let src = "/// doc line\n//! inner doc\n//// plain\n// plain\n\
                   /** doc block */\n/*! inner doc block */\n/* plain block */\n/**/\n";
        let docs: Vec<bool> = lex(src).comments.iter().map(|c| c.doc).collect();
        assert_eq!(
            docs,
            vec![true, true, false, false, true, true, false, false]
        );
    }

    #[test]
    fn nested_block_comments_consume_to_the_outer_close() {
        // Everything through the *outer* `*/` is comment; the unwrap
        // afterwards is real code and must produce tokens.
        let src = "/* outer /* inner */ still a comment */ x.unwrap()";
        let out = lex(src);
        let ids = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(ids, vec!["x", "unwrap"]);
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("inner"));
    }

    #[test]
    fn multiline_raw_strings_track_lines_and_stay_opaque() {
        // A raw string spanning lines must not hide following code, and
        // line numbers after it must stay correct.
        let src = "let s = r#\"line one\nunwrap() in a string\n\"quoted\"\"#;\nlet t = 1;";
        let out = lex(src);
        let ids: Vec<(&str, u32)> = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(ids, vec![("let", 1), ("s", 1), ("let", 4), ("t", 4)]);
    }

    #[test]
    fn raw_strings_with_more_closing_hashes_terminate_correctly() {
        // `r#".."#` closed by exactly one hash even when more hashes and
        // quotes appear inside.
        let src = r###"let s = r##"a "# b"##; let u = done;"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "u", "done"]);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let src = r##"let s = r#"unwrap() "quoted" HashMap"#; let t = unwrap;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "t", "unwrap"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }";
        let out = lex(src);
        let lifetimes: Vec<_> = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn double_colon_folds() {
        let out = lex("Instant::now()");
        let texts: Vec<_> = out.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Instant", "::", "now", "(", ")"]);
    }

    #[test]
    fn ranges_do_not_confuse_numbers() {
        let out = lex("for i in 0..10 { a[i] = 2.5; }");
        let lits: Vec<_> = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["0", "10", "2.5"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let out = lex("a\nb\n\nc");
        let lines: Vec<_> = out.toks.iter().map(|t| (t.text.as_str(), t.line)).collect();
        assert_eq!(lines, vec![("a", 1), ("b", 2), ("c", 4)]);
    }
}
