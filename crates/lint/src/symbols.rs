//! Per-file symbol extraction: the facts the interprocedural lints need.
//!
//! One pass over a file's token stream produces a [`FileSummary`] — the
//! functions it defines (free functions, inherent and trait-impl
//! methods, trait default methods, and functions nested in other
//! bodies) together with, for each function:
//!
//! * every *call site* in its body (`f(..)`, `path::f(..)`, `.m(..)`),
//!   with closure bodies attributed to the enclosing function — a call
//!   made inside a closure is an edge from the function that owns the
//!   closure, which is how dynamic VSF swaps and iterator chains stay
//!   visible to reachability;
//! * every *allocation site* (the same pattern set as the per-file A1
//!   lint) not suppressed by `lint:allow(hot-alloc | alloc-reach)`;
//! * every *panic site* (the P1 pattern set: `unwrap`/`expect`,
//!   `panic!`-family macros, `expr[..]` indexing) not suppressed by
//!   `lint:allow(panic | panic-reach)`;
//! * its interprocedural annotations: `// lint:no-alloc` (A2 root),
//!   `// lint:serial-only` (S1 forbidden target), and
//!   `// lint:parallel-phase` (S1 root).
//!
//! Summaries are cheap to serialize, which is what makes the file-hash
//! keyed cache ([`crate::cache`]) possible: the interprocedural phase
//! only ever consumes summaries, never source text.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::lints::{
    alloc_pattern, collect_allows, find_test_spans, is_expr_tail, match_brace, next_is, prev_is,
    seq,
};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee name (the identifier before the `(`).
    pub name: String,
    pub line: u32,
    /// `.name(..)` — method-call syntax.
    pub method: bool,
    /// `Qualifier::name(..)` — the path segment before the final `::`.
    pub qualifier: Option<String>,
    /// Call site carries `// lint:alloc-free-callee`: the callee has
    /// been audited not to allocate; A2 neither flags nor traverses it.
    pub assume_alloc_free: bool,
    /// Call site carries `lint:allow(phase-discipline)`.
    pub allow_phase: bool,
    /// Call site carries `lint:allow(alloc-reach)`: the callee's cone is
    /// a justified cold branch (rare control messages, crash recovery)
    /// exempt from the no-alloc contract — A2 does not traverse it.
    pub allow_alloc_reach: bool,
}

/// A direct allocation or panic site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// What fired (`format!`, `.clone()`, `.unwrap()`, `indexing`, ...).
    pub what: String,
    pub line: u32,
}

/// One function definition and its locally-derived facts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnSym {
    pub name: String,
    /// Self type of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// Trait name for `impl Trait for Type` methods and for trait
    /// declaration (default) methods.
    pub trait_name: Option<String>,
    pub line: u32,
    /// Inside a `#[cfg(test)]` module or `#[test]` item.
    pub is_test: bool,
    /// A2 root: name ends in `_into` or fn carries `// lint:no-alloc`.
    pub no_alloc_root: bool,
    /// S1 forbidden target: fn carries `// lint:serial-only`.
    pub serial_only: bool,
    /// S1 root: fn carries `// lint:parallel-phase`.
    pub parallel_root: bool,
    pub calls: Vec<Call>,
    pub allocs: Vec<Site>,
    pub panics: Vec<Site>,
}

/// Everything the interprocedural phase needs to know about one file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileSummary {
    /// Crate directory name under `crates/`.
    pub krate: String,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    pub fns: Vec<FnSym>,
}

/// Marker comment lines (non-doc) containing `needle`, for annotations
/// that bind to the first `fn` within the next three lines.
fn marker_lines(comments: &[Comment], needle: &str) -> Vec<u32> {
    comments
        .iter()
        .filter(|c| !c.doc && c.text.contains(needle))
        .map(|c| c.line)
        .collect()
}

/// Does any marker in `markers` bind to a `fn` token on `fn_line`?
/// Same window as the per-file A1 marker: the three lines above
/// (attributes may sit between), first-fn-wins semantics are enforced
/// by the caller passing fn lines in order.
fn marker_binds(markers: &[u32], bound: &mut [bool], fn_line: u32) -> bool {
    let mut hit = false;
    for (m, used) in markers.iter().zip(bound.iter_mut()) {
        if !*used && fn_line > *m && fn_line <= *m + 3 {
            *used = true;
            hit = true;
        }
    }
    hit
}

/// Keywords that can directly precede a `(` without being a call.
fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "move"
            | "as"
            | "in"
            | "let"
            | "else"
            | "fn"
            | "pub"
            | "crate"
            | "super"
            | "self"
            | "where"
            | "break"
            | "continue"
            | "yield"
            | "await"
            | "box"
            | "ref"
            | "mut"
            | "dyn"
            | "impl"
            | "unsafe"
            | "const"
            | "static"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "union"
            | "trait"
            | "type"
    )
}

/// CamelCase names in call position are tuple-struct / enum-variant
/// constructors (`EnbId(0)`, `Some(x)`): stack moves, never heap.
fn is_constructor_name(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_uppercase())
}

#[derive(Debug)]
struct ImplSpan {
    /// Token index range of the block body (inclusive of braces).
    start: usize,
    end: usize,
    type_name: Option<String>,
    trait_name: Option<String>,
}

/// Parse the header of an `impl` or `trait` item starting at token `i`
/// (the keyword itself) and return its body span + names.
fn parse_impl_or_trait(toks: &[Tok], i: usize) -> Option<ImplSpan> {
    let is_trait = toks[i].text == "trait";
    let mut k = i + 1;
    // Skip `<...>` generics, minding `->` inside bounds (`Fn() -> T`).
    let skip_generics = |k: &mut usize| {
        if next_is(toks, *k, "<") {
            let mut depth = 0i32;
            while *k < toks.len() {
                match toks[*k].text.as_str() {
                    "<" => depth += 1,
                    ">" if !prev_is(toks, *k, "-") => {
                        depth -= 1;
                        if depth == 0 {
                            *k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                *k += 1;
            }
        }
    };
    skip_generics(&mut k);
    // Path up to `for`, `where` or `{`: remember the last plain ident.
    let take_path = |k: &mut usize| -> Option<String> {
        let mut last = None;
        while *k < toks.len() {
            let t = &toks[*k];
            match t.text.as_str() {
                "for" | "where" | "{" | ";" => break,
                "<" => skip_generics(k),
                _ => {
                    if t.kind == TokKind::Ident {
                        last = Some(t.text.clone());
                    }
                    *k += 1;
                }
            }
        }
        last
    };
    let first = take_path(&mut k);
    let (type_name, trait_name) = if is_trait {
        (None, first)
    } else if next_is(toks, k, "for") {
        k += 1;
        let ty = take_path(&mut k);
        (ty, first)
    } else {
        (first, None)
    };
    // Skip a `where` clause, then span the body.
    while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
        k += 1;
    }
    if !next_is(toks, k, "{") {
        return None; // `impl Trait for Type;` — no body, nothing to scan.
    }
    let (_, end) = match_brace(toks, k);
    Some(ImplSpan {
        start: k,
        end,
        type_name,
        trait_name,
    })
}

/// Extract the symbol summary for one file.
pub fn summarize(krate: &str, file: &str, src: &str) -> FileSummary {
    let out = lex(src);
    let toks = &out.toks;
    let allows = collect_allows(&out.comments);
    let allowed = |keys: &[&str], line: u32| {
        allows
            .iter()
            .any(|(l, k)| (*l == line || *l + 1 == line) && keys.iter().any(|key| k == key))
    };
    let test_spans = find_test_spans(toks);
    let in_test = |line: u32| test_spans.iter().any(|(a, b)| (*a..=*b).contains(&line));

    // Impl / trait blocks (possibly nested in fn bodies — rare but legal).
    let mut impls: Vec<ImplSpan> = Vec::new();
    {
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident && (t.text == "impl" || t.text == "trait") {
                // `impl` in type position (`impl Trait` as return/arg
                // type) has no body brace before the next `;`/`{` of an
                // fn — parse_impl_or_trait handles that by returning the
                // nearest brace, which for type-position `impl` would be
                // the *function* body. Filter: type-position `impl`
                // directly follows `->`, `:`, `(`, `,`, `=`, `&`, `<`
                // or `+`.
                let type_position = i > 0
                    && matches!(
                        toks[i - 1].text.as_str(),
                        "->" | ":" | "(" | "," | "=" | "&" | "<" | "+" | ">"
                    );
                if !type_position {
                    if let Some(span) = parse_impl_or_trait(toks, i) {
                        impls.push(span);
                    }
                }
            }
            i += 1;
        }
    }

    // Function definitions: every `fn` token, with its body span.
    // Nested fns get their own symbol; tokens are attributed to the
    // *innermost* enclosing body, so closure bodies belong to the
    // enclosing fn while nested fn bodies do not.
    let no_alloc_markers = marker_lines(&out.comments, "lint:no-alloc");
    let serial_markers = marker_lines(&out.comments, "lint:serial-only");
    let parallel_markers = marker_lines(&out.comments, "lint:parallel-phase");
    let mut no_alloc_bound = vec![false; no_alloc_markers.len()];
    let mut serial_bound = vec![false; serial_markers.len()];
    let mut parallel_bound = vec![false; parallel_markers.len()];

    struct RawFn {
        sym: FnSym,
        body: Option<(usize, usize)>, // token span inclusive of braces
    }
    let mut fns: Vec<RawFn> = Vec::new();
    {
        let mut i = 0;
        while i < toks.len() {
            if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue; // `fn(` pointer type
                };
                let fn_line = toks[i].line;
                let (impl_type, trait_name) = impls
                    .iter()
                    .filter(|s| s.start < i && i < s.end)
                    .min_by_key(|s| s.end - s.start)
                    .map(|s| (s.type_name.clone(), s.trait_name.clone()))
                    .unwrap_or((None, None));
                // Body: scan past the signature to `{` at paren depth 0
                // (`;` first = trait declaration without a body).
                let mut paren = 0i32;
                let mut angle = 0i32;
                let mut k = i + 2;
                let mut body = None;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "<" => angle += 1,
                        ">" if !prev_is(toks, k, "-") && angle > 0 => angle -= 1,
                        ";" if paren == 0 => break,
                        "{" if paren == 0 => {
                            let (_, end) = match_brace(toks, k);
                            body = Some((k, end));
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let name = name_tok.text.clone();
                let no_alloc_root = name.ends_with("_into")
                    || marker_binds(&no_alloc_markers, &mut no_alloc_bound, fn_line);
                let serial_only = marker_binds(&serial_markers, &mut serial_bound, fn_line);
                let parallel_root = marker_binds(&parallel_markers, &mut parallel_bound, fn_line);
                fns.push(RawFn {
                    sym: FnSym {
                        name,
                        impl_type,
                        trait_name,
                        line: fn_line,
                        is_test: in_test(fn_line),
                        no_alloc_root,
                        serial_only,
                        parallel_root,
                        calls: Vec::new(),
                        allocs: Vec::new(),
                        panics: Vec::new(),
                    },
                    body,
                });
            }
            i += 1;
        }
    }

    // Attribute every token to the innermost enclosing fn body.
    let bodies: Vec<Option<(usize, usize)>> = fns.iter().map(|f| f.body).collect();
    let owner_of = move |ti: usize| -> Option<usize> {
        bodies
            .iter()
            .enumerate()
            .filter_map(|(fi, b)| {
                b.filter(|(a, z)| *a < ti && ti < *z)
                    .map(|(a, z)| (fi, z - a))
            })
            .min_by_key(|(_, span)| *span)
            .map(|(fi, _)| fi)
    };

    // Attribute spans (`#[...]`): their idents (`cfg`, `allow`, `derive`)
    // look exactly like call syntax and must not become edges.
    let mut attr_spans: Vec<(usize, usize)> = Vec::new();
    {
        let mut i = 0;
        while i < toks.len() {
            if toks[i].text == "#" && next_is(toks, i + 1, "[") {
                let mut depth = 0usize;
                let mut j = i + 1;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                attr_spans.push((i, j));
                i = j + 1;
                continue;
            }
            i += 1;
        }
    }
    let in_attr = |ti: usize| attr_spans.iter().any(|(a, b)| (*a..=*b).contains(&ti));

    for i in 0..toks.len() {
        if in_attr(i) {
            continue;
        }
        let Some(fi) = owner_of(i) else { continue };
        let t = &toks[i];
        let line = t.line;

        // Indexing (panic site), same shape as P1.
        if t.text == "[" && i > 0 && is_expr_tail(&toks[i - 1]) {
            if !allowed(&["panic", "panic-reach"], line) {
                fns[fi].sym.panics.push(Site {
                    what: "indexing".into(),
                    line,
                });
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }

        // Panic sites (P1 pattern set).
        let panic_site = match t.text.as_str() {
            "unwrap" | "expect" if prev_is(toks, i, ".") && next_is(toks, i + 1, "(") => {
                Some(format!(".{}()", t.text))
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is(toks, i + 1, "!") => {
                Some(format!("{}!", t.text))
            }
            _ => None,
        };
        if let Some(what) = panic_site {
            if !allowed(&["panic", "panic-reach"], line) {
                fns[fi].sym.panics.push(Site { what, line });
            }
            continue; // a panic site is never also a call edge
        }

        // Allocation sites (A1 pattern set). A token the alloc detector
        // claims (`.clone()`, `.collect()`, ...) is *only* an alloc
        // site, never also a call edge — otherwise every `.clone()`
        // would additionally surface as an unresolvable call.
        if let Some(what) = alloc_pattern(toks, i) {
            if !allowed(&["hot-alloc", "alloc-reach"], line) {
                fns[fi].sym.allocs.push(Site {
                    what: what.into(),
                    line,
                });
            }
            continue;
        }

        // Call sites: `name(` that is not a macro, a definition, or a
        // keyword. `name::<T>(` turbofish is matched too.
        if !next_is(toks, i + 1, "(") && !seq(toks, i + 1, &["::", "<"]) {
            continue;
        }
        if next_is(toks, i + 1, "!") || is_keyword(&t.text) {
            continue;
        }
        if prev_is(toks, i, "fn") {
            continue; // the definition itself
        }
        // Turbofish: verify a `(` follows the closed `::<...>`.
        if seq(toks, i + 1, &["::", "<"]) {
            let mut depth = 0i32;
            let mut k = i + 2;
            let mut ok = false;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "<" => depth += 1,
                    ">" if !prev_is(toks, k, "-") => {
                        depth -= 1;
                        if depth == 0 {
                            ok = next_is(toks, k + 1, "(");
                            break;
                        }
                    }
                    "(" | ")" | "{" | "}" | ";" => break,
                    _ => {}
                }
                k += 1;
            }
            if !ok {
                continue;
            }
        }
        let method = prev_is(toks, i, ".");
        let qualifier = if prev_is(toks, i, "::") && i >= 2 && toks[i - 2].kind == TokKind::Ident {
            Some(toks[i - 2].text.clone())
        } else {
            None
        };
        if !method && qualifier.is_none() && is_constructor_name(&t.text) {
            continue; // `EnbId(0)`, `Some(x)` — tuple constructors
        }
        fns[fi].sym.calls.push(Call {
            name: t.text.clone(),
            line,
            method,
            qualifier,
            assume_alloc_free: out.comments.iter().any(|c| {
                // Same line, or a *standalone* comment on the line above
                // (a trailing comment audits only its own line's call).
                !c.doc
                    && c.text.contains("lint:alloc-free-callee")
                    && (c.line == line
                        || (c.line + 1 == line && !toks.iter().any(|t| t.line == c.line)))
            }),
            allow_phase: allowed(&["phase-discipline"], line),
            allow_alloc_reach: allowed(&["alloc-reach"], line),
        });
    }

    FileSummary {
        krate: krate.to_string(),
        file: file.to_string(),
        fns: fns.into_iter().map(|f| f.sym).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(src: &str) -> FileSummary {
        summarize("stack", "crates/stack/src/x.rs", src)
    }

    #[test]
    fn extracts_free_fns_methods_and_trait_impls() {
        let src = "
            fn free() {}
            struct S;
            impl S { fn inherent(&self) {} }
            trait T { fn required(&self); fn defaulted(&self) { self.required(); } }
            impl T for S { fn required(&self) {} }
        ";
        let s = sym(src);
        let names: Vec<(&str, Option<&str>, Option<&str>)> = s
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.impl_type.as_deref(),
                    f.trait_name.as_deref(),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, None),
                ("inherent", Some("S"), None),
                ("required", None, Some("T")),
                ("defaulted", None, Some("T")),
                ("required", Some("S"), Some("T")),
            ]
        );
        // The trait default method's call is attributed to it.
        let defaulted = &s.fns[3];
        assert_eq!(defaulted.calls.len(), 1);
        assert_eq!(defaulted.calls[0].name, "required");
        assert!(defaulted.calls[0].method);
    }

    #[test]
    fn closure_calls_attribute_to_enclosing_fn() {
        let src = "fn outer(v: &[u32]) -> u32 { v.iter().map(|x| helper(*x)).sum() }
                   fn helper(x: u32) -> u32 { x }";
        let s = sym(src);
        let outer = &s.fns[0];
        let callees: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(
            callees.contains(&"helper"),
            "closure call is an edge: {callees:?}"
        );
    }

    #[test]
    fn nested_fns_own_their_bodies() {
        let src = "fn outer() { fn inner() { alloc_here(); } inner(); }";
        let s = sym(src);
        assert_eq!(s.fns[0].name, "outer");
        assert_eq!(s.fns[1].name, "inner");
        let outer_calls: Vec<&str> = s.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        let inner_calls: Vec<&str> = s.fns[1].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_calls, vec!["inner"]);
        assert_eq!(inner_calls, vec!["alloc_here"]);
    }

    #[test]
    fn constructors_and_macros_are_not_calls() {
        let src = "fn f() { let a = Some(EnbId(3)); println!(\"x\"); g(); }";
        let s = sym(src);
        let calls: Vec<&str> = s.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["g"]);
    }

    #[test]
    fn qualified_calls_record_their_qualifier() {
        let src = "fn f() { WireWriter::with_capacity(9); x.encode_to(w); }";
        let s = sym(src);
        let c = &s.fns[0].calls;
        assert_eq!(c[0].qualifier.as_deref(), Some("WireWriter"));
        assert!(!c[0].method);
        assert_eq!(c[1].name, "encode_to");
        assert!(c[1].method);
    }

    #[test]
    fn roots_and_phase_markers_bind() {
        let src = "fn fill_into(out: &mut [u8]) {}
                   // lint:no-alloc
                   fn hot() {}
                   // lint:serial-only
                   fn barrier() {}
                   // lint:parallel-phase
                   fn slot() {}
                   fn plain() {}";
        let s = sym(src);
        assert!(s.fns[0].no_alloc_root, "_into suffix");
        assert!(s.fns[1].no_alloc_root, "marker");
        assert!(s.fns[2].serial_only);
        assert!(s.fns[3].parallel_root);
        let plain = &s.fns[4];
        assert!(!plain.no_alloc_root && !plain.serial_only && !plain.parallel_root);
    }

    #[test]
    fn sites_respect_reach_allows() {
        let src = "fn f(v: &[u8]) {
            let a = v[0];
            let b = v[1]; // lint:allow(panic-reach) bounds checked above
            let s = x.to_vec();
            let t = x.to_vec(); // lint:allow(alloc-reach) cold path
        }";
        let s = sym(src);
        assert_eq!(s.fns[0].panics.len(), 1);
        assert_eq!(s.fns[0].panics[0].line, 2);
        assert_eq!(s.fns[0].allocs.len(), 1);
        assert_eq!(s.fns[0].allocs[0].line, 4);
    }

    #[test]
    fn alloc_free_callee_marks_the_call() {
        let src = "fn f() {
            audited(); // lint:alloc-free-callee verified by allocgate
            unaudited();
        }";
        let s = sym(src);
        assert!(s.fns[0].calls[0].assume_alloc_free);
        assert!(!s.fns[0].calls[1].assume_alloc_free);
    }

    #[test]
    fn doc_comment_markers_do_not_bind() {
        let src = "/// Call sites may carry `// lint:no-alloc` markers.\nfn documented() {}";
        let s = sym(src);
        assert!(!s.fns[0].no_alloc_root);
    }

    #[test]
    fn test_fns_are_tagged() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} }\nfn runtime() {}";
        let s = sym(src);
        assert!(s.fns[0].is_test);
        assert!(!s.fns[1].is_test);
    }
}
