//! The experiment runner: regenerates the paper's tables and figures.
//!
//! ```sh
//! # everything, full durations (writes target/experiments/):
//! cargo run --release -p flexran-bench --bin experiments -- all
//! # one experiment:
//! cargo run --release -p flexran-bench --bin experiments -- fig9
//! # smoke mode:
//! cargo run --release -p flexran-bench --bin experiments -- all --quick
//! ```

use std::time::Instant;

use flexran_bench::experiments::{self, ALL};
use flexran_bench::ExpContext;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_dir = "target/experiments".to_string();
    let mut seeds_override = None;
    let mut ttis_override = None;
    let mut shards_override = None;
    let mut ids: Vec<String> = Vec::new();
    // A proper little parser: flags that take a value consume it, so a
    // value like "8" is never mistaken for an experiment id.
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
                .clone()
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_dir = value("--out"),
            "--seeds" => {
                seeds_override = Some(value("--seeds").parse().expect("--seeds takes a number"))
            }
            "--ttis" => {
                ttis_override = Some(value("--ttis").parse().expect("--ttis takes a number"))
            }
            "--shards" => {
                shards_override = Some(
                    value("--shards")
                        .parse()
                        .expect("--shards takes a shard count (0 = one per agent)"),
                )
            }
            other if other.starts_with("--") => {
                panic!("unknown flag '{other}' (flags: --quick --out DIR --seeds N --ttis N --shards N)")
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    // Deduplicate shared runners (fig7a/fig7b, fig10a/fig10b run together).
    let runner_key = |id: &str| -> String {
        match id {
            "fig7a" | "fig7b" => "fig7".to_string(),
            "fig10a" | "fig10b" => "fig10".to_string(),
            other => other.to_string(),
        }
    };
    let mut seen_runners = std::collections::HashSet::new();

    let mut ctx = ExpContext::new(quick, &out_dir);
    ctx.seeds_override = seeds_override;
    ctx.ttis_override = ttis_override;
    ctx.shards_override = shards_override;
    println!(
        "FlexRAN experiment suite — mode: {}, output: {out_dir}/",
        if quick { "quick" } else { "full" }
    );
    let mut report = String::from("# FlexRAN experiment report\n\n");
    report.push_str(&format!(
        "Mode: {}. Every experiment regenerates one table/figure of the paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured discussion.\n\n",
        if quick { "quick (reduced durations)" } else { "full" }
    ));
    let mut json_results = Vec::new();
    let t_all = Instant::now();
    for id in &ids {
        if !seen_runners.insert(runner_key(id)) {
            continue;
        }
        let t0 = Instant::now();
        let results = experiments::run(id, &ctx);
        let dt = t0.elapsed();
        for res in results {
            println!("{}", res.to_text());
            report.push_str(&res.to_markdown());
            json_results.push(res.to_json());
        }
        println!("[{id} done in {dt:.1?}]\n");
    }
    std::fs::write(format!("{out_dir}/report.md"), &report).expect("write report");
    let json = serde_json::json!({
        "quick": quick,
        "results": json_results,
    });
    std::fs::write(
        format!("{out_dir}/results.json"),
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results.json");
    println!(
        "all experiments done in {:.1?}; report at {out_dir}/report.md",
        t_all.elapsed()
    );
}
