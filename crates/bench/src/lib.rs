//! # flexran-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§5 system evaluation, §6 use cases), each regenerating the
//! corresponding result against this repository's implementation.
//!
//! Run everything: `cargo run --release -p flexran-bench --bin
//! experiments -- all` — writes CSV series plus `report.md` and
//! `results.json` under `target/experiments/`. Individual experiments run
//! by id (`fig7a`, `table2`, ...); `--quick` shrinks durations for smoke
//! runs (the `experiments_all` bench target uses it).
//!
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured for
//! each experiment.

pub mod experiments;

use std::fmt::Write as _;
use std::path::PathBuf;

/// Heap-traffic accounting for the perf experiments: every binary and
/// test in this crate runs under a counting wrapper around the system
/// allocator, so `experiments scale` can report allocations per TTI and
/// assert the schedulers' zero-steady-state-allocation contract.
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        // Per-thread allocation count for concurrent measurements
        // (campaign runs execute on a worker pool; the process-global
        // counter would blame one run for its neighbours' churn).
        // `const` init: the TLS slot must not itself allocate lazily,
        // or the first counted allocation would recurse.
        static THREAD_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// The counting allocator. Counts `alloc`/`realloc` calls and bytes;
    /// frees are not tracked (the experiments care about allocation
    /// *churn*, not footprint).
    pub struct CountingAllocator;

    // SAFETY: delegates every operation to `System`; the counters are
    // plain relaxed atomics with no allocation of their own.
    unsafe impl GlobalAlloc for CountingAllocator {
        // SAFETY: same contract as the caller's — `layout` is passed
        // through to `System.alloc` unchanged.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            // `try_with`: TLS may already be torn down during thread
            // exit; losing those few counts is fine, aborting is not.
            let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
            // SAFETY: forwarding the caller's obligations verbatim.
            unsafe { System.alloc(layout) }
        }

        // SAFETY: `ptr`/`layout` come from a prior `alloc` on `System`
        // (every path above delegates there), so the pair is valid.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: forwarding the caller's obligations verbatim.
            unsafe { System.dealloc(ptr, layout) }
        }

        // SAFETY: same contract as the caller's — all arguments are
        // passed through to `System.realloc` unchanged.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
            // SAFETY: forwarding the caller's obligations verbatim.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Allocation calls since process start.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Bytes requested since process start.
    pub fn allocated_bytes() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }

    /// Allocation calls made by the *calling thread* since it started.
    /// This is the counter the campaign orchestrator's
    /// [`flexran_campaign::alloc_probe`] gets registered with.
    pub fn thread_allocations() -> u64 {
        THREAD_ALLOCS.try_with(std::cell::Cell::get).unwrap_or(0)
    }

    /// Allocation calls and bytes spent running `f`.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
        let (a0, b0) = (allocations(), allocated_bytes());
        let r = f();
        (r, allocations() - a0, allocated_bytes() - b0)
    }
}

#[global_allocator]
static GLOBAL: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

/// Shared experiment context: scaling and output sinks.
pub struct ExpContext {
    /// Shrink durations (smoke mode).
    pub quick: bool,
    pub out_dir: PathBuf,
    /// CLI override for seed-sweep experiments (`--seeds N`).
    pub seeds_override: Option<u64>,
    /// CLI override for run length (`--ttis N`).
    pub ttis_override: Option<u64>,
    /// CLI override for control-plane shard count (`--shards N`);
    /// `Some(0)` means one shard per agent.
    pub shards_override: Option<usize>,
}

impl ExpContext {
    pub fn new(quick: bool, out_dir: impl Into<PathBuf>) -> Self {
        let out_dir = out_dir.into();
        std::fs::create_dir_all(&out_dir).expect("create output directory");
        ExpContext {
            quick,
            out_dir,
            seeds_override: None,
            ttis_override: None,
            shards_override: None,
        }
    }

    /// Pick a duration by mode.
    pub fn ttis(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Persist a CSV artifact.
    pub fn write_csv(&self, name: &str, content: &str) {
        let path = self.out_dir.join(format!("{name}.csv"));
        std::fs::write(&path, content).expect("write csv");
    }
}

/// One experiment's outcome: a rendered table plus machine-readable rows.
pub struct ExpResult {
    pub id: &'static str,
    pub title: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (stringified).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper comparison, caveats).
    pub notes: Vec<String>,
}

impl ExpResult {
    pub fn new(id: &'static str, title: &'static str, headers: &[&str]) -> Self {
        ExpResult {
            id,
            title,
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged row in {}", self.id);
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} — {} ==", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(s, "{}", fmt_row(&self.headers, &widths));
        for row in &self.rows {
            let _ = writeln!(s, "{}", fmt_row(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(s, "note: {n}");
        }
        s
    }

    /// Render as a markdown table section.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## {} — {}\n", self.id, self.title);
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        for n in &self.notes {
            let _ = writeln!(s, "\n*{n}*");
        }
        s.push('\n');
        s
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "id": self.id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        })
    }
}

/// CSV assembly helper.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = headers.join(",");
    s.push('\n');
    for row in rows {
        s.push_str(&row.join(","));
        s.push('\n');
    }
    s
}

/// Format a float with sensible precision for tables.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_rendering() {
        let mut r = ExpResult::new("figX", "demo", &["a", "b"]);
        r.row(vec!["1".into(), "2.50".into()]);
        r.note("a note");
        let text = r.to_text();
        assert!(text.contains("figX"));
        assert!(text.contains("2.50"));
        let md = r.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("*a note*"));
        let j = r.to_json();
        assert_eq!(j["rows"][0][1], "2.50");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut r = ExpResult::new("figX", "demo", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn context_scales() {
        let dir = std::env::temp_dir().join("flexran-bench-test");
        let ctx = ExpContext::new(true, &dir);
        assert_eq!(ctx.ttis(10_000, 500), 500);
        let ctx = ExpContext::new(false, &dir);
        assert_eq!(ctx.ttis(10_000, 500), 10_000);
        ctx.write_csv("smoke", "a,b\n1,2\n");
        assert!(dir.join("smoke.csv").exists());
    }
}
