//! The experiment registry: every table and figure of the paper, by id.

pub mod ablations;
pub mod chaos;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod outage;
pub mod rollout;
pub mod scale;
pub mod sec54;
pub mod table2;

use flexran::agent::AgentConfig;
use flexran::harness::{SimConfig, SimHarness};
use flexran::prelude::*;
use flexran::proto::{ReportConfig, ReportFlags, ReportType};
use flexran::sim::link::LinkConfig;

use crate::{ExpContext, ExpResult};

/// Every experiment id, in paper order.
pub const ALL: &[&str] = &[
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8",
    "fig9",
    "sec54",
    "fig10a",
    "fig10b",
    "table2",
    "fig11a",
    "fig11b",
    "fig12a",
    "fig12b",
    "ablation-reporting",
    "ablation-dci-budget",
    "ablation-bler-target",
    "outage",
    "rollout",
    "scale",
    "allocgate",
    "chaos",
];

/// Run one experiment id (some ids share a runner and return together).
pub fn run(id: &str, ctx: &ExpContext) -> Vec<ExpResult> {
    match id {
        "fig6a" => vec![fig6::fig6a(ctx)],
        "fig6b" => vec![fig6::fig6b(ctx)],
        "fig7a" | "fig7b" => fig7::fig7(ctx),
        "fig8" => vec![fig8::fig8(ctx)],
        "fig9" => vec![fig9::fig9(ctx)],
        "sec54" => vec![sec54::sec54(ctx)],
        "fig10a" | "fig10b" => fig10::fig10(ctx),
        "table2" => vec![table2::table2(ctx)],
        "fig11a" => vec![fig11::fig11(ctx, true)],
        "fig11b" => vec![fig11::fig11(ctx, false)],
        "fig12a" => vec![fig12::fig12a(ctx)],
        "fig12b" => vec![fig12::fig12b(ctx)],
        "ablation-reporting" => vec![ablations::ablation_reporting(ctx)],
        "ablation-dci-budget" => vec![ablations::ablation_dci_budget(ctx)],
        "ablation-bler-target" => vec![ablations::ablation_bler_target(ctx)],
        "outage" => vec![outage::outage(ctx)],
        "rollout" => vec![rollout::rollout(ctx)],
        "scale" => vec![scale::scale(ctx)],
        "allocgate" => vec![scale::allocgate(ctx)],
        "chaos" => vec![chaos::chaos(ctx)],
        other => panic!("unknown experiment id '{other}' (available: {ALL:?})"),
    }
}

// ----------------------------------------------------------------------
// Shared builders
// ----------------------------------------------------------------------

/// Agent configuration for centralized-scheduling experiments: no local
/// data scheduler, per-TTI subframe sync.
pub fn remote_agent_config() -> AgentConfig {
    AgentConfig {
        initial_dl_scheduler: Some("remote-stub".into()),
        sync_period: 1,
        ..AgentConfig::default()
    }
}

/// A harness whose control links have the given symmetric one-way delay.
pub fn sim_with_rtt(rtt_ms: u64) -> SimHarness {
    let cfg = SimConfig {
        uplink: LinkConfig::with_one_way_ms(rtt_ms / 2),
        downlink: LinkConfig::with_one_way_ms(rtt_ms - rtt_ms / 2),
        ..SimConfig::default()
    };
    SimHarness::new(cfg)
}

/// Subscribe the master to full statistics from `enb`.
pub fn subscribe_stats(sim: &mut SimHarness, enb: EnbId, period: u32) {
    let _ = sim.master_mut().request_stats(
        enb,
        ReportConfig {
            report_type: ReportType::Periodic { period },
            flags: ReportFlags::ALL,
        },
    );
}

/// Mb/s from a cumulative bit counter over a TTI window.
pub fn mbps(bits: u64, ttis: u64) -> f64 {
    bits as f64 / ttis.max(1) as f64 / 1000.0
}
