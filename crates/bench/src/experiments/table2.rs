//! Table 2 — max TCP throughput and max sustainable DASH bitrate per CQI
//! (paper §6.2).
//!
//! For each fixed CQI the paper measures (a) the maximum achievable TCP
//! throughput of a COTS UE and (b) the highest DASH representation that
//! never freezes. Reproduced with the NewReno flow model and the DASH
//! client over the simulated bearer. The paper's observation to verify:
//! the sustainable bitrate sits clearly *below* the TCP throughput
//! ("the TCP throughput needs to be greater (even double) than the video
//! bitrate").

use flexran::agent::AgentConfig;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::dash::{DashClient, DashConfig, FixedAbr};
use flexran::sim::tcp::{TcpFlow, TcpParams};

use crate::{csv, f2, ExpContext, ExpResult};

fn sim_with_fixed_cqi(cqi: u8) -> (SimHarness, UeId) {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(cqi));
    sim.run(100); // attach
    (sim, ue)
}

/// Steady-state TCP download throughput at a fixed CQI.
fn tcp_throughput(cqi: u8, ctx: &ExpContext) -> f64 {
    let (mut sim, ue) = sim_with_fixed_cqi(cqi);
    let mut tcp = TcpFlow::new(TcpParams::default());
    let warmup = ctx.ttis(4_000, 1_500);
    let window = ctx.ttis(10_000, 3_000);
    let mut measured_start = 0u64;
    for i in 0..warmup + window {
        let stats = sim.ue_stats(ue).expect("attached");
        let inject = tcp.on_tti(
            sim.now(),
            stats.dl_queue_bytes,
            stats.dl_delivered_bits,
            true,
        );
        if !inject.is_zero() {
            sim.inject_dl(ue, inject).unwrap();
        }
        sim.step();
        if i == warmup {
            measured_start = sim.ue_stats(ue).unwrap().dl_delivered_bits;
        }
    }
    let end = sim.ue_stats(ue).unwrap().dl_delivered_bits;
    (end - measured_start) as f64 / window as f64 / 1000.0
}

/// The DASH representation ladder probed for sustainability — the union
/// of the paper's two test videos.
fn ladder() -> Vec<f64> {
    vec![1.2, 1.4, 2.0, 2.9, 4.0, 4.9, 7.3, 9.6, 14.6]
}

/// Whether a fixed bitrate level streams without freezes at this CQI.
fn sustainable(cqi: u8, level: usize, ctx: &ExpContext) -> bool {
    let (mut sim, ue) = sim_with_fixed_cqi(cqi);
    let cfg = DashConfig {
        ladder: ladder().into_iter().map(BitRate::from_mbps_f64).collect(),
        segment_s: 2.0,
        buffer_max_s: 25.0,
        startup_buffer_s: 2.0,
        tcp: TcpParams::default(),
    };
    let mut client = DashClient::new(cfg, Box::new(FixedAbr(level)));
    for _ in 0..ctx.ttis(40_000, 12_000) {
        let stats = sim.ue_stats(ue).expect("attached");
        let inject = client.on_tti(sim.now(), stats.dl_queue_bytes, stats.dl_delivered_bits);
        if !inject.is_zero() {
            sim.inject_dl(ue, inject).unwrap();
        }
        sim.step();
    }
    client.rebuffer_events == 0 && client.segments_completed >= 3
}

/// Highest sustainable ladder bitrate (binary scan bottom-up).
fn max_sustainable(cqi: u8, tcp_mbps: f64, ctx: &ExpContext) -> f64 {
    let l = ladder();
    let mut best = 0.0;
    for (i, bitrate) in l.iter().enumerate() {
        // No level above the TCP ceiling can possibly sustain; skip the
        // expensive probe (the probe would confirm the freeze anyway).
        if *bitrate > tcp_mbps * 1.05 {
            break;
        }
        if sustainable(cqi, i, ctx) {
            best = *bitrate;
        } else {
            break;
        }
    }
    best
}

pub fn table2(ctx: &ExpContext) -> ExpResult {
    let mut r = ExpResult::new(
        "table2",
        "max TCP throughput and max sustainable DASH bitrate per CQI (paper Table 2)",
        &[
            "CQI",
            "TCP Mb/s",
            "sustainable Mb/s",
            "ratio",
            "paper TCP",
            "paper sustainable",
        ],
    );
    let paper = [
        (2u8, 1.63, 1.4),
        (3, 2.2, 2.0),
        (4, 3.3, 2.9),
        (10, 15.0, 7.3),
    ];
    let mut rows = Vec::new();
    for (cqi, paper_tcp, paper_sus) in paper {
        let tcp = tcp_throughput(cqi, ctx);
        let sus = max_sustainable(cqi, tcp, ctx);
        let row = vec![
            cqi.to_string(),
            f2(tcp),
            f2(sus),
            f2(sus / tcp.max(1e-9)),
            f2(paper_tcp),
            f2(paper_sus),
        ];
        r.row(row.clone());
        rows.push(row);
    }
    ctx.write_csv(
        "table2",
        &csv(
            &[
                "cqi",
                "tcp_mbps",
                "sustainable_mbps",
                "ratio",
                "paper_tcp",
                "paper_sustainable",
            ],
            &rows,
        ),
    );
    r.note("shape to hold: TCP throughput increases with CQI; sustainable bitrate strictly below TCP (paper ratios 0.49–0.91)");
    r
}
