//! The chaos gate: seeded fault schedules vs. the invariant oracles,
//! run as a `flexran-campaign` chaos campaign.
//!
//! This experiment is a thin campaign spec: it plans `--seeds`
//! independent chaos schedules of `--ttis` TTIs each (defaults: 32×5000
//! full, 4×1500 quick), fans them over the campaign worker pool, and
//! tolerates **zero** invariant violations. On a violation the runner
//! prints every offending oracle pin — exact `(config, seed, TTI)` for
//! a bit-identical replay — and aborts with a failure, so
//! `scripts/check.sh` can use this experiment as its chaos smoke gate.
//! Beyond the old sequential loop, the campaign also aggregates KPI
//! distributions (throughput, TTI latency, allocs/TTI) across the
//! seeds, turning the soak into a statistics-grade measurement.

use flexran_campaign::chaos::{run_chaos_campaign, ChaosCampaignSpec, ChaosVariant};
use flexran_campaign::{alloc_probe, CancelToken};

use crate::{alloc_counter, csv, ExpContext, ExpResult};

pub fn chaos(ctx: &ExpContext) -> ExpResult {
    let seeds = ctx.seeds_override.unwrap_or(if ctx.quick { 4 } else { 32 });
    let ttis = ctx.ttis_override.unwrap_or(ctx.ttis(5_000, 1_500));
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Per-run allocs/TTI KPI: the campaign probes this crate's counting
    // allocator through its thread-attributed counter.
    alloc_probe::register(alloc_counter::thread_allocations);

    let mut spec = ChaosCampaignSpec::new(seeds, ttis, workers);
    // Fleet-config rollouts ride the fault schedule too, so the
    // config-provenance oracle is exercised against corrupted canary
    // pushes, crashing canaries and mid-rollout master recoveries.
    spec.base.rollout_prob = 0.005;
    spec.variants = vec![match ctx.shards_override {
        None => ChaosVariant {
            label: "shards=1".to_string(),
            shards: flexran::prelude::ShardSpec::Auto,
        },
        Some(0) => ChaosVariant {
            label: "shards=per-agent".to_string(),
            shards: flexran::prelude::ShardSpec::PerAgent,
        },
        Some(n) => ChaosVariant {
            label: format!("shards={n}"),
            shards: flexran::prelude::ShardSpec::Fixed(n),
        },
    }];

    let mut res = ExpResult::new(
        "chaos",
        "Chaos soak: multi-layer fault schedules vs invariant oracles (campaign)",
        &[
            "config",
            "seed",
            "ttis",
            "agent crashes",
            "master crashes/recoveries",
            "stalls",
            "wire windows",
            "delegations",
            "rollouts",
            "violations",
            "digest",
        ],
    );

    let report = run_chaos_campaign(&spec, &CancelToken::new(), &mut |_| {});
    for r in report.completed() {
        let counter = |name: &str| -> u64 {
            r.counters
                .iter()
                .find(|(k, _)| *k == name)
                .map_or(0, |(_, v)| *v)
        };
        res.row(vec![
            r.label.clone(),
            r.seed.to_string(),
            ttis.to_string(),
            counter("agent_crashes").to_string(),
            format!(
                "{}/{}",
                counter("master_crashes"),
                counter("master_restarts")
            ),
            counter("stalls").to_string(),
            counter("wire_windows").to_string(),
            counter("delegations").to_string(),
            counter("rollouts").to_string(),
            r.violations_total.to_string(),
            format!("{:016x}", r.digest),
        ]);
    }

    res.note(format!(
        "{seeds} seeds × {ttis} TTIs ({} sharding) on {} campaign workers, zero \
         tolerated violations. Oracles: failover legality, PRB capacity, HARQ \
         monotonicity, RIB↔stack consistency, command conservation, decision \
         sanity, shard ownership, budget-monitor consistency, config \
         provenance. Any violation pins (config, seed, TTI) for exact replay.",
        spec.variants
            .first()
            .map_or("shards=1", |v| v.label.as_str()),
        report.workers,
    ));
    for (name, d) in report.kpi_distributions() {
        res.note(format!(
            "kpi {name}: n={} mean={:.3}±{:.3} p50={:.3} p95={:.3} p99={:.3}",
            d.n, d.mean, d.ci95, d.p50, d.p95, d.p99
        ));
    }
    ctx.write_csv(
        "chaos",
        &csv(
            &res.headers.iter().map(String::as_str).collect::<Vec<_>>(),
            &res.rows,
        ),
    );
    std::fs::write(
        ctx.out_dir.join("campaign_chaos.json"),
        serde_json::to_string_pretty(&report.to_json()).expect("serialize campaign report"),
    )
    .expect("write campaign_chaos.json");

    if !report.pass() {
        for pin in report.pins() {
            eprintln!("{pin}");
        }
        panic!(
            "chaos gate failed: {} invariant violation(s), {} skipped run(s) across \
             {seeds} seeds",
            report.violations_total(),
            report.skipped(),
        );
    }
    res
}
