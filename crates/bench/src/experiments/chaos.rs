//! The chaos gate: seeded fault schedules vs. the invariant oracles.
//!
//! Runs `--seeds` independent chaos schedules of `--ttis` TTIs each
//! (defaults: 32×5000 full, 4×1500 quick) and tolerates **zero**
//! invariant violations. On a violation the runner prints every
//! offending oracle report — each pins the exact seed and TTI for a
//! bit-identical replay — and aborts with a failure, so `scripts/check.sh`
//! can use this experiment as its chaos smoke gate.

use flexran::prelude::ShardSpec;
use flexran_chaos::{run_chaos, ChaosConfig};

use crate::{csv, ExpContext, ExpResult};

pub fn chaos(ctx: &ExpContext) -> ExpResult {
    let seeds = ctx.seeds_override.unwrap_or(if ctx.quick { 4 } else { 32 });
    let ttis = ctx.ttis_override.unwrap_or(ctx.ttis(5_000, 1_500));
    let shards = match ctx.shards_override {
        None => ShardSpec::Auto,
        Some(0) => ShardSpec::PerAgent,
        Some(n) => ShardSpec::Fixed(n),
    };
    let mut res = ExpResult::new(
        "chaos",
        "Chaos soak: multi-layer fault schedules vs invariant oracles",
        &[
            "seed",
            "ttis",
            "agent crashes",
            "master crashes/recoveries",
            "stalls",
            "wire windows",
            "delegations",
            "violations",
        ],
    );
    let mut failures: Vec<String> = Vec::new();
    for seed in 0..seeds {
        let report = run_chaos(&ChaosConfig {
            seed,
            ttis,
            shards,
            ..ChaosConfig::default()
        });
        res.row(vec![
            seed.to_string(),
            ttis.to_string(),
            report.faults.agent_crashes.to_string(),
            format!(
                "{}/{}",
                report.faults.master_crashes, report.faults.master_restarts
            ),
            report.faults.stalls.to_string(),
            report.faults.wire_windows.to_string(),
            report.faults.delegations.to_string(),
            report.violations_total.to_string(),
        ]);
        failures.extend(report.violations.iter().map(|v| v.to_string()));
    }
    res.note(format!(
        "{seeds} seeds × {ttis} TTIs ({shards:?} sharding), zero tolerated violations. \
         Oracles: failover legality, PRB capacity, HARQ monotonicity, RIB↔stack \
         consistency, command conservation, decision sanity, shard ownership, \
         budget-monitor consistency. Any violation pins (seed, TTI) for exact replay."
    ));
    ctx.write_csv(
        "chaos",
        &csv(
            &res.headers.iter().map(String::as_str).collect::<Vec<_>>(),
            &res.rows,
        ),
    );
    if !failures.is_empty() {
        for line in &failures {
            eprintln!("{line}");
        }
        panic!(
            "chaos gate failed: {} invariant violation(s) across {seeds} seeds",
            failures.len()
        );
    }
    res
}
