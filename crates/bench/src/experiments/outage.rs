//! Control-plane outage and recovery — the resilience experiment.
//!
//! One full-buffer UE is served by the *remote* centralized scheduler
//! over a short-RTT control channel. Mid-run, the control link is
//! partitioned for a scripted window (the master "crashes"), then heals:
//!
//! * the agent's heartbeat tracker must detect the outage within the
//!   liveness timeout and pointer-swap to the cached local fallback
//!   scheduler (§5.4), holding throughput at the local baseline,
//! * the master must mark the agent's RIB subtree stale (the centralized
//!   scheduler stops issuing commands at a dead session),
//! * on heal, the agent rejoins, the master replays delegated state, and
//!   remote scheduling resumes.
//!
//! Everything runs in seeded virtual time, so the emitted `outage.csv`
//! time series is deterministic run-to-run.

use flexran::agent::AgentConfig;
use flexran::harness::UeRadioSpec;
use flexran::prelude::*;
use flexran::sim::link::{FaultHandle, LinkConfig};
use flexran::sim::traffic::FullBufferSource;
use flexran::stack::mac::scheduler::RoundRobinScheduler;
use flexran::Platform;

use crate::experiments::{mbps, remote_agent_config, subscribe_stats};
use crate::{csv, f2, ExpContext, ExpResult};

const HEARTBEAT_PERIOD: u64 = 10;
const LIVENESS_TIMEOUT: u64 = 40;
const ONE_WAY_MS: u64 = 2;
const SCHEDULE_AHEAD: u64 = 8;
const BUCKET: u64 = 100;

fn resilient_platform() -> Platform {
    Platform::new()
        .heartbeat_period(HEARTBEAT_PERIOD)
        .liveness_timeout(LIVENESS_TIMEOUT)
        .links(
            LinkConfig::with_one_way_ms(ONE_WAY_MS),
            LinkConfig::with_one_way_ms(ONE_WAY_MS),
        )
}

/// Local-control baseline: same UE, same radio, round-robin at the agent
/// from the start, no remote scheduler anywhere.
fn local_baseline(warmup: u64, window: u64) -> f64 {
    let mut sim = resilient_platform().build_sim();
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
    sim.run(warmup);
    let start = sim.ue_stats(ue).map(|s| s.dl_delivered_bits).unwrap_or(0);
    sim.run(window);
    let end = sim
        .ue_stats(ue)
        .map(|s| s.dl_delivered_bits)
        .unwrap_or(start);
    mbps(end.saturating_sub(start), window)
}

pub fn outage(ctx: &ExpContext) -> ExpResult {
    let warmup = ctx.ttis(1_000, 500);
    let phase_len = ctx.ttis(3_000, 1_200);

    let platform = resilient_platform();
    let faults = FaultHandle::new(7);
    let mut sim = platform.build_sim();
    let agent_cfg = AgentConfig {
        liveness: platform.build_agent_config().liveness,
        ..remote_agent_config()
    };
    let enb = sim.add_enb_with_faults(
        EnbConfig::single_cell(EnbId(1)),
        agent_cfg,
        EnbParams::default(),
        None,
        faults.clone(),
    );
    let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
    sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
    sim.master_mut()
        .register_app(Box::new(flexran::apps::CentralizedScheduler::new(
            SCHEDULE_AHEAD,
            Box::new(RoundRobinScheduler::new()),
        )));
    sim.run(5 + 2 * ONE_WAY_MS);
    subscribe_stats(&mut sim, enb, 1);
    sim.run(warmup);

    let outage_from = warmup + phase_len + 5 + 2 * ONE_WAY_MS;
    let outage_until = outage_from + phase_len;
    faults.partition_between(Tti(outage_from), Tti(outage_until));

    let bits = |sim: &flexran::harness::SimHarness| {
        sim.ue_stats(ue).map(|s| s.dl_delivered_bits).unwrap_or(0)
    };

    let mut series: Vec<Vec<String>> = Vec::new();
    let mut bucket_start_bits = bits(&sim);
    let mut attach_losses = 0u64;
    let mut agent_detected_at: Option<u64> = None;
    let mut master_detected_at: Option<u64> = None;
    let mut reconnected_at: Option<u64> = None;
    let mut detect_bits = 0u64;
    let mut heal_bits = 0u64;
    let mut reconnect_bits = 0u64;
    // Last TTI either side heard from its peer before the partition bit:
    // in-flight messages still land for ONE_WAY_MS after it opens, so
    // detection latency is counted from when silence actually began.
    let mut last_rx_count = sim.agent(enb).expect("enb").counters().rx_messages;
    let mut silence_started = sim.now().0;

    let pre_start_bits = bits(&sim);
    let loop_start = sim.now().0;
    let total = 3 * phase_len;
    for _ in 0..total {
        sim.step();
        let now = sim.now().0;
        let rx = sim.agent(enb).expect("enb").counters().rx_messages;
        if rx > last_rx_count && agent_detected_at.is_none() {
            last_rx_count = rx;
            silence_started = now;
        }
        for (_, ev) in &sim.last_events {
            use flexran::stack::events::EnbEvent;
            if matches!(
                ev,
                EnbEvent::AttachFailed { .. } | EnbEvent::UeDetached { .. }
            ) {
                attach_losses += 1;
            }
        }
        let state = sim.agent(enb).expect("enb").failover_state();
        let in_outage = now >= outage_from && now < outage_until;
        if in_outage {
            if agent_detected_at.is_none() && state == flexran::agent::FailoverState::LocalControl {
                agent_detected_at = Some(now);
                detect_bits = bits(&sim);
            }
            if master_detected_at.is_none() && !sim.master().downed_agents().is_empty() {
                master_detected_at = Some(now);
            }
        } else if now >= outage_until {
            if heal_bits == 0 {
                heal_bits = bits(&sim);
            }
            if reconnected_at.is_none() && state == flexran::agent::FailoverState::Connected {
                reconnected_at = Some(now);
                reconnect_bits = bits(&sim);
            }
        }
        if now.is_multiple_of(BUCKET) {
            let b = bits(&sim);
            let phase = if now < outage_from {
                "pre"
            } else if in_outage {
                "outage"
            } else {
                "post"
            };
            series.push(vec![
                now.to_string(),
                phase.to_string(),
                f2(mbps(b.saturating_sub(bucket_start_bits), BUCKET)),
                state.to_string(),
                (sim.master().view().agent(enb).is_some_and(|a| a.is_stale()) as u8).to_string(),
            ]);
            bucket_start_bits = b;
        }
    }
    let end_bits = bits(&sim);
    ctx.write_csv(
        "outage",
        &csv(
            &["tti", "phase", "mbps", "agent_state", "rib_stale"],
            &series,
        ),
    );

    // Phase throughputs.
    let pre_mbps = mbps(
        detect_bits.saturating_sub(pre_start_bits),
        agent_detected_at.unwrap_or(outage_from) - loop_start,
    );
    let during_mbps = match agent_detected_at {
        Some(t) => mbps(heal_bits.saturating_sub(detect_bits), outage_until - t),
        None => 0.0,
    };
    let post_mbps = match reconnected_at {
        Some(t) => mbps(
            end_bits.saturating_sub(reconnect_bits),
            loop_start + total - t,
        ),
        None => 0.0,
    };
    let baseline_mbps = local_baseline(warmup, phase_len);

    // Latency from when each side's inbound silence actually began: the
    // fault model drops at send time, so messages already in flight when
    // the partition opens still deliver ~ONE_WAY_MS later. Both directions
    // carry per-TTI traffic, so the last delivery lands at the same TTI on
    // both sides.
    let agent_latency = agent_detected_at.map(|t| t - silence_started);
    let master_latency = master_detected_at.map(|t| t - silence_started);
    let rejoin_latency = reconnected_at.map(|t| t - outage_until);
    let lc = sim.agent(enb).expect("enb").liveness_counters();
    let sls = sim.master().liveness_stats();

    let mut r = ExpResult::new(
        "outage",
        "remote scheduling through a control-plane outage (heartbeats, failover, rejoin)",
        &["phase", "Mb/s", "detail"],
    );
    r.row(vec![
        "pre (remote)".into(),
        f2(pre_mbps),
        format!("centralized scheduler, ahead={SCHEDULE_AHEAD}"),
    ]);
    r.row(vec![
        "outage (local control)".into(),
        f2(during_mbps),
        format!(
            "agent failover after {} ms (timeout {LIVENESS_TIMEOUT} ms)",
            agent_latency.map_or("∞".into(), |l| l.to_string())
        ),
    ]);
    r.row(vec![
        "post (remote again)".into(),
        f2(post_mbps),
        format!(
            "rejoined {} ms after heal; state replayed",
            rejoin_latency.map_or("∞".into(), |l| l.to_string())
        ),
    ]);
    r.row(vec![
        "local baseline".into(),
        f2(baseline_mbps),
        "round-robin at the agent, no master".into(),
    ]);

    let within = baseline_mbps > 0.0 && (during_mbps / baseline_mbps - 1.0).abs() <= 0.05;
    r.note(format!(
        "during-outage throughput within 5% of local baseline: {within} ({} vs {})",
        f2(during_mbps),
        f2(baseline_mbps)
    ));
    r.note(format!(
        "detection latency: agent {:?} ms, master {:?} ms (liveness timeout {LIVENESS_TIMEOUT} ms, heartbeat period {HEARTBEAT_PERIOD} ms)",
        agent_latency, master_latency
    ));
    r.note(format!(
        "attach losses during the whole run: {attach_losses}; failovers {}, rejoins {}; master downs {}, ups {}",
        lc.failovers, lc.rejoins, sls.downs, sls.ups
    ));
    r
}
