//! §5.4 — control-delegation performance.
//!
//! The paper's experiment: a centralized scheduler at the master and an
//! equivalent local scheduler pushed to the agent as a VSF; the two are
//! swapped at runtime "with various frequencies down to the TTI level",
//! observing unchanged application throughput (~25 Mb/s on their
//! testbed) and a VSF load time of ~103 ns.
//!
//! Reproduced as: (1) a swap-period sweep measuring per-window throughput
//! (mean and minimum — a dip would be a service interruption), and
//! (2) the swap latency measured around the cache activation (the
//! criterion bench `vsf_swap` measures it with statistical rigor).

use std::time::Instant;

use flexran::agent::PolicyDoc;
use flexran::harness::UeRadioSpec;
use flexran::prelude::*;
use flexran::sim::traffic::FullBufferSource;
use flexran::stack::mac::scheduler::RoundRobinScheduler;

use crate::experiments::{remote_agent_config, sim_with_rtt, subscribe_stats};
use crate::{csv, f2, ExpContext, ExpResult};

pub fn sec54(ctx: &ExpContext) -> ExpResult {
    let mut r = ExpResult::new(
        "sec54",
        "runtime local/remote scheduler swapping (paper §5.4)",
        &["swap period ms", "swaps", "mean Mb/s", "min Mb/s"],
    );
    let mut rows = Vec::new();
    let periods: &[u64] = if ctx.quick {
        &[100, 1]
    } else {
        &[1000, 100, 10, 1]
    };
    for &period in periods {
        let mut sim = sim_with_rtt(0);
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), remote_agent_config());
        let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(14));
        sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
        sim.master_mut()
            .register_app(Box::new(flexran::apps::CentralizedScheduler::new(
                2,
                Box::new(RoundRobinScheduler::new()),
            )));
        sim.run(5);
        subscribe_stats(&mut sim, enb, 1);
        sim.run(300); // attach + warm-up
        let total = ctx.ttis(4_000, 1_000);
        let mut swaps = 0u64;
        let mut bits_last = sim.ue_stats(ue).unwrap().dl_delivered_bits;
        let mut local = false;
        let mut window_rates = Vec::new();
        let window = 200u64.max(period);
        let mut elapsed = 0;
        while elapsed < total {
            for _ in 0..(window / period).max(1) {
                let behavior = if local { "round-robin" } else { "remote-stub" };
                local = !local;
                // Swap directly at the agent cache, timing the activation
                // itself (the paper's "VSF load time"); the wire path for
                // the same operation is exercised by the delegation tests.
                let t0 = Instant::now();
                sim.agent_mut(enb)
                    .unwrap()
                    .mac
                    .dl
                    .activate(behavior)
                    .unwrap();
                let _ = t0.elapsed();
                swaps += 1;
                sim.run(period);
                elapsed += period;
                if elapsed >= total {
                    break;
                }
            }
            let bits = sim.ue_stats(ue).unwrap().dl_delivered_bits;
            window_rates.push((bits - bits_last) as f64 * 1000.0 / window as f64 / 1e6);
            bits_last = bits;
        }
        // Last partial window is folded in by the loop above.
        let mean = window_rates.iter().sum::<f64>() / window_rates.len().max(1) as f64;
        let min = window_rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let row = vec![period.to_string(), swaps.to_string(), f2(mean), f2(min)];
        r.row(row.clone());
        rows.push(row);
        // Swap latency microbenchmark (inline estimate).
        if period == *periods.last().expect("non-empty") {
            let agent = sim.agent_mut(enb).unwrap();
            let iters = 10_000;
            let t0 = Instant::now();
            for i in 0..iters {
                let name = if i % 2 == 0 {
                    "round-robin"
                } else {
                    "remote-stub"
                };
                agent.mac.dl.activate(name).unwrap();
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            r.note(format!(
                "VSF swap latency ≈ {ns:.0} ns/swap (paper: ~103 ns); see criterion bench `vsf_swap` for the rigorous measurement"
            ));
        }
    }
    ctx.write_csv(
        "sec54",
        &csv(&["swap_period_ms", "swaps", "mean_mbps", "min_mbps"], &rows),
    );
    r.note("paper: identical ~25 Mb/s at every swap frequency down to 1 ms — service continuity");
    // Exercise the wire path once for completeness.
    let _ = PolicyDoc::single("mac", "dl_ue_scheduler", Some("round-robin"), vec![]).to_yaml();
    r
}
