//! Fig. 8 — master controller resources vs number of agents
//! (paper §5.2.2).
//!
//! The master runs its Task Manager in TTI cycles; the paper reports how
//! much of each cycle the core components (RIB updater) and applications
//! consume, plus the master's memory footprint, for 0–3 connected agents
//! with 16 UEs each under per-TTI reporting.
//!
//! Absolute microseconds are hardware-specific; the shape — core-
//! component time growing with the number of agents (more RIB updates),
//! both slots a small fraction of the 1 ms cycle, memory growing with the
//! RIB — is the reproduced result.

use flexran::harness::UeRadioSpec;
use flexran::prelude::*;
use flexran::sim::traffic::CbrSource;
use flexran::stack::mac::scheduler::RoundRobinScheduler;

use crate::experiments::{remote_agent_config, sim_with_rtt, subscribe_stats};
use crate::{csv, f2, ExpContext, ExpResult};

pub fn fig8(ctx: &ExpContext) -> ExpResult {
    let mut r = ExpResult::new(
        "fig8",
        "master TTI-cycle utilization and memory vs agents (paper Fig. 8)",
        &[
            "agents",
            "apps µs/cycle",
            "core µs/cycle",
            "idle µs/cycle",
            "RIB bytes",
        ],
    );
    let mut rows = Vec::new();
    let agent_counts: &[u32] = if ctx.quick { &[0, 2] } else { &[0, 1, 2, 3] };
    for &n_agents in agent_counts {
        let mut sim = sim_with_rtt(0);
        sim.master_mut()
            .register_app(Box::new(flexran::apps::MonitoringApp::new(10)));
        sim.master_mut()
            .register_app(Box::new(flexran::apps::CentralizedScheduler::new(
                2,
                Box::new(RoundRobinScheduler::new()),
            )));
        for i in 0..n_agents {
            let enb = sim.add_enb(EnbConfig::single_cell(EnbId(i + 1)), remote_agent_config());
            for _ in 0..16 {
                let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10));
                sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_kbps(500))));
            }
        }
        sim.run(5);
        for i in 0..n_agents {
            subscribe_stats(&mut sim, EnbId(i + 1), 1);
        }
        // Warm up, then measure a clean window.
        sim.run(ctx.ttis(500, 200));
        let acc0 = sim.master().accounting();
        sim.run(ctx.ttis(4_000, 800));
        let acc1 = sim.master().accounting();
        let cycles = (acc1.cycles - acc0.cycles) as f64;
        let core_us = (acc1.rib_total - acc0.rib_total).as_secs_f64() * 1e6 / cycles;
        let apps_us = (acc1.apps_total - acc0.apps_total).as_secs_f64() * 1e6 / cycles;
        let idle_us = (1000.0 - core_us - apps_us).max(0.0);
        let rib_bytes = sim.master().view().heap_bytes();
        let row = vec![
            n_agents.to_string(),
            f2(apps_us),
            f2(core_us),
            f2(idle_us),
            rib_bytes.to_string(),
        ];
        r.row(row.clone());
        rows.push(row);
    }
    ctx.write_csv(
        "fig8",
        &csv(
            &["agents", "apps_us", "core_us", "idle_us", "rib_bytes"],
            &rows,
        ),
    );
    r.note("paper: core-component time grows with agents (RIB updates), cycle mostly idle, memory 5→9 MB; here the same shape at this implementation's (much smaller) absolute scale");
    r
}
