//! Ablations of FlexRAN design choices (DESIGN.md §5).
//!
//! * **reporting mode** — paper §5.2.1 claims the agent→master overhead
//!   "could be reduced to almost half" by setting the MAC report period
//!   to 2 TTIs, and suggests event-triggered reporting as an alternative.
//!   Measured: the same scenario under periodic-1, periodic-2, periodic-5
//!   and triggered reporting.
//! * **PDCCH DCI budget** — the per-TTI scheduling fan-out cap trades
//!   per-UE latency against control-channel space; the paper's Fig. 7b
//!   superlinearity depends on it.
//! * **HARQ BLER target** — the link-adaptation operating point: a
//!   conservative target wastes capacity, an aggressive one spends it on
//!   retransmissions. Validates that the default 10 % target (the LTE
//!   convention the paper's stack inherits) is a sensible knee.

use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::phy::bler::BlerModel;
use flexran::prelude::*;
use flexran::proto::{MessageCategory, ReportConfig, ReportFlags, ReportType, Transport};
use flexran::sim::traffic::{CbrSource, FullBufferSource};
use flexran::stack::enb::EnbParams;

use crate::experiments::{mbps, remote_agent_config, sim_with_rtt};
use crate::{csv, f2, ExpContext, ExpResult};

/// Reporting-mode ablation.
pub fn ablation_reporting(ctx: &ExpContext) -> ExpResult {
    let mut r = ExpResult::new(
        "ablation-reporting",
        "agent→master stats overhead by reporting mode (paper §5.2.1 claim)",
        &["mode", "stats Mb/s", "messages/s", "UE goodput Mb/s"],
    );
    let mut rows = Vec::new();
    let cases: Vec<(String, ReportType)> = vec![
        ("periodic-1".into(), ReportType::Periodic { period: 1 }),
        ("periodic-2".into(), ReportType::Periodic { period: 2 }),
        ("periodic-5".into(), ReportType::Periodic { period: 5 }),
        ("triggered".into(), ReportType::Triggered),
    ];
    for (label, report_type) in cases {
        let mut sim = sim_with_rtt(0);
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), remote_agent_config());
        sim.master_mut()
            .register_app(Box::new(flexran::apps::CentralizedScheduler::new(
                2,
                Box::new(flexran::stack::mac::scheduler::RoundRobinScheduler::new()),
            )));
        let mut ues = Vec::new();
        for _ in 0..16 {
            let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10));
            sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_kbps(500))));
            ues.push(ue);
        }
        sim.run(5);
        let _ = sim.master_mut().request_stats(
            enb,
            ReportConfig {
                report_type,
                flags: ReportFlags::ALL,
            },
        );
        sim.run(ctx.ttis(800, 300));
        let tx0 = sim.agent(enb).unwrap().transport().tx_counters();
        let goodput0: u64 = ues
            .iter()
            .filter_map(|u| sim.ue_stats(*u))
            .map(|s| s.dl_delivered_bits)
            .sum();
        let window = ctx.ttis(5_000, 1_500);
        sim.run(window);
        let tx = sim
            .agent(enb)
            .unwrap()
            .transport()
            .tx_counters()
            .since(&tx0);
        let goodput: u64 = ues
            .iter()
            .filter_map(|u| sim.ue_stats(*u))
            .map(|s| s.dl_delivered_bits)
            .sum();
        let row = vec![
            label,
            f2(tx.mbps(MessageCategory::StatsReporting, window)),
            f2(tx.messages(MessageCategory::StatsReporting) as f64 * 1000.0 / window as f64),
            f2(mbps(goodput - goodput0, window)),
        ];
        r.row(row.clone());
        rows.push(row);
    }
    ctx.write_csv(
        "ablation_reporting",
        &csv(&["mode", "stats_mbps", "msgs_per_s", "goodput_mbps"], &rows),
    );
    r.note("paper claim to verify: period-2 ≈ half the period-1 overhead with no significant performance impact (the remote scheduler still saturates the cell)");
    r
}

/// PDCCH DCI-budget ablation.
pub fn ablation_dci_budget(ctx: &ExpContext) -> ExpResult {
    let mut r = ExpResult::new(
        "ablation-dci-budget",
        "cell goodput and fairness vs per-TTI DCI budget",
        &["max DCIs/TTI", "cell Mb/s", "min-UE Mb/s", "max-UE Mb/s"],
    );
    let mut rows = Vec::new();
    for max_dcis in [2u8, 4, 10, 16] {
        let mut sim = SimHarness::new(SimConfig::default());
        let mut cfg = EnbConfig::single_cell(EnbId(1));
        cfg.cells[0].max_dl_dcis_per_tti = max_dcis;
        let enb = sim.add_enb(cfg, Default::default());
        let mut ues = Vec::new();
        for _ in 0..12 {
            let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10));
            sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
            ues.push(ue);
        }
        sim.run(300);
        let start: Vec<u64> = ues
            .iter()
            .map(|u| sim.ue_stats(*u).map(|s| s.dl_delivered_bits).unwrap_or(0))
            .collect();
        let window = ctx.ttis(5_000, 1_500);
        sim.run(window);
        let rates: Vec<f64> = ues
            .iter()
            .zip(&start)
            .map(|(u, s0)| {
                mbps(
                    sim.ue_stats(*u).map(|s| s.dl_delivered_bits).unwrap_or(*s0) - s0,
                    window,
                )
            })
            .collect();
        let total: f64 = rates.iter().sum();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        let row = vec![max_dcis.to_string(), f2(total), f2(min), f2(max)];
        r.row(row.clone());
        rows.push(row);
    }
    ctx.write_csv(
        "ablation_dci_budget",
        &csv(
            &["max_dcis", "cell_mbps", "min_ue_mbps", "max_ue_mbps"],
            &rows,
        ),
    );
    r.note("cell capacity is DCI-insensitive under round-robin (PRBs, not DCIs, are the bottleneck); short-term fairness degrades at tiny budgets");
    r
}

/// BLER-target ablation.
pub fn ablation_bler_target(ctx: &ExpContext) -> ExpResult {
    let mut r = ExpResult::new(
        "ablation-bler-target",
        "goodput and HARQ retransmission rate vs link-adaptation BLER target",
        &["target BLER", "goodput Mb/s", "retx/tx"],
    );
    let mut rows = Vec::new();
    for target in [0.01, 0.05, 0.1, 0.3] {
        let mut sim = SimHarness::new(SimConfig::default());
        let params = EnbParams {
            bler: BlerModel {
                target_bler: target,
                ..BlerModel::default()
            },
            ..EnbParams::default()
        };
        let enb = sim.add_enb_with(
            EnbConfig::single_cell(EnbId(1)),
            Default::default(),
            params,
            None,
        );
        let ue = sim.add_ue(
            enb,
            CellId(0),
            SliceId::MNO,
            0,
            UeRadioSpec::Fading(16.0, 3.0, 0.99, 7),
        );
        sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
        sim.run(300);
        let s0 = sim.ue_stats(ue).unwrap();
        let window = ctx.ttis(6_000, 1_500);
        sim.run(window);
        let s1 = sim.ue_stats(ue).unwrap();
        let goodput = mbps(s1.dl_delivered_bits - s0.dl_delivered_bits, window);
        let tx = (s1.harq_tx - s0.harq_tx).max(1);
        let retx_rate = (s1.harq_retx - s0.harq_retx) as f64 / tx as f64;
        let row = vec![format!("{target}"), f2(goodput), format!("{retx_rate:.3}")];
        r.row(row.clone());
        rows.push(row);
    }
    ctx.write_csv(
        "ablation_bler_target",
        &csv(&["target_bler", "goodput_mbps", "retx_ratio"], &rows),
    );
    r.note("the retransmission ratio tracks the configured operating point; goodput is flat near the conventional 10 % knee (chase combining recovers most first-attempt losses)");
    r
}
