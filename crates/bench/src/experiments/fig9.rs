//! Fig. 9 — control-channel latency vs schedule-ahead (paper §5.3).
//!
//! A centralized scheduler at the master, one full-buffer UE, a `netem`
//! link with RTT 0–60 ms, and the scheduler's schedule-ahead parameter
//! swept 0–80 subframes. Two regions:
//!
//! * `ahead < RTT` — every decision misses its target subframe; the UE
//!   cannot even complete attachment → throughput 0 (lower triangle).
//! * `ahead ≥ RTT` — the UE is served, but throughput decays gradually
//!   with both knobs: the RIB's CQI is stale by the RTT, and larger
//!   schedule-ahead means predicting the channel further into the future.
//!   A time-varying (AR(1)) channel makes that staleness costly, exactly
//!   as the paper argues ("wrong scheduling decisions (e.g. due to a bad
//!   modulation and coding scheme choice)").

use flexran::harness::UeRadioSpec;
use flexran::prelude::*;
use flexran::sim::traffic::FullBufferSource;
use flexran::stack::mac::scheduler::RoundRobinScheduler;

use crate::experiments::{mbps, remote_agent_config, sim_with_rtt, subscribe_stats};
use crate::{csv, f2, ExpContext, ExpResult};

fn run_point(rtt_ms: u64, ahead: u64, ctx: &ExpContext) -> f64 {
    let mut sim = sim_with_rtt(rtt_ms);
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), remote_agent_config());
    // Slowly varying channel around 18 dB: fresh CQI tracks it well;
    // stale CQI overshoots on the downswings.
    let ue = sim.add_ue(
        enb,
        CellId(0),
        SliceId::MNO,
        0,
        UeRadioSpec::Fading(18.0, 4.0, 0.997, 42),
    );
    sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
    sim.master_mut()
        .register_app(Box::new(flexran::apps::CentralizedScheduler::new(
            ahead,
            Box::new(RoundRobinScheduler::new()),
        )));
    sim.run(5 + rtt_ms);
    subscribe_stats(&mut sim, enb, 1);
    // Attach window (generous at high RTT), then measurement.
    sim.run(ctx.ttis(1_500, 800));
    let start = sim.ue_stats(ue).map(|s| s.dl_delivered_bits).unwrap_or(0);
    let window = ctx.ttis(4_000, 1_200);
    sim.run(window);
    let end = sim
        .ue_stats(ue)
        .map(|s| s.dl_delivered_bits)
        .unwrap_or(start);
    mbps(end.saturating_sub(start), window)
}

pub fn fig9(ctx: &ExpContext) -> ExpResult {
    let (rtts, aheads): (&[u64], &[u64]) = if ctx.quick {
        (&[0, 20, 40], &[0, 8, 24, 48])
    } else {
        (&[0, 10, 20, 30, 40, 60], &[0, 4, 8, 16, 24, 32, 48, 64, 80])
    };
    let mut r = ExpResult::new(
        "fig9",
        "DL throughput vs control RTT × schedule-ahead (paper Fig. 9)",
        &["RTT ms", "ahead sf", "Mb/s"],
    );
    let mut rows = Vec::new();
    let mut zero_lower = true;
    let mut served_upper = true;
    for &rtt in rtts {
        for &ahead in aheads {
            let m = run_point(rtt, ahead, ctx);
            if ahead < rtt && m > 0.01 {
                zero_lower = false;
            }
            if ahead >= rtt + 8 && m < 1.0 {
                served_upper = false;
            }
            let row = vec![rtt.to_string(), ahead.to_string(), f2(m)];
            r.row(row.clone());
            rows.push(row);
        }
    }
    ctx.write_csv("fig9", &csv(&["rtt_ms", "ahead_sf", "mbps"], &rows));
    r.note(format!(
        "lower triangle (ahead < RTT) all zero: {zero_lower}; upper region served: {served_upper}; throughput decays with RTT and ahead (stale CQI + further prediction), as in the paper"
    ));
    r
}
