//! Fig. 6 — comparison to vanilla OAI (paper §5.1).
//!
//! * **6a**: CPU utilization and memory footprint of the eNodeB with and
//!   without the FlexRAN agent, idle and with a UE running a speedtest.
//!   The paper measures OS-level process accounting on its Xeon testbed;
//!   here the same quantities are wall-clock time of the identical
//!   per-TTI code path and explicit heap accounting. Absolute values
//!   differ from the paper's; the *shape* — a slight increase from the
//!   agent, dwarfed by the UE workload itself — is the result.
//! * **6b**: downlink/uplink goodput of the speedtest UE, which must be
//!   indistinguishable between the two (FlexRAN transparency).

use std::time::Instant;

use flexran::agent::AgentConfig;
use flexran::harness::{UeRadioSpec, VanillaHarness};
use flexran::prelude::*;
use flexran::stack::enb::EnbParams;
use flexran::types::units::Bytes;

use crate::experiments::mbps;
use crate::{csv, f2, ExpContext, ExpResult};

struct Case {
    label: &'static str,
    cpu_us_per_tti: f64,
    mem_bytes: usize,
    dl_mbps: f64,
    ul_mbps: f64,
}

fn run_vanilla(with_ue: bool, ttis: u64) -> Case {
    let mut h = VanillaHarness::new(EnbConfig::single_cell(EnbId(1)), EnbParams::default());
    let ue = with_ue.then(|| h.add_ue(CellId(0), UeRadioSpec::FixedCqi(14)));
    // Attach.
    h.run(100);
    let start_bits = ue
        .and_then(|(_, rnti)| h.enb.ue_stat(CellId(0), rnti).ok())
        .map(|s| (s.dl_delivered_bits, s.ul_delivered_bits))
        .unwrap_or((0, 0));
    let t0 = Instant::now();
    for _ in 0..ttis {
        if let Some((_, rnti)) = ue {
            let queue = h
                .enb
                .ue_stat(CellId(0), rnti)
                .map(|s| s.dl_queue_bytes.as_u64())
                .unwrap_or(0);
            if queue < 300_000 {
                let now = h.now();
                let _ = h
                    .enb
                    .inject_dl_traffic(CellId(0), rnti, Bytes(300_000 - queue), now);
            }
            let _ = h.enb.inject_ul_traffic(CellId(0), rnti, Bytes(3_000));
        }
        h.step();
    }
    let elapsed = t0.elapsed();
    let (dl, ul) = ue
        .and_then(|(_, rnti)| h.enb.ue_stat(CellId(0), rnti).ok())
        .map(|s| {
            (
                s.dl_delivered_bits - start_bits.0,
                s.ul_delivered_bits - start_bits.1,
            )
        })
        .unwrap_or((0, 0));
    Case {
        label: if with_ue {
            "vanilla + UE"
        } else {
            "vanilla idle"
        },
        cpu_us_per_tti: elapsed.as_secs_f64() * 1e6 / ttis as f64,
        mem_bytes: h.enb.heap_bytes(),
        dl_mbps: mbps(dl, ttis),
        ul_mbps: mbps(ul, ttis),
    }
}

fn run_flexran(with_ue: bool, ttis: u64) -> Case {
    // Build the eNodeB-machine side by hand so only *its* work is timed
    // (the paper measures the eNodeB host, not the controller): agent +
    // data plane on the timed path, master untimed on the other side of
    // an in-process channel.
    use flexran::agent::{FlexranAgent, VsfRegistry};
    use flexran::controller::{MasterController, TaskManagerConfig};
    use flexran::proto::channel_pair;
    use flexran::proto::{ReportConfig, ReportFlags, ReportType};
    use flexran::stack::enb::{Enb, StaticPhyView};

    let (agent_side, master_side) = channel_pair();
    let enb_dp = Enb::new(EnbConfig::single_cell(EnbId(1)), EnbParams::default()).unwrap();
    let mut agent = FlexranAgent::new(
        enb_dp,
        agent_side,
        VsfRegistry::with_builtins(),
        AgentConfig {
            sync_period: 1,
            ..AgentConfig::default()
        },
    );
    let mut master = MasterController::new(TaskManagerConfig::default());
    master.add_agent(Box::new(master_side));
    let mut phy = StaticPhyView(flexran::phy::link_adaptation::sinr_for_cqi(
        flexran::phy::link_adaptation::Cqi(14),
    )); // identical channel to the vanilla case
    let rnti = with_ue.then(|| {
        agent
            .enb_mut()
            .rach(CellId(0), UeId(1), SliceId::MNO, 0, Tti(0))
            .unwrap()
    });
    // Warm up: hello + attach + worst-case per-TTI stats subscription.
    for t in 1..100u64 {
        agent.run_tti(Tti(t), &mut phy);
        master.run_cycle(Tti(t));
        if t == 5 {
            // Normal-operation reporting (the paper's Fig. 6 runs the
            // plain setup; the per-TTI worst case is Fig. 7's subject).
            let _ = master.request_stats(
                EnbId(1),
                ReportConfig {
                    report_type: ReportType::Periodic { period: 100 },
                    flags: ReportFlags::ALL,
                },
            );
        }
    }
    let start_bits = rnti
        .and_then(|r| agent.enb().ue_stat(CellId(0), r).ok())
        .map(|s| (s.dl_delivered_bits, s.ul_delivered_bits))
        .unwrap_or((0, 0));
    let mut agent_time = std::time::Duration::ZERO;
    for t in 100..100 + ttis {
        let tti = Tti(t);
        if let Some(r) = rnti {
            let queue = agent
                .enb()
                .ue_stat(CellId(0), r)
                .map(|s| s.dl_queue_bytes.as_u64())
                .unwrap_or(0);
            if queue < 300_000 {
                let _ =
                    agent
                        .enb_mut()
                        .inject_dl_traffic(CellId(0), r, Bytes(300_000 - queue), tti);
            }
            let _ = agent
                .enb_mut()
                .inject_ul_traffic(CellId(0), r, Bytes(3_000));
        }
        let t0 = Instant::now();
        agent.run_tti(tti, &mut phy); // the timed eNodeB-machine work
        agent_time += t0.elapsed();
        master.run_cycle(tti); // controller machine: untimed
    }
    let (dl, ul) = rnti
        .and_then(|r| agent.enb().ue_stat(CellId(0), r).ok())
        .map(|s| {
            (
                s.dl_delivered_bits - start_bits.0,
                s.ul_delivered_bits - start_bits.1,
            )
        })
        .unwrap_or((0, 0));
    Case {
        label: if with_ue {
            "flexran + UE"
        } else {
            "flexran idle"
        },
        cpu_us_per_tti: agent_time.as_secs_f64() * 1e6 / ttis as f64,
        mem_bytes: agent.heap_bytes(),
        dl_mbps: mbps(dl, ttis),
        ul_mbps: mbps(ul, ttis),
    }
}

fn run_cases(ctx: &ExpContext) -> Vec<Case> {
    let ttis = ctx.ttis(8_000, 1_500);
    vec![
        run_vanilla(false, ttis),
        run_vanilla(true, ttis),
        run_flexran(false, ttis),
        run_flexran(true, ttis),
    ]
}

/// Fig. 6a: CPU and memory overhead of the agent.
pub fn fig6a(ctx: &ExpContext) -> ExpResult {
    let cases = run_cases(ctx);
    let mut r = ExpResult::new(
        "fig6a",
        "eNodeB CPU / memory: vanilla vs FlexRAN-enabled (paper Fig. 6a)",
        &["case", "cpu µs/TTI", "heap bytes"],
    );
    let mut rows = Vec::new();
    for c in &cases {
        r.row(vec![
            c.label.to_string(),
            f2(c.cpu_us_per_tti),
            c.mem_bytes.to_string(),
        ]);
        rows.push(vec![
            c.label.to_string(),
            f2(c.cpu_us_per_tti),
            c.mem_bytes.to_string(),
        ]);
    }
    ctx.write_csv(
        "fig6a",
        &csv(&["case", "cpu_us_per_tti", "heap_bytes"], &rows),
    );
    r.note("paper: +0.17 % CPU, +30 MB memory from the agent; shape = slight agent overhead, workload dominates");
    r
}

/// Fig. 6b: throughput transparency.
pub fn fig6b(ctx: &ExpContext) -> ExpResult {
    let ttis = ctx.ttis(8_000, 1_500);
    let v = run_vanilla(true, ttis);
    let f = run_flexran(true, ttis);
    let mut r = ExpResult::new(
        "fig6b",
        "speedtest UE goodput: vanilla vs FlexRAN-enabled (paper Fig. 6b)",
        &["case", "DL Mb/s", "UL Mb/s"],
    );
    let mut rows = Vec::new();
    for c in [&v, &f] {
        r.row(vec![c.label.to_string(), f2(c.dl_mbps), f2(c.ul_mbps)]);
        rows.push(vec![c.label.to_string(), f2(c.dl_mbps), f2(c.ul_mbps)]);
    }
    ctx.write_csv("fig6b", &csv(&["case", "dl_mbps", "ul_mbps"], &rows));
    let dl_ratio = f.dl_mbps / v.dl_mbps.max(1e-9);
    r.note(format!(
        "DL ratio flexran/vanilla = {:.3} (paper: indistinguishable, ~23 DL / ~9 UL Mb/s on their testbed)",
        dl_ratio
    ));
    r
}
