//! Fig. 12 — RAN sharing & virtualization (paper §6.3).
//!
//! * **12a**: one MNO and one MVNO share a cell (5 UEs each, uniform
//!   downlink UDP). The PRB split starts at 70/30, is reconfigured to
//!   40/60 early in the run and back to 80/20 late — each change is one
//!   policy-reconfiguration message. Per-operator throughput follows.
//! * **12b**: 15 UEs per operator; the MNO runs a fair intra-slice
//!   policy, the MVNO a group policy (9 premium users on 70 % of the
//!   slice, 6 secondary on 30 %). The CDF of per-UE throughput separates
//!   into three plateaus: premium above fair above secondary.

use flexran::agent::{AgentConfig, PolicyDoc};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::metrics::Cdf;
use flexran::sim::traffic::CbrSource;
use flexran::stack::mac::scheduler::ParamValue;

use crate::{csv, f2, ExpContext, ExpResult};

fn slicing_sim(shares: Vec<f64>, policies: &str) -> (SimHarness, EnbId) {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    sim.run(2);
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "mac",
                "dl_ue_scheduler",
                Some("slice-scheduler"),
                vec![
                    ("slice_shares".into(), ParamValue::List(shares)),
                    ("policies".into(), ParamValue::Str(policies.into())),
                ],
            )
            .to_yaml(),
        )
        .expect("agent session up");
    (sim, enb)
}

fn reshare(sim: &mut SimHarness, enb: EnbId, shares: Vec<f64>) {
    sim.master_mut()
        .reconfigure(
            enb,
            PolicyDoc::single(
                "mac",
                "dl_ue_scheduler",
                None,
                vec![("slice_shares".into(), ParamValue::List(shares))],
            )
            .to_yaml(),
        )
        .expect("agent session up");
}

pub fn fig12a(ctx: &ExpContext) -> ExpResult {
    let (mut sim, enb) = slicing_sim(vec![0.7, 0.3], "fair,fair");
    let mut ues = Vec::new();
    for i in 0..10u32 {
        let slice = SliceId((i % 2) as u8);
        let ue = sim.add_ue(enb, CellId(0), slice, 0, UeRadioSpec::FixedCqi(10));
        // Uniform UDP, enough to saturate each slice's share.
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(4))));
        ues.push((ue, slice));
    }
    // Timeline (compressed from the paper's 180 s): phase1 70/30, then
    // 40/60, then 80/20.
    let phase = ctx.ttis(8_000, 2_000);
    let mut series: Vec<Vec<String>> = Vec::new();
    let mut summary: Vec<(String, f64, f64)> = Vec::new();
    let mut last_bits: Vec<u64> = vec![0; ues.len()];
    let mut t_s = 0.0;
    let sample = |sim: &SimHarness,
                  label: &str,
                  last_bits: &mut Vec<u64>,
                  t_s: &mut f64,
                  series: &mut Vec<Vec<String>>|
     -> (f64, f64) {
        let window_s = phase as f64 / 1000.0;
        let mut per_slice = [0.0f64; 2];
        for (i, (ue, slice)) in ues.iter().enumerate() {
            let bits = sim.ue_stats(*ue).map(|s| s.dl_delivered_bits).unwrap_or(0);
            per_slice[slice.0 as usize] += (bits - last_bits[i]) as f64 / window_s / 1e6;
            last_bits[i] = bits;
        }
        *t_s += window_s;
        series.push(vec![
            format!("{t_s:.0}"),
            label.to_string(),
            f2(per_slice[0]),
            f2(per_slice[1]),
        ]);
        (per_slice[0], per_slice[1])
    };

    sim.run(phase);
    let p1 = sample(&sim, "70/30", &mut last_bits, &mut t_s, &mut series);
    summary.push(("70/30".into(), p1.0, p1.1));
    reshare(&mut sim, enb, vec![0.4, 0.6]);
    sim.run(phase);
    let p2 = sample(&sim, "40/60", &mut last_bits, &mut t_s, &mut series);
    summary.push(("40/60".into(), p2.0, p2.1));
    reshare(&mut sim, enb, vec![0.8, 0.2]);
    sim.run(phase);
    let p3 = sample(&sim, "80/20", &mut last_bits, &mut t_s, &mut series);
    summary.push(("80/20".into(), p3.0, p3.1));

    ctx.write_csv(
        "fig12a",
        &csv(&["t_s", "shares", "mno_mbps", "mvno_mbps"], &series),
    );
    let mut r = ExpResult::new(
        "fig12a",
        "dynamic resource allocation across operators (paper Fig. 12a)",
        &["shares", "MNO Mb/s", "MVNO Mb/s", "MNO fraction"],
    );
    for (label, mno, mvno) in &summary {
        r.row(vec![
            label.clone(),
            f2(*mno),
            f2(*mvno),
            f2(mno / (mno + mvno).max(1e-9)),
        ]);
    }
    r.note("paper: per-operator throughput tracks the configured split within one reporting period of each policy message");
    r
}

pub fn fig12b(ctx: &ExpContext) -> ExpResult {
    let (mut sim, enb) = slicing_sim(vec![0.5, 0.5], "fair,group");
    let mut ues = Vec::new();
    for i in 0..30u32 {
        let (slice, group) = if i < 15 {
            (SliceId(0), 0)
        } else if i < 24 {
            (SliceId(1), 0) // 9 premium
        } else {
            (SliceId(1), 1) // 6 secondary
        };
        let ue = sim.add_ue(enb, CellId(0), slice, group, UeRadioSpec::FixedCqi(10));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
        ues.push((ue, slice, group));
    }
    sim.run(300); // attach
    let start: Vec<u64> = ues
        .iter()
        .map(|(ue, ..)| sim.ue_stats(*ue).map(|s| s.dl_delivered_bits).unwrap_or(0))
        .collect();
    let window = ctx.ttis(10_000, 3_000);
    sim.run(window);

    let mut cdf_mno = Cdf::new();
    let mut cdf_mvno = Cdf::new();
    let mut rows = Vec::new();
    let mut group_means = [0.0f64; 3];
    let mut group_counts = [0usize; 3];
    for (i, (ue, slice, group)) in ues.iter().enumerate() {
        let bits = sim.ue_stats(*ue).map(|s| s.dl_delivered_bits).unwrap_or(0);
        let kbps = (bits - start[i]) as f64 / window as f64; // kb/s
        if *slice == SliceId(0) {
            cdf_mno.push(kbps);
            group_means[0] += kbps;
            group_counts[0] += 1;
        } else {
            cdf_mvno.push(kbps);
            let g = 1 + (*group as usize).min(1);
            group_means[g] += kbps;
            group_counts[g] += 1;
        }
        rows.push(vec![
            format!("ue{i}"),
            slice.0.to_string(),
            group.to_string(),
            f2(kbps),
        ]);
    }
    ctx.write_csv("fig12b_ues", &csv(&["ue", "slice", "group", "kbps"], &rows));
    let mut cdf_rows = Vec::new();
    for (label, cdf) in [("mno_fair", &cdf_mno), ("mvno_group", &cdf_mvno)] {
        for (v, p) in cdf.points() {
            cdf_rows.push(vec![label.to_string(), f2(v), f2(p)]);
        }
    }
    ctx.write_csv("fig12b", &csv(&["series", "kbps", "cdf"], &cdf_rows));

    let mut r = ExpResult::new(
        "fig12b",
        "per-UE throughput CDF by scheduling policy (paper Fig. 12b)",
        &["group", "UEs", "mean kb/s", "median kb/s"],
    );
    let medians = [cdf_mno.median(), 0.0, 0.0];
    r.row(vec![
        "MNO fair".into(),
        group_counts[0].to_string(),
        f2(group_means[0] / group_counts[0].max(1) as f64),
        f2(medians[0]),
    ]);
    r.row(vec![
        "MVNO premium".into(),
        group_counts[1].to_string(),
        f2(group_means[1] / group_counts[1].max(1) as f64),
        f2(cdf_mvno.quantile(0.75)),
    ]);
    r.row(vec![
        "MVNO secondary".into(),
        group_counts[2].to_string(),
        f2(group_means[2] / group_counts[2].max(1) as f64),
        f2(cdf_mvno.quantile(0.15)),
    ]);
    let fair_spread = cdf_mno.quantile(0.9) - cdf_mno.quantile(0.1);
    r.note(format!(
        "paper: fair UEs clustered (~380 kb/s), premium ~450 kb/s, secondary <200 kb/s; here the fair slice spread (p90−p10) is {fair_spread:.0} kb/s and premium > fair > secondary must hold"
    ));
    r
}
