//! Fig. 7 — controller–agent signalling overhead (paper §5.2.1).
//!
//! The paper's worst case: a centralized scheduler at the master taking
//! every decision at TTI granularity, full statistics reports every TTI,
//! per-TTI master–agent synchronization, uniform downlink UDP traffic for
//! 10–50 UEs. Measured: bytes on the control channel per direction,
//! broken down by message category.
//!
//! Expected shapes: agent→master dominated by stats reporting, growing
//! *sublinearly* with the UE count (per-message framing and envelope are
//! amortized over aggregated per-UE reports); master→agent dominated by
//! scheduling commands, growing *faster than linearly* at the high end as
//! the saturated cell needs more DCIs per TTI.

use flexran::harness::UeRadioSpec;
use flexran::prelude::*;
use flexran::proto::{MessageCategory, Transport};
use flexran::sim::traffic::PoissonSource;
use flexran::stack::mac::scheduler::RoundRobinScheduler;

use crate::experiments::{remote_agent_config, sim_with_rtt, subscribe_stats};
use crate::{csv, f2, ExpContext, ExpResult};

struct Sample {
    n_ues: usize,
    // agent → master, Mb/s
    mgmt: f64,
    sync: f64,
    stats: f64,
    events: f64,
    // master → agent, Mb/s
    m_mgmt: f64,
    commands: f64,
}

fn run_point(n_ues: usize, ctx: &ExpContext) -> Sample {
    let mut sim = sim_with_rtt(0);
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), remote_agent_config());
    sim.master_mut()
        .register_app(Box::new(flexran::apps::CentralizedScheduler::new(
            2,
            Box::new(RoundRobinScheduler::new()),
        )));
    for i in 0..n_ues {
        let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10));
        // Uniform downlink UDP: 0.4 Mb/s per UE in 1200-byte packets.
        // Packetized arrivals mean a UE is backlogged only part of the
        // time, so the number of scheduling decisions per TTI — and with
        // it the command overhead — grows with the UE count until the
        // cell saturates, as in the paper.
        sim.set_dl_traffic(
            ue,
            Box::new(PoissonSource::new(
                BitRate::from_kbps(400),
                1200,
                100 + i as u64,
            )),
        );
    }
    sim.run(5);
    subscribe_stats(&mut sim, enb, 1);
    // Warm-up: attaches complete, queues reach steady state.
    sim.run(ctx.ttis(1_000, 400));
    let tx0 = sim.agent(enb).unwrap().transport().tx_counters();
    let rx0 = sim.agent(enb).unwrap().transport().rx_counters();
    let window = ctx.ttis(10_000, 1_500);
    sim.run(window);
    let tx = sim
        .agent(enb)
        .unwrap()
        .transport()
        .tx_counters()
        .since(&tx0);
    let rx = sim
        .agent(enb)
        .unwrap()
        .transport()
        .rx_counters()
        .since(&rx0);
    Sample {
        n_ues,
        mgmt: tx.mbps(MessageCategory::AgentManagement, window),
        sync: tx.mbps(MessageCategory::Sync, window),
        stats: tx.mbps(MessageCategory::StatsReporting, window),
        events: tx.mbps(MessageCategory::Events, window),
        m_mgmt: rx.mbps(MessageCategory::AgentManagement, window)
            + rx.mbps(MessageCategory::Delegation, window),
        commands: rx.mbps(MessageCategory::Commands, window),
    }
}

/// Fig. 7a and 7b together (one sweep feeds both).
pub fn fig7(ctx: &ExpContext) -> Vec<ExpResult> {
    let ue_counts: &[usize] = if ctx.quick {
        &[10, 30, 50]
    } else {
        &[10, 20, 30, 40, 50]
    };
    let samples: Vec<Sample> = ue_counts.iter().map(|n| run_point(*n, ctx)).collect();

    let mut a = ExpResult::new(
        "fig7a",
        "agent→master signalling vs UE count (paper Fig. 7a)",
        &[
            "UEs",
            "mgmt Mb/s",
            "sync Mb/s",
            "stats Mb/s",
            "events Mb/s",
            "total Mb/s",
        ],
    );
    let mut a_rows = Vec::new();
    for s in &samples {
        let total = s.mgmt + s.sync + s.stats + s.events;
        let row = vec![
            s.n_ues.to_string(),
            format!("{:.4}", s.mgmt),
            f2(s.sync),
            f2(s.stats),
            format!("{:.4}", s.events),
            f2(total),
        ];
        a.row(row.clone());
        a_rows.push(row);
    }
    ctx.write_csv(
        "fig7a",
        &csv(
            &[
                "ues",
                "mgmt_mbps",
                "sync_mbps",
                "stats_mbps",
                "events_mbps",
                "total_mbps",
            ],
            &a_rows,
        ),
    );
    // Linearity characterization for the notes.
    let per_ue_first = (samples[0].stats + samples[0].sync) / samples[0].n_ues as f64;
    let last = samples.last().expect("non-empty sweep");
    let per_ue_last = (last.stats + last.sync) / last.n_ues as f64;
    a.note(format!(
        "per-UE overhead {per_ue_first:.2} → {per_ue_last:.2} Mb/s; stats reporting dominates and agent management is negligible, as in the paper (the paper's visible sublinearity comes from protobuf scaffolding amortization, relatively smaller in this leaner encoding — see EXPERIMENTS.md)"
    ));

    let mut b = ExpResult::new(
        "fig7b",
        "master→agent signalling vs UE count (paper Fig. 7b)",
        &["UEs", "mgmt Mb/s", "commands Mb/s"],
    );
    let mut b_rows = Vec::new();
    for s in &samples {
        let row = vec![
            s.n_ues.to_string(),
            format!("{:.4}", s.m_mgmt),
            f2(s.commands),
        ];
        b.row(row.clone());
        b_rows.push(row);
    }
    ctx.write_csv(
        "fig7b",
        &csv(&["ues", "mgmt_mbps", "commands_mbps"], &b_rows),
    );
    b.note(format!(
        "commands grow {:.2} → {:.2} Mb/s as the saturated cell schedules more UEs per TTI; management is negligible (paper: <4 Mb/s, almost entirely scheduling decisions)",
        samples[0].commands,
        last.commands
    ));
    vec![a, b]
}
