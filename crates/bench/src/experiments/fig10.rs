//! Fig. 10 — interference management with optimized eICIC (paper §6.1).
//!
//! One macro cell and one small cell on the same carrier. Three modes:
//! uncoordinated, standard eICIC (macro muted in almost-blank subframes,
//! the small cell protected exactly then), and FlexRAN's optimized eICIC
//! (the master's coordinator watches the small cell's queues in the RIB
//! and hands idle ABS back to the macro cell).
//!
//! Expected shapes (paper Fig. 10a/10b): eICIC well above uncoordinated;
//! optimized adds on top (paper: ≈2× uncoordinated overall, ≈+22 % over
//! eICIC); the small cell's throughput identical under eICIC and
//! optimized, with the gain entirely at the macro cell.

use flexran::agent::AgentConfig;
use flexran::apps::eicic::{standard_abs_pattern, AbsAwareScheduler, OptimizedEicicApp};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::phy::geometry::{Environment, PathLossModel, Position, TxSite};
use flexran::phy::mobility::Stationary;
use flexran::prelude::*;
use flexran::sim::radio::RadioEnvironment;
use flexran::sim::traffic::{CbrSource, OnOffSource};
use flexran::types::units::Dbm;

use crate::experiments::subscribe_stats;
use crate::{csv, f2, ExpContext, ExpResult};

const MACRO: EnbId = EnbId(1);
const SMALL: EnbId = EnbId(2);
const CELL: CellId = CellId(0);

/// `(macro Mb/s, small Mb/s)` for one mode.
fn run_mode(mode: &str, ttis: u64) -> (f64, f64) {
    let mut env = Environment::new(10_000_000);
    let macro_site = env.add_site(TxSite {
        position: Position::new(0.0, 0.0),
        tx_power: Dbm(43.0),
        path_loss: PathLossModel::UrbanMacro,
    });
    let small_site = env.add_site(TxSite {
        position: Position::new(400.0, 0.0),
        tx_power: Dbm(30.0),
        path_loss: PathLossModel::SmallCell,
    });
    let mut sim =
        SimHarness::with_radio(SimConfig::default(), RadioEnvironment::with_geometry(env));
    let pattern = standard_abs_pattern(8);
    sim.add_enb(
        EnbConfig::single_cell(MACRO),
        AgentConfig {
            sync_period: if mode == "optimized" { 1 } else { 0 },
            ..AgentConfig::default()
        },
    );
    let mut small_cfg = EnbConfig::single_cell(SMALL);
    small_cfg.cells[0] = CellConfig::small_cell(CELL);
    sim.add_enb(small_cfg, AgentConfig::default());
    sim.map_cell_to_site(MACRO, CELL, macro_site);
    sim.map_cell_to_site(SMALL, CELL, small_site);

    if mode != "uncoordinated" {
        for (enb, small_side) in [(MACRO, false), (SMALL, true)] {
            let vsf: Box<dyn flexran::stack::mac::scheduler::DlScheduler> = if small_side {
                Box::new(AbsAwareScheduler::small_side(pattern))
            } else {
                Box::new(AbsAwareScheduler::macro_side(pattern))
            };
            let agent = sim.agent_mut(enb).unwrap();
            agent.mac.dl.insert("eicic", vsf);
            agent.mac.dl.activate("eicic").unwrap();
        }
        sim.set_site_activity_pattern(macro_site, pattern, false);
        sim.set_site_activity_pattern(small_site, pattern, true);
    }

    let mut macro_ues = Vec::new();
    for x in [150.0, 350.0, 370.0] {
        let ue = sim.add_ue(
            MACRO,
            CELL,
            SliceId::MNO,
            0,
            UeRadioSpec::Geo(Box::new(Stationary(Position::new(x, 0.0))), macro_site),
        );
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(12))));
        macro_ues.push(ue);
    }
    let small_ue = sim.add_ue(
        SMALL,
        CELL,
        SliceId::MNO,
        0,
        UeRadioSpec::Geo(Box::new(Stationary(Position::new(330.0, 0.0))), small_site),
    );
    sim.set_dl_traffic(
        small_ue,
        Box::new(OnOffSource::new(BitRate::from_mbps(4), 1000, 1000)),
    );

    if mode == "optimized" {
        sim.master_mut()
            .register_app(Box::new(OptimizedEicicApp::new(
                MACRO,
                0,
                vec![(SMALL, 0)],
                pattern,
                6,
            )));
        sim.run(3);
        subscribe_stats(&mut sim, MACRO, 1);
        subscribe_stats(&mut sim, SMALL, 1);
    }

    sim.run(ttis);
    let macro_mbps: f64 = macro_ues
        .iter()
        .map(|ue| {
            sim.ue_stats(*ue)
                .map(|s| s.dl_delivered_bits as f64 / ttis as f64 / 1000.0)
                .unwrap_or(0.0)
        })
        .sum();
    let small_mbps = sim
        .ue_stats(small_ue)
        .map(|s| s.dl_delivered_bits as f64 / ttis as f64 / 1000.0)
        .unwrap_or(0.0);
    (macro_mbps, small_mbps)
}

pub fn fig10(ctx: &ExpContext) -> Vec<ExpResult> {
    let ttis = ctx.ttis(10_000, 2_000);
    let modes = ["uncoordinated", "eicic", "optimized"];
    let results: Vec<(f64, f64)> = modes.iter().map(|m| run_mode(m, ttis)).collect();

    let mut a = ExpResult::new(
        "fig10a",
        "network throughput by coordination mode (paper Fig. 10a)",
        &["mode", "network Mb/s"],
    );
    let mut a_rows = Vec::new();
    for (m, (mac, small)) in modes.iter().zip(&results) {
        let row = vec![m.to_string(), f2(mac + small)];
        a.row(row.clone());
        a_rows.push(row);
    }
    ctx.write_csv("fig10a", &csv(&["mode", "network_mbps"], &a_rows));
    let (u, e, o) = (
        results[0].0 + results[0].1,
        results[1].0 + results[1].1,
        results[2].0 + results[2].1,
    );
    a.note(format!(
        "optimized/uncoordinated = {:.2}× (paper ≈2×); optimized/eICIC = {:+.1} % (paper ≈+22 %)",
        o / u.max(1e-9),
        (o / e.max(1e-9) - 1.0) * 100.0
    ));

    let mut b = ExpResult::new(
        "fig10b",
        "per-cell throughput, eICIC vs optimized (paper Fig. 10b)",
        &["mode", "macro Mb/s", "small Mb/s"],
    );
    let mut b_rows = Vec::new();
    for (m, (mac, small)) in modes.iter().zip(&results).skip(1) {
        let row = vec![m.to_string(), f2(*mac), f2(*small)];
        b.row(row.clone());
        b_rows.push(row);
    }
    ctx.write_csv(
        "fig10b",
        &csv(&["mode", "macro_mbps", "small_mbps"], &b_rows),
    );
    b.note("paper: small-cell throughput identical across the two eICIC modes; the optimized gain is entirely at the macro cell");
    vec![a, b]
}
