//! Fig. 11 — DASH rate adaptation, default vs FlexRAN-assisted player
//! (paper §6.2).
//!
//! Two cases, as in the paper:
//!
//! * **11a** (low variability): ladder {1.2, 2, 4} Mb/s, CQI toggling
//!   3 ↔ 2. The default player parks at the lowest bitrate; the assisted
//!   player exploits the RAN's CQI to ride the higher sustainable level
//!   when the channel allows — higher mean quality, no freezes for
//!   either.
//! * **11b** (high variability): the 4K ladder {2.9 … 19.6} Mb/s, CQI
//!   toggling 10 ↔ 4. The default player overshoots the achievable
//!   throughput, collapses into congestion and freezes; the assisted
//!   player holds a sustainable level with zero freezes and higher
//!   stability.

use flexran::agent::AgentConfig;
use flexran::apps::MecDashApp;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::dash::{Abr, AssistedAbr, DashClient, DashConfig, ReferenceAbr};

use crate::experiments::subscribe_stats;
use crate::{csv, f2, ExpContext, ExpResult};

struct Outcome {
    mean_bitrate: f64,
    max_bitrate: f64,
    rebuffer_events: u64,
    rebuffer_s: f64,
    segments: u64,
    /// Bitrate changes across consecutive segments (instability).
    switches: u64,
    /// Segments whose bitrate exceeded the channel capacity at choice
    /// time (the overshoot that triggers congestion).
    overshoots: u64,
}

fn run_player(
    low_var: bool,
    assisted: bool,
    ttis: u64,
    half_period: u64,
) -> (Outcome, Vec<Vec<String>>) {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    let (hi, lo) = if low_var { (3, 2) } else { (10, 4) };
    let ue = sim.add_ue(
        enb,
        CellId(0),
        SliceId::MNO,
        0,
        UeRadioSpec::CqiSquareWave(hi, lo, half_period),
    );
    let app = MecDashApp::new();
    let hints = app.hint_channel();
    sim.master_mut().register_app(Box::new(app));
    sim.run(3);
    subscribe_stats(&mut sim, enb, 10);
    sim.run(100);

    let cfg = if low_var {
        DashConfig::paper_low_ladder()
    } else {
        DashConfig::paper_4k_ladder()
    };
    let abr: Box<dyn Abr> = if assisted {
        Box::new(AssistedAbr)
    } else {
        Box::new(ReferenceAbr::default())
    };
    let mut client = DashClient::new(cfg, abr);
    let rnti = sim.ue_stats(ue).unwrap().rnti;
    for _ in 0..ttis {
        let stats = sim.ue_stats(ue).expect("attached");
        if assisted {
            if let Some(hint) = hints.read().get(&(EnbId(1), rnti)) {
                client.set_hint(*hint);
            }
        }
        let inject = client.on_tti(sim.now(), stats.dl_queue_bytes, stats.dl_delivered_bits);
        if !inject.is_zero() {
            sim.inject_dl(ue, inject).unwrap();
        }
        sim.step();
    }
    let series: Vec<Vec<String>> = client
        .bitrate_series
        .iter()
        .map(|(t, b)| vec![format!("{t:.1}"), f2(*b)])
        .collect();
    let mean = client.bitrate_series.iter().map(|p| p.1).sum::<f64>()
        / client.bitrate_series.len().max(1) as f64;
    let max = client
        .bitrate_series
        .iter()
        .map(|p| p.1)
        .fold(0.0f64, f64::max);
    let switches = client
        .bitrate_series
        .windows(2)
        .filter(|w| (w[0].1 - w[1].1).abs() > 1e-9)
        .count() as u64;
    // Capacity at each choice time follows the known CQI square wave.
    let capacity = |t_s: f64| -> f64 {
        let phase = ((t_s * 1000.0) as u64 / half_period) % 2;
        let cqi = if phase == 0 { hi } else { lo };
        flexran::apps::cqi_capacity(flexran::phy::link_adaptation::Cqi(cqi)).as_mbps_f64()
    };
    let overshoots = client
        .bitrate_series
        .iter()
        .filter(|(t, b)| *b > capacity(*t) * 0.97)
        .count() as u64;
    (
        Outcome {
            mean_bitrate: mean,
            max_bitrate: max,
            rebuffer_events: client.rebuffer_events,
            rebuffer_s: client.rebuffer_ms as f64 / 1000.0,
            segments: client.segments_completed,
            switches,
            overshoots,
        },
        series,
    )
}

pub fn fig11(ctx: &ExpContext, low_var: bool) -> ExpResult {
    let (id, title): (&'static str, &'static str) = if low_var {
        (
            "fig11a",
            "DASH adaptation, low throughput variability (paper Fig. 11a)",
        )
    } else {
        (
            "fig11b",
            "DASH adaptation, high throughput variability (paper Fig. 11b)",
        )
    };
    let ttis = ctx.ttis(120_000, 30_000);
    let half_period = ctx.ttis(20_000, 6_000);
    let mut r = ExpResult::new(
        id,
        title,
        &[
            "player",
            "mean Mb/s",
            "max Mb/s",
            "freezes",
            "frozen s",
            "segments",
            "switches",
            "overshoots",
        ],
    );
    let mut summary_rows = Vec::new();
    for assisted in [false, true] {
        let (o, series) = run_player(low_var, assisted, ttis, half_period);
        let label = if assisted { "assisted" } else { "reference" };
        ctx.write_csv(
            &format!("{id}_{label}_bitrate"),
            &csv(&["t_s", "mbps"], &series),
        );
        let row = vec![
            label.to_string(),
            f2(o.mean_bitrate),
            f2(o.max_bitrate),
            o.rebuffer_events.to_string(),
            f2(o.rebuffer_s),
            o.segments.to_string(),
            o.switches.to_string(),
            o.overshoots.to_string(),
        ];
        r.row(row.clone());
        summary_rows.push(row);
    }
    ctx.write_csv(
        id,
        &csv(
            &[
                "player",
                "mean_mbps",
                "max_mbps",
                "freezes",
                "frozen_s",
                "segments",
                "switches",
                "overshoots",
            ],
            &summary_rows,
        ),
    );
    if low_var {
        r.note("paper 11a: the default player misjudges the channel (theirs undershot; ours, with a sharper transport estimator, overshoots via buffer probes) while the assisted player tracks the sustainable level exactly — zero overshoots, fewer switches, no freezes for either");
    } else {
        r.note("paper 11b: the default player overshoots (19.6 > achievable ~15 Mb/s), congests and freezes repeatedly; the assisted player is stable with zero freezes");
    }
    r
}
