//! Fleet-config rollout smoke — the canary/rollback gate.
//!
//! Eight eNodeBs behind a journaled master, one loaded UE each. The run
//! exercises the whole rollout state machine (DESIGN.md §11) in two
//! acts over a fixed 2000-TTI budget:
//!
//! 1. **converge** — bundle v1 selects a real local scheduler; the
//!    canary (eNB 1) gates the fleet push and the rollout must end
//!    `converged` with all eight agents advertising v1's signature.
//! 2. **forced regression** — bundle v2 selects `remote-stub` with no
//!    delegation app behind it, so the canary's goodput collapses
//!    inside one observation window. The KPI gate must catch it and
//!    roll the fleet back: the run must end `rolled-back` with every
//!    agent on v1 and v2 never pushed past the canary.
//!
//! Any other outcome panics, so `scripts/check.sh` can use this
//! experiment as its rollout smoke gate. The emitted `rollout.csv` is
//! the journaled event history — deterministic run-to-run.

use flexran::agent::{AgentConfig, LivenessConfig};
use flexran::controller::{RolloutConfig, RolloutEventKind, RolloutPhase};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::traffic::CbrSource;

use crate::experiments::subscribe_stats;
use crate::{csv, ExpContext, ExpResult};

const N_ENBS: u32 = 8;
const CANARY: EnbId = EnbId(1);
const WINDOW: u64 = 100;

fn rollout_fleet() -> SimHarness {
    let cfg = SimConfig {
        master: TaskManagerConfig {
            liveness_timeout: 40,
            journal_snapshot_every: 8,
            ..TaskManagerConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimHarness::new(cfg);
    for i in 1..=N_ENBS {
        let enb = sim.add_enb(
            EnbConfig::single_cell(EnbId(i)),
            AgentConfig {
                sync_period: 1,
                liveness: LivenessConfig {
                    heartbeat_period: 5,
                    liveness_timeout: 40,
                    ..LivenessConfig::default()
                },
                ..AgentConfig::default()
            },
        );
        let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(2))));
    }
    sim.run(5);
    for i in 1..=N_ENBS {
        subscribe_stats(&mut sim, EnbId(i), 10);
    }
    sim
}

fn apply(sim: &mut SimHarness, scheduler: &str) -> u64 {
    sim.master_mut()
        .apply_config_bundle(
            String::new(),
            scheduler.to_string(),
            scheduler.to_string(),
            CANARY,
            RolloutConfig {
                observation_window: WINDOW,
                ..RolloutConfig::default()
            },
        )
        .expect("no rollout in flight")
}

/// Run until the in-flight rollout reaches a resting phase (or the TTI
/// budget runs out); returns TTIs consumed.
fn settle(sim: &mut SimHarness, budget: u64) -> u64 {
    let mut spent = 0;
    while spent < budget {
        sim.run(10);
        spent += 10;
        let phase = sim.master().rollout_status().phase;
        if matches!(phase, RolloutPhase::Converged | RolloutPhase::RolledBack) {
            break;
        }
    }
    spent
}

pub fn rollout(ctx: &ExpContext) -> ExpResult {
    let total = ctx.ttis_override.unwrap_or(ctx.ttis(2_000, 2_000));
    let mut sim = rollout_fleet();
    sim.run(100); // traffic + periodic reports settle before any baseline

    // Act 1: a clean canary-first rollout must converge.
    let v1 = apply(&mut sim, "round-robin");
    let spent = settle(&mut sim, total / 2);
    let s1 = sim.master().rollout_status();
    assert_eq!(
        s1.phase,
        RolloutPhase::Converged,
        "rollout smoke: v1 did not converge within {spent} TTIs ({s1:?})"
    );
    let v1_sig = sim
        .master()
        .agent_applied_config(CANARY)
        .expect("canary session");

    // Act 2: the forced regression must be caught at the canary and
    // rolled back to v1.
    let v2 = apply(&mut sim, "remote-stub");
    let spent2 = settle(&mut sim, total - spent);
    let s2 = sim.master().rollout_status();
    assert_eq!(
        s2.phase,
        RolloutPhase::RolledBack,
        "rollout smoke: v2 regression not rolled back within {spent2} TTIs ({s2:?})"
    );
    assert_eq!(
        s2.last_converged, v1,
        "rollback landed on the wrong version"
    );
    let history = sim.master().rollout_history();
    assert!(
        history
            .iter()
            .any(|e| e.kind == RolloutEventKind::Regression && e.version == v2),
        "no regression event journaled for v2"
    );
    assert!(
        !history
            .iter()
            .any(|e| e.kind == RolloutEventKind::FleetPushed && e.version == v2),
        "the regressing bundle escaped the canary"
    );
    let mut back_on_v1 = 0;
    for i in 1..=N_ENBS {
        if sim.master().agent_applied_config(EnbId(i)) == Some(v1_sig) {
            back_on_v1 += 1;
        }
    }
    assert_eq!(
        back_on_v1, N_ENBS,
        "only {back_on_v1}/{N_ENBS} agents advertise v1 after the rollback"
    );

    let mut r = ExpResult::new(
        "rollout",
        "fleet-config rollout: KPI-gated canary convergence, then forced regression and rollback",
        &["tti", "event", "version", "enb"],
    );
    for e in history {
        r.row(vec![
            e.tti.0.to_string(),
            e.kind.to_string(),
            e.version.to_string(),
            e.enb.0.to_string(),
        ]);
    }
    r.note(format!(
        "{N_ENBS} agents, canary {CANARY}, window {WINDOW} TTIs: v{v1} converged in \
         {spent} TTIs; v{v2} (remote-stub, no delegation app) rolled back in {spent2} \
         TTIs; {back_on_v1}/{N_ENBS} agents back on v{v1} (signature-verified via \
         heartbeat)"
    ));
    ctx.write_csv(
        "rollout",
        &csv(
            &r.headers.iter().map(String::as_str).collect::<Vec<_>>(),
            &r.rows,
        ),
    );
    r
}
