//! scale — the parallel multi-eNB TTI engine's perf trajectory.
//!
//! Not a paper figure: this experiment records the platform's own
//! scaling baseline so perf regressions are visible in review. It runs
//! the same multi-eNodeB simulation serially and fanned out over worker
//! threads (`SimConfig::workers`), across a grid of eNodeB and UE
//! counts, and reports:
//!
//! * TTIs/second and the per-phase wall-clock split (serial front —
//!   the master cycle with its fanned-out shard RIB slots — phase A,
//!   interference coupling, phase B, merge), across worker counts and
//!   control-plane shard specs,
//! * heap allocations per TTI (the whole `step`, via this crate's
//!   counting allocator),
//! * a digest of the end-state observables, asserting the determinism
//!   contract: serial and parallel runs must be bit-identical,
//! * a steady-state allocation probe of the MAC schedulers, asserting
//!   their zero-allocation hot-path contract,
//! * TTI latency percentiles from the deadline-budget monitor
//!   (p50/p95/p99/worst) and the derived "max sustainable cells at the
//!   1 ms budget" capacity estimate.
//!
//! Output: `scale.csv` plus machine-readable `BENCH_scale.json`
//! (`scripts/bench.sh` snapshots the latter to the repository root).

use std::time::Instant;

use flexran::agent::AgentConfig;
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::sim::traffic::FullBufferSource;

use crate::{alloc_counter, csv, f2, ExpContext, ExpResult};

/// One grid point's measurements.
struct Sample {
    enbs: usize,
    ues_per_enb: usize,
    workers: usize,
    shards: &'static str,
    ttis: u64,
    ttis_per_sec: f64,
    serial_front_ns: u64,
    phase_a_ns: u64,
    coupling_ns: u64,
    phase_b_ns: u64,
    merge_ns: u64,
    allocs_per_tti: f64,
    tti_p50_ns: u64,
    tti_p95_ns: u64,
    tti_p99_ns: u64,
    tti_worst_ns: u64,
    over_budget: u64,
    /// Linear extrapolation: how many single-cell eNBs fit in the TTI
    /// budget if per-cell cost scales like this grid point's p99.
    max_cells_at_budget: u64,
    digest: u64,
}

/// Warm-up TTIs before the steady-state allocation probes. Sized so
/// every pre-sized buffer (RLC queues ramping to the full-buffer target
/// depth, HARQ rings, scratch pools) reaches steady state: past this
/// point a TTI must be exactly allocation-free. The throughput rows keep
/// the shorter historical warm-up so their end-state digests stay
/// comparable to the committed baseline (same total TTI count).
const WARMUP_TTIS: u64 = 2_000;

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn build(
    n_enbs: usize,
    ues_per_enb: usize,
    workers: Option<usize>,
    shards: ShardSpec,
    seed: u64,
) -> SimHarness {
    let mut sim = SimHarness::new(SimConfig {
        seed,
        workers,
        master: TaskManagerConfig {
            shards,
            ..TaskManagerConfig::default()
        },
        ..SimConfig::default()
    });
    for e in 0..n_enbs {
        let enb = EnbId(e as u32 + 1);
        sim.add_enb(EnbConfig::single_cell(enb), AgentConfig::default());
        for u in 0..ues_per_enb {
            let ue_seed = seed ^ ((e as u64) << 32) ^ u as u64;
            let ue = sim.add_ue(
                enb,
                CellId(0),
                SliceId::MNO,
                0,
                UeRadioSpec::Fading(15.0, 4.0, 0.95, ue_seed),
            );
            sim.set_dl_traffic(ue, Box::new(FullBufferSource::default()));
        }
    }
    sim
}

/// Digest of the end-state observables: every UE's delivered-bit
/// counters and queue state, in UE-id order.
fn digest(sim: &SimHarness, n_enbs: usize, ues_per_enb: usize) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for id in 1..=(n_enbs * ues_per_enb) as u32 {
        let Some(s) = sim.ue_stats(UeId(id)) else {
            fnv(&mut h, u64::MAX);
            continue;
        };
        fnv(&mut h, s.dl_delivered_bits);
        fnv(&mut h, s.ul_delivered_bits);
        fnv(&mut h, s.dl_queue_bytes.as_u64());
        fnv(&mut h, s.cqi.0 as u64);
        fnv(&mut h, s.harq_tx + s.harq_retx);
    }
    h
}

fn run_point(
    n_enbs: usize,
    ues_per_enb: usize,
    workers: Option<usize>,
    shards: ShardSpec,
    shards_label: &'static str,
    ttis: u64,
) -> Sample {
    let mut sim = build(n_enbs, ues_per_enb, workers, shards, 7);
    sim.run(100); // attach + short warm-up (digest parity with baseline)
    sim.reset_budget(); // percentiles cover only the measured window
    let t0_timings = sim.phase_timings();
    let t0 = Instant::now();
    let (_, allocs, _) = alloc_counter::measure(|| sim.run(ttis));
    let wall = t0.elapsed();
    let t = sim.phase_timings();
    let b = sim.budget_stats();
    let p99 = b.p99_ns.max(1);
    Sample {
        enbs: n_enbs,
        ues_per_enb,
        workers: workers.unwrap_or(1),
        shards: shards_label,
        ttis,
        ttis_per_sec: ttis as f64 / wall.as_secs_f64(),
        serial_front_ns: t.serial_front_ns - t0_timings.serial_front_ns,
        phase_a_ns: t.phase_a_ns - t0_timings.phase_a_ns,
        coupling_ns: t.coupling_ns - t0_timings.coupling_ns,
        phase_b_ns: t.phase_b_ns - t0_timings.phase_b_ns,
        merge_ns: t.merge_ns - t0_timings.merge_ns,
        allocs_per_tti: allocs as f64 / ttis as f64,
        tti_p50_ns: b.p50_ns,
        tti_p95_ns: b.p95_ns,
        tti_p99_ns: b.p99_ns,
        tti_worst_ns: b.worst_ns,
        over_budget: b.over_budget,
        max_cells_at_budget: n_enbs as u64 * b.budget_ns / p99,
        digest: digest(&sim, n_enbs, ues_per_enb),
    }
}

/// Steady-state allocation probe of one grid point on the serial
/// engine: warm up past every buffer ramp, then count heap allocations
/// over a measured window. The zero-alloc-TTI contract says this is
/// exactly 0 — the `scale` experiment asserts it for every grid point.
fn steady_alloc_probe(n_enbs: usize, ues_per_enb: usize, ttis: u64) -> u64 {
    let mut sim = build(n_enbs, ues_per_enb, None, ShardSpec::Auto, 7);
    sim.run(WARMUP_TTIS);
    let (_, allocs, _) = alloc_counter::measure(|| sim.run(ttis));
    allocs
}

/// Steady-state allocation probe of the built-in MAC schedulers: after a
/// warm-up call, repeated `schedule_dl_into`/`schedule_ul_into` with
/// reused buffers must not touch the heap at all.
fn sched_alloc_probe() -> Vec<(&'static str, u64)> {
    use flexran::phy::link_adaptation::Cqi;
    use flexran::stack::mac::scheduler::{
        DlScheduler, DlSchedulerInput, DlSchedulerOutput, MaxCqiScheduler,
        ProportionalFairScheduler, RoundRobinScheduler, UeSchedInfo, UlRoundRobinScheduler,
        UlScheduler, UlSchedulerInput, UlSchedulerOutput, UlUeInfo,
    };
    use flexran::types::units::Bytes;

    let mut dl_in = DlSchedulerInput {
        cell: CellId(0),
        now: Tti(1),
        target: Tti(1),
        available_prb: 50,
        max_dcis: 8,
        ues: (0..64)
            .map(|i| UeSchedInfo {
                rnti: Rnti(0x100 + i as u16),
                cqi: Cqi(((i % 14) + 1) as u8),
                queue_bytes: Bytes(10_000 + i as u64),
                srb_bytes: Bytes::ZERO,
                avg_rate_bps: 1.0 + i as f64,
                slice: SliceId::MNO,
                priority_group: (i % 2) as u8,
                hol_delay_ms: i as u64,
            })
            .collect(),
        retx: vec![],
    };
    let ul_in = UlSchedulerInput {
        cell: CellId(0),
        now: Tti(1),
        target: Tti(1),
        available_prb: 50,
        max_grants: 8,
        ues: (0..64)
            .map(|i| UlUeInfo {
                rnti: Rnti(0x100 + i as u16),
                bsr_bytes: Bytes(5_000),
                cqi: Cqi(((i % 14) + 1) as u8),
                prb_cap: 16,
            })
            .collect(),
    };

    const ITERS: u64 = 1_000;
    let mut out = Vec::new();
    let mut dl_out = DlSchedulerOutput::default();
    let mut probe_dl = |name: &'static str, s: &mut dyn DlScheduler| {
        // Warm-up grows the scratch buffers to their steady-state size.
        for t in 0..4u64 {
            dl_in.now = Tti(t);
            dl_in.target = Tti(t);
            s.schedule_dl_into(&dl_in, &mut dl_out);
        }
        let (_, allocs, _) = alloc_counter::measure(|| {
            for t in 0..ITERS {
                dl_in.now = Tti(t);
                dl_in.target = Tti(t);
                s.schedule_dl_into(&dl_in, &mut dl_out);
            }
        });
        out.push((name, allocs));
    };
    probe_dl("round-robin", &mut RoundRobinScheduler::new());
    probe_dl("proportional-fair", &mut ProportionalFairScheduler::new());
    probe_dl("max-cqi", &mut MaxCqiScheduler::new());

    let mut ul = UlRoundRobinScheduler::new();
    let mut ul_out = UlSchedulerOutput::default();
    for _ in 0..4 {
        ul.schedule_ul_into(&ul_in, &mut ul_out);
    }
    let (_, allocs, _) = alloc_counter::measure(|| {
        for _ in 0..ITERS {
            ul.schedule_ul_into(&ul_in, &mut ul_out);
        }
    });
    out.push(("ul-round-robin", allocs));
    out
}

/// The scaling experiment: serial vs parallel TTI engine.
pub fn scale(ctx: &ExpContext) -> ExpResult {
    let ttis = ctx.ttis(2_000, 300);
    let parallel_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let grid: &[(usize, usize)] = &[(1, 16), (2, 32), (4, 64), (8, 16), (8, 64)];

    let mut r = ExpResult::new(
        "scale",
        "parallel TTI engine: serial vs worker-pool vs sharded-master scaling",
        &[
            "eNBs",
            "UEs/eNB",
            "workers",
            "shards",
            "TTIs/s",
            "phaseA ms",
            "phaseB ms",
            "serial-front ms",
            "allocs/TTI",
            "p99 µs",
            "cells@1ms",
            "identical",
        ],
    );
    let mut rows = Vec::new();
    let mut json_series = Vec::new();
    let mut steady_probes = Vec::new();
    let mut speedup_8x64 = 0.0;
    let mut front_speedup_4x64 = 0.0;
    let mut all_identical = true;
    for &(enbs, ues) in grid {
        let serial = run_point(enbs, ues, None, ShardSpec::Auto, "1", ttis);
        let parallel = run_point(
            enbs,
            ues,
            Some(parallel_workers),
            ShardSpec::Auto,
            "1",
            ttis,
        );
        let sharded = run_point(
            enbs,
            ues,
            Some(parallel_workers),
            ShardSpec::PerAgent,
            "per-agent",
            ttis,
        );
        let identical = serial.digest == parallel.digest && serial.digest == sharded.digest;
        all_identical &= identical;
        let probe_ttis = ctx.ttis(500, 200);
        let steady_allocs = steady_alloc_probe(enbs, ues, probe_ttis);
        steady_probes.push(serde_json::json!({
            "enbs": enbs,
            "ues_per_enb": ues,
            "warmup_ttis": WARMUP_TTIS,
            "measured_ttis": probe_ttis,
            "allocs": steady_allocs,
        }));
        assert!(
            steady_allocs == 0,
            "steady-state allocations regressed at {enbs}x{ues}: {steady_allocs} allocs \
             over {probe_ttis} TTIs after a {WARMUP_TTIS}-TTI warm-up"
        );
        if (enbs, ues) == (8, 64) {
            speedup_8x64 = parallel.ttis_per_sec / serial.ttis_per_sec.max(1e-9);
        }
        if (enbs, ues) == (4, 64) {
            front_speedup_4x64 =
                serial.serial_front_ns as f64 / (sharded.serial_front_ns as f64).max(1.0);
        }
        for s in [&serial, &parallel, &sharded] {
            let cells = vec![
                s.enbs.to_string(),
                s.ues_per_enb.to_string(),
                s.workers.to_string(),
                s.shards.to_string(),
                format!("{:.0}", s.ttis_per_sec),
                f2(s.phase_a_ns as f64 / 1e6),
                f2(s.phase_b_ns as f64 / 1e6),
                f2(s.serial_front_ns as f64 / 1e6),
                f2(s.allocs_per_tti),
                f2(s.tti_p99_ns as f64 / 1e3),
                s.max_cells_at_budget.to_string(),
                identical.to_string(),
            ];
            r.row(cells.clone());
            rows.push(cells);
            json_series.push(serde_json::json!({
                "enbs": s.enbs,
                "ues_per_enb": s.ues_per_enb,
                "workers": s.workers,
                "shards": s.shards,
                "ttis": s.ttis,
                "ttis_per_sec": s.ttis_per_sec,
                "serial_front_ns": s.serial_front_ns,
                "phase_a_ns": s.phase_a_ns,
                "coupling_ns": s.coupling_ns,
                "phase_b_ns": s.phase_b_ns,
                "merge_ns": s.merge_ns,
                "allocs_per_tti": s.allocs_per_tti,
                "tti_p50_ns": s.tti_p50_ns,
                "tti_p95_ns": s.tti_p95_ns,
                "tti_p99_ns": s.tti_p99_ns,
                "tti_worst_ns": s.tti_worst_ns,
                "over_budget": s.over_budget,
                "max_cells_at_budget": s.max_cells_at_budget,
                "digest": format!("{:016x}", s.digest),
            }));
        }
    }
    ctx.write_csv(
        "scale",
        &csv(
            &[
                "enbs",
                "ues_per_enb",
                "workers",
                "shards",
                "ttis_per_sec",
                "phase_a_ms",
                "phase_b_ms",
                "serial_front_ms",
                "allocs_per_tti",
                "tti_p99_us",
                "max_cells_at_budget",
                "identical",
            ],
            &rows,
        ),
    );

    let probe = sched_alloc_probe();
    let probe_json: Vec<_> = probe
        .iter()
        .map(|(name, allocs)| serde_json::json!({ "scheduler": *name, "allocs": *allocs }))
        .collect();
    let json = serde_json::json!({
        "bench": "scale",
        "quick": ctx.quick,
        "ttis_per_point": ttis,
        "parallel_workers": parallel_workers,
        "series": json_series,
        "steady_state_allocs": steady_probes,
        "sched_alloc_probe": probe_json,
        "speedup_8x64": speedup_8x64,
        "serial_front_speedup_4x64": front_speedup_4x64,
        "deterministic": all_identical,
        "note": if parallel_workers <= 1 {
            "recorded on a single-CPU machine: the worker pool degenerates to \
             one thread, so parallel speedup is ~1.0x by construction; the \
             determinism and allocation contracts are still fully exercised"
        } else {
            "multi-core machine: speedup_8x64 compares the worker pool against \
             the serial engine on identical workloads"
        },
    });
    std::fs::write(
        ctx.out_dir.join("BENCH_scale.json"),
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write BENCH_scale.json");

    r.note(format!(
        "steady-state allocations after a {WARMUP_TTIS}-TTI warm-up: 0 at every \
         grid point (asserted; the committed ceiling in `allocgate` is 0)"
    ));
    r.note(format!(
        "speedup at 8 eNBs × 64 UEs: {:.2}× with {} workers; serial-front speedup at \
         4 eNBs × 64 UEs with per-agent shards: {:.2}×; observables bit-identical: {}",
        speedup_8x64, parallel_workers, front_speedup_4x64, all_identical
    ));
    for (name, allocs) in &probe {
        r.note(format!(
            "scheduler '{name}': {allocs} allocations over 1000 steady-state calls"
        ));
    }
    assert!(
        all_identical,
        "parallel/sharded run diverged from serial (determinism contract broken)"
    );
    r
}

/// The committed allocs/TTI ceiling for a steady-state 2 eNB × 32 UE
/// serial run. Zero after the zero-alloc-TTI work: ratchet it *down*
/// only. `scripts/check.sh` runs the `allocgate` experiment on every
/// gate, so any hot-path allocation regression fails CI locally.
pub const ALLOC_CEILING_2X32: u64 = 0;

/// allocgate — the CI allocation-regression gate.
///
/// A fast, single-point version of the scale experiment's zero-alloc
/// assertion: build 2 eNBs × 32 UEs, warm up past the buffer ramp, then
/// count every heap allocation across a measured window with the
/// counting allocator. Fails (panics) if the count exceeds
/// [`ALLOC_CEILING_2X32`].
// The ceiling is currently 0, which makes the `<=` gate degenerate;
// the ratchet form is kept so a future (temporary) nonzero ceiling is a
// one-line constant change.
#[allow(clippy::absurd_extreme_comparisons)]
pub fn allocgate(ctx: &ExpContext) -> ExpResult {
    let ttis = ctx.ttis(500, 100);
    let mut sim = build(2, 32, None, ShardSpec::Auto, 7);
    sim.run(WARMUP_TTIS);
    let (_, allocs, frees) = alloc_counter::measure(|| sim.run(ttis));

    let mut r = ExpResult::new(
        "allocgate",
        "steady-state allocation gate (2 eNBs x 32 UEs, serial engine)",
        &["warmup TTIs", "measured TTIs", "allocs", "frees", "ceiling"],
    );
    r.row(vec![
        WARMUP_TTIS.to_string(),
        ttis.to_string(),
        allocs.to_string(),
        frees.to_string(),
        ALLOC_CEILING_2X32.to_string(),
    ]);
    r.note(format!(
        "{allocs} heap allocations over {ttis} steady-state TTIs          (committed ceiling: {ALLOC_CEILING_2X32})"
    ));
    assert!(
        allocs <= ALLOC_CEILING_2X32,
        "allocation gate failed: {allocs} allocs over {ttis} TTIs at 2x32          (ceiling {ALLOC_CEILING_2X32}); a per-TTI path started touching the heap"
    );
    r
}
