//! Criterion micro-benchmarks for the platform's hot paths:
//!
//! * `vsf_swap` — the paper's headline delegation number (~103 ns per
//!   runtime scheduler swap, §5.4).
//! * `proto/*` — FlexRAN protocol encode/decode of the worst-case
//!   statistics report (what the Fig. 7 load consists of).
//! * `rib_update` — one full stats report applied by the single-writer
//!   RIB updater (the Fig. 8 core-components cost).
//! * `scheduler/*` — one TTI of downlink scheduling at 50 UEs.
//! * `sim_tti` — one whole harness TTI (master cycle + agent phases +
//!   data plane) with 10 UEs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flexran::agent::vsf::{VsfImpl, VsfSlot};
use flexran::agent::{AgentConfig, VsfRegistry};
use flexran::controller::{Rib, RibUpdater};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::phy::link_adaptation::Cqi;
use flexran::prelude::*;
use flexran::proto::messages::stats::{ReportFlags, StatsReply, UeReport};
use flexran::proto::messages::{FlexranMessage, Header};
use flexran::sim::traffic::CbrSource;
use flexran::stack::mac::scheduler::{
    DlScheduler, DlSchedulerInput, ProportionalFairScheduler, RoundRobinScheduler, UeSchedInfo,
};
use flexran::stack::stats::UeStats;
use flexran::types::units::Bytes;

fn sample_ue_stats(i: u16) -> UeStats {
    UeStats {
        rnti: Rnti(0x100 + i),
        ue: UeId(i as u32),
        slice: SliceId(0),
        priority_group: 0,
        connected: true,
        cqi: Cqi(10),
        cqi_updated: Tti(100),
        sinr_db: 12.0,
        dl_queue_bytes: Bytes(10_000),
        srb_queue_bytes: Bytes(0),
        ul_bsr_bytes: Bytes(500),
        dl_delivered_bits: 1_000_000,
        ul_delivered_bits: 100_000,
        avg_rate_bps: 2e6,
        harq_tx: 100,
        harq_retx: 10,
        hol_delay_ms: 3,
        active_scells: vec![],
    }
}

fn worst_case_reply(n_ues: u16) -> StatsReply {
    StatsReply {
        enb_id: EnbId(1),
        tti: 12345,
        cells: vec![],
        ues: (0..n_ues)
            .map(|i| UeReport::from_stats(&sample_ue_stats(i), CellId(0), ReportFlags::ALL))
            .collect(),
    }
}

fn bench_vsf_swap(c: &mut Criterion) {
    let mut slot: VsfSlot<dyn DlScheduler> = VsfSlot::new();
    slot.insert("rr", Box::new(RoundRobinScheduler::new()));
    slot.insert("pf", Box::new(ProportionalFairScheduler::new()));
    let mut flip = false;
    c.bench_function("vsf_swap", |b| {
        b.iter(|| {
            flip = !flip;
            slot.activate(if flip { "rr" } else { "pf" }).unwrap();
            black_box(slot.active_name());
        })
    });
    // Registry instantiation (the "push" cost, excluding the wire).
    let registry = VsfRegistry::with_builtins();
    c.bench_function("vsf_instantiate", |b| {
        b.iter(|| {
            let imp = registry.instantiate("proportional-fair").unwrap();
            black_box(matches!(imp, VsfImpl::DlScheduler(_)));
        })
    });
}

fn bench_proto(c: &mut Criterion) {
    let reply = worst_case_reply(50);
    let msg = FlexranMessage::StatsReply(reply);
    c.bench_function("proto_encode_stats_50ues", |b| {
        b.iter(|| black_box(msg.encode(Header::with_xid(1))))
    });
    let bytes = msg.encode(Header::with_xid(1));
    c.bench_function("proto_decode_stats_50ues", |b| {
        b.iter(|| black_box(FlexranMessage::decode(&bytes).unwrap()))
    });
}

fn bench_rib_update(c: &mut Criterion) {
    let mut rib = Rib::new();
    let mut updater = RibUpdater::new();
    let msg = FlexranMessage::StatsReply(worst_case_reply(16));
    c.bench_function("rib_update_16ues", |b| {
        b.iter(|| {
            black_box(updater.apply(&mut rib, EnbId(1), &msg, Tti(1)));
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let ues: Vec<UeSchedInfo> = (0..50u16)
        .map(|i| UeSchedInfo {
            rnti: Rnti(0x100 + i),
            cqi: Cqi(5 + (i % 11) as u8),
            queue_bytes: Bytes(20_000),
            srb_bytes: Bytes(0),
            avg_rate_bps: 1e6 + i as f64 * 1e4,
            slice: SliceId((i % 2) as u8),
            priority_group: 0,
            hol_delay_ms: 1,
        })
        .collect();
    let input = DlSchedulerInput {
        cell: CellId(0),
        now: Tti(100),
        target: Tti(100),
        available_prb: 50,
        max_dcis: 10,
        ues,
        retx: vec![],
    };
    let mut rr = RoundRobinScheduler::new();
    c.bench_function("scheduler_rr_50ues", |b| {
        b.iter(|| black_box(rr.schedule_dl(&input)))
    });
    let mut pf = ProportionalFairScheduler::new();
    c.bench_function("scheduler_pf_50ues", |b| {
        b.iter(|| black_box(pf.schedule_dl(&input)))
    });
}

fn bench_sim_tti(c: &mut Criterion) {
    let mut sim = SimHarness::new(SimConfig::default());
    let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
    for _ in 0..10 {
        let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
    }
    sim.run(200); // attach
    c.bench_function("sim_tti_10ues", |b| b.iter(|| sim.step()));
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(50)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_vsf_swap, bench_proto, bench_rib_update, bench_scheduler, bench_sim_tti
}
criterion_main!(benches);
