//! `cargo bench --bench experiments_all` — regenerates every paper
//! table/figure in quick mode, so a plain `cargo bench --workspace`
//! exercises the full reproduction pipeline end to end.
//!
//! (`harness = false`: this is a driver, not a statistical benchmark —
//! the statistical micro-benchmarks live in `benches/micro.rs`.)

use flexran_bench::experiments::{self, ALL};
use flexran_bench::ExpContext;

fn main() {
    // Respect harness probes (`cargo bench -- --list`, test mode).
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        return;
    }
    let ctx = ExpContext::new(true, "target/experiments-quick");
    let mut seen = std::collections::HashSet::new();
    for id in ALL {
        let key = match *id {
            "fig7a" | "fig7b" => "fig7",
            "fig10a" | "fig10b" => "fig10",
            other => other,
        };
        if !seen.insert(key) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let results = experiments::run(id, &ctx);
        for r in &results {
            // One summary line per experiment keeps bench output readable.
            println!(
                "experiments_all/{}: ok ({} rows) in {:.1?}",
                r.id,
                r.rows.len(),
                t0.elapsed()
            );
            assert!(!r.rows.is_empty(), "experiment {id} produced no rows");
        }
    }
    println!("experiments_all: full suite regenerated (quick mode)");
}
