//! The LTE time base.
//!
//! Everything in the RAN is paced by the Transmission Time Interval (TTI),
//! which in LTE is one subframe = 1 ms. The air interface additionally
//! counts time in System Frame Number (SFN, 0..=1023) × subframe (0..=9)
//! pairs that wrap every 10.24 s. The master controller and the agents
//! exchange [`SfnSf`] values in synchronization messages, while simulation
//! code uses the monotonically increasing [`Tti`] counter.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A monotonically increasing TTI counter (1 TTI = 1 subframe = 1 ms).
///
/// `Tti` is the simulation's master clock: it never wraps, so durations can
/// be computed by plain subtraction. Use [`Tti::sfn_sf`] to obtain the
/// wrapped on-air representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tti(pub u64);

impl Tti {
    pub const ZERO: Tti = Tti(0);
    /// Number of subframes per radio frame.
    pub const SUBFRAMES_PER_FRAME: u64 = 10;
    /// SFN wraps at 1024 frames (10.24 s).
    pub const SFN_MODULUS: u64 = 1024;

    /// The wrapped `(SFN, subframe)` on-air representation of this TTI.
    pub fn sfn_sf(self) -> SfnSf {
        let frames = self.0 / Self::SUBFRAMES_PER_FRAME;
        SfnSf {
            sfn: (frames % Self::SFN_MODULUS) as u16,
            sf: (self.0 % Self::SUBFRAMES_PER_FRAME) as u8,
        }
    }

    /// Milliseconds since simulation start (1 TTI = 1 ms).
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The next TTI.
    #[must_use]
    pub fn next(self) -> Tti {
        Tti(self.0 + 1)
    }

    /// Saturating difference in TTIs (`self - earlier`), 0 if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: Tti) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Tti {
    type Output = Tti;
    fn add(self, rhs: u64) -> Tti {
        Tti(self.0 + rhs)
    }
}

impl AddAssign<u64> for Tti {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Tti> for Tti {
    type Output = u64;
    fn sub(self, rhs: Tti) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("TTI subtraction went negative")
    }
}

impl fmt::Display for Tti {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tti{}", self.0)
    }
}

/// Wrapped on-air time: System Frame Number and subframe index.
///
/// This is the representation carried in FlexRAN protocol synchronization
/// messages (the agent reports its current subframe to the master every
/// TTI when per-TTI sync is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SfnSf {
    /// System frame number, `0..=1023`.
    pub sfn: u16,
    /// Subframe within the frame, `0..=9`.
    pub sf: u8,
}

impl SfnSf {
    /// Construct with range validation.
    pub fn new(sfn: u16, sf: u8) -> crate::error::Result<Self> {
        if sfn >= Tti::SFN_MODULUS as u16 {
            return Err(crate::error::FlexError::InvalidConfig(format!(
                "SFN {sfn} outside 0..=1023"
            )));
        }
        if sf >= Tti::SUBFRAMES_PER_FRAME as u8 {
            return Err(crate::error::FlexError::InvalidConfig(format!(
                "subframe {sf} outside 0..=9"
            )));
        }
        Ok(SfnSf { sfn, sf })
    }

    /// Flatten into a subframe count within the 10.24 s hyperperiod.
    pub fn to_subframe_index(self) -> u64 {
        self.sfn as u64 * Tti::SUBFRAMES_PER_FRAME + self.sf as u64
    }

    /// Number of subframes from `self` to `other`, moving forward and
    /// wrapping at the 10.24 s hyperperiod boundary.
    pub fn subframes_until(self, other: SfnSf) -> u64 {
        const HYPER: u64 = Tti::SFN_MODULUS * Tti::SUBFRAMES_PER_FRAME;
        (other.to_subframe_index() + HYPER - self.to_subframe_index()) % HYPER
    }
}

impl fmt::Display for SfnSf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sfn{}.{}", self.sfn, self.sf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tti_to_sfnsf_wraps() {
        assert_eq!(Tti(0).sfn_sf(), SfnSf { sfn: 0, sf: 0 });
        assert_eq!(Tti(9).sfn_sf(), SfnSf { sfn: 0, sf: 9 });
        assert_eq!(Tti(10).sfn_sf(), SfnSf { sfn: 1, sf: 0 });
        // 1024 frames * 10 subframes = hyperperiod.
        assert_eq!(Tti(10240).sfn_sf(), SfnSf { sfn: 0, sf: 0 });
        assert_eq!(Tti(10241).sfn_sf(), SfnSf { sfn: 0, sf: 1 });
    }

    #[test]
    fn sfnsf_validation() {
        assert!(SfnSf::new(1023, 9).is_ok());
        assert!(SfnSf::new(1024, 0).is_err());
        assert!(SfnSf::new(0, 10).is_err());
    }

    #[test]
    fn subframes_until_wraps_forward() {
        let a = SfnSf::new(1023, 9).unwrap();
        let b = SfnSf::new(0, 0).unwrap();
        assert_eq!(a.subframes_until(b), 1);
        assert_eq!(b.subframes_until(a), 10239);
        assert_eq!(a.subframes_until(a), 0);
    }

    #[test]
    fn tti_arithmetic() {
        let t = Tti(41);
        assert_eq!(t + 1, Tti(42));
        assert_eq!(Tti(42) - Tti(40), 2);
        assert_eq!(Tti(42).saturating_since(Tti(50)), 0);
        assert_eq!(t.next(), Tti(42));
        assert_eq!(Tti(1500).as_secs_f64(), 1.5);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn tti_subtraction_underflow_panics() {
        let _ = Tti(1) - Tti(2);
    }
}
