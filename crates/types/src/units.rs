//! Unit-bearing numeric types.
//!
//! Throughput figures, buffer sizes and radio power levels flow through
//! every layer of the platform; giving them distinct types prevents the
//! classic bits-vs-bytes and dB-vs-linear mix-ups.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BitRate(pub u64);

impl BitRate {
    pub const ZERO: BitRate = BitRate(0);

    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }

    pub const fn from_kbps(kbps: u64) -> Self {
        BitRate(kbps * 1_000)
    }

    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }

    /// Construct from a fractional Mb/s figure (e.g. the 7.3 Mb/s DASH
    /// representation bitrate in the paper's Table 2).
    pub fn from_mbps_f64(mbps: f64) -> Self {
        BitRate((mbps * 1e6).round() as u64)
    }

    pub fn as_bps(self) -> u64 {
        self.0
    }

    pub fn as_kbps_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Bits transferred over `millis` milliseconds at this rate.
    pub fn bits_in_ms(self, millis: u64) -> u64 {
        // Split to avoid overflow for large rates × long windows.
        (self.0 / 1000) * millis + (self.0 % 1000) * millis / 1000
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 + rhs.0)
    }
}

impl AddAssign for BitRate {
    fn add_assign(&mut self, rhs: BitRate) {
        self.0 += rhs.0;
    }
}

impl Sub for BitRate {
    type Output = BitRate;
    fn sub(self, rhs: BitRate) -> BitRate {
        BitRate(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<f64> for BitRate {
    type Output = BitRate;
    fn mul(self, rhs: f64) -> BitRate {
        BitRate((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for BitRate {
    type Output = BitRate;
    fn div(self, rhs: u64) -> BitRate {
        BitRate(self.0 / rhs)
    }
}

impl Sum for BitRate {
    fn sum<I: Iterator<Item = BitRate>>(iter: I) -> BitRate {
        BitRate(iter.map(|r| r.0).sum())
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2} Mb/s", self.as_mbps_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1} kb/s", self.as_kbps_f64())
        } else {
            write!(f, "{} b/s", self.0)
        }
    }
}

/// A byte count (buffer occupancies, message sizes, transferred volumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    pub fn as_u64(self) -> u64 {
        self.0
    }

    pub fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Bytes needed to carry `bits` (rounded up).
    pub fn from_bits_ceil(bits: u64) -> Self {
        Bytes(bits.div_ceil(8))
    }

    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 20 {
            write!(f, "{:.2} MiB", self.0 as f64 / (1 << 20) as f64)
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.1} KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A relative power ratio in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(pub f64);

impl Db {
    pub fn new(db: f64) -> Self {
        Db(db)
    }

    /// Linear power ratio.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// From a linear power ratio.
    pub fn from_linear(lin: f64) -> Self {
        Db(10.0 * lin.log10())
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

/// An absolute power level in dBm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(pub f64);

impl Dbm {
    pub fn new(dbm: f64) -> Self {
        Dbm(dbm)
    }

    /// Power in milliwatts.
    pub fn to_mw(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// From milliwatts.
    pub fn from_mw(mw: f64) -> Self {
        Dbm(10.0 * mw.log10())
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrate_conversions() {
        assert_eq!(BitRate::from_mbps(25).as_bps(), 25_000_000);
        assert_eq!(BitRate::from_kbps(380).as_kbps_f64(), 380.0);
        assert_eq!(BitRate::from_mbps_f64(7.3).as_mbps_f64(), 7.3);
    }

    #[test]
    fn bitrate_bits_in_ms_no_overflow() {
        // 100 Mb/s over an hour.
        let r = BitRate::from_mbps(100);
        assert_eq!(r.bits_in_ms(3_600_000), 360_000_000_000);
        // Sub-kb/s rates still accumulate.
        assert_eq!(BitRate(500).bits_in_ms(2000), 1000);
    }

    #[test]
    fn bitrate_display_scales() {
        assert_eq!(BitRate::from_mbps(25).to_string(), "25.00 Mb/s");
        assert_eq!(BitRate::from_kbps(380).to_string(), "380.0 kb/s");
        assert_eq!(BitRate(12).to_string(), "12 b/s");
    }

    #[test]
    fn bytes_bits_roundtrip() {
        assert_eq!(Bytes(100).bits(), 800);
        assert_eq!(Bytes::from_bits_ceil(9), Bytes(2));
        assert_eq!(Bytes::from_bits_ceil(16), Bytes(2));
    }

    #[test]
    fn db_linear_roundtrip() {
        let x = Db(3.0);
        assert!((x.to_linear() - 1.9953).abs() < 1e-3);
        let back = Db::from_linear(x.to_linear());
        assert!((back.0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_arithmetic() {
        let tx = Dbm(23.0);
        let pl = Db(100.0);
        let rx = tx - pl;
        assert!((rx.0 - (-77.0)).abs() < 1e-9);
        assert!(((tx - rx).0 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sums() {
        let total: BitRate = [BitRate(1), BitRate(2), BitRate(3)].into_iter().sum();
        assert_eq!(total, BitRate(6));
        let total: Bytes = [Bytes(10), Bytes(20)].into_iter().sum();
        assert_eq!(total, Bytes(30));
    }
}
