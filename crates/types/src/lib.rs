#![forbid(unsafe_code)]
//! # flexran-types
//!
//! Foundation types shared by every crate in the FlexRAN workspace:
//! identifiers for network entities (eNodeBs, cells, UEs, bearers), the
//! LTE time base (TTI / SFN-SF), physical-layer unit types, cell and UE
//! configuration records, and the common error type.
//!
//! The types here are deliberately small, `Copy` where possible, and free
//! of any behaviour beyond conversions and invariant checks, so that the
//! data plane (`flexran-stack`), the protocol (`flexran-proto`) and the
//! control plane (`flexran-controller`) all agree on the same vocabulary.

pub mod budget;
pub mod config;
pub mod error;
pub mod ids;
pub mod time;
pub mod units;

pub use config::{Bandwidth, CellConfig, DuplexMode, EnbConfig, TransmissionMode, UeConfig};
pub use error::{Error, ErrorKind, FlexError, Result};
pub use ids::{BearerId, CellId, EnbId, GlobalCellId, HarqPid, Lcgid, Lcid, Rnti, SliceId, UeId};
pub use time::{SfnSf, Tti};
pub use units::{BitRate, Bytes, Db, Dbm};
