//! Identifiers for the entities managed by the FlexRAN platform.
//!
//! The identifier space mirrors the paper's RAN Information Base forest:
//! agents/eNodeBs at the root, cells below them, UEs as leaves. Radio-level
//! identities (RNTI, LCID, HARQ process id) follow the LTE standard ranges
//! and are validated on construction where the standard constrains them.

use std::fmt;

/// Identity of an eNodeB (and therefore of the FlexRAN agent attached to it).
///
/// In LTE this corresponds to the 20-bit macro eNB id; we keep the full
/// `u32` for simulation convenience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EnbId(pub u32);

impl fmt::Display for EnbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "enb{}", self.0)
    }
}

/// Identity of a cell, local to its eNodeB (an eNodeB may serve several
/// cells, e.g. one per sector or per component carrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CellId(pub u16);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// Globally unique cell identity: `(eNodeB, local cell)`.
///
/// This is what the master controller uses as a key in the RIB, where cells
/// from different agents must not collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct GlobalCellId {
    pub enb: EnbId,
    pub cell: CellId,
}

impl GlobalCellId {
    pub const fn new(enb: EnbId, cell: CellId) -> Self {
        Self { enb, cell }
    }
}

impl fmt::Display for GlobalCellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.enb, self.cell)
    }
}

/// Radio Network Temporary Identifier of a UE within a cell.
///
/// LTE reserves parts of the 16-bit space; C-RNTIs assigned to connected
/// UEs live in `0x003D..=0xFFF3`. [`Rnti::new_crnti`] enforces that range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Rnti(pub u16);

impl Rnti {
    /// First valid C-RNTI value.
    pub const CRNTI_MIN: u16 = 0x003D;
    /// Last valid C-RNTI value.
    pub const CRNTI_MAX: u16 = 0xFFF3;
    /// Paging RNTI (fixed by the standard).
    pub const P_RNTI: Rnti = Rnti(0xFFFE);
    /// System information RNTI (fixed by the standard).
    pub const SI_RNTI: Rnti = Rnti(0xFFFF);

    /// Construct a C-RNTI, checking the standard range.
    pub fn new_crnti(value: u16) -> crate::error::Result<Self> {
        if (Self::CRNTI_MIN..=Self::CRNTI_MAX).contains(&value) {
            Ok(Rnti(value))
        } else {
            Err(crate::error::FlexError::InvalidConfig(format!(
                "C-RNTI {value:#06x} outside valid range"
            )))
        }
    }

    /// Whether this value lies in the C-RNTI range.
    pub fn is_crnti(self) -> bool {
        (Self::CRNTI_MIN..=Self::CRNTI_MAX).contains(&self.0)
    }
}

impl fmt::Display for Rnti {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rnti:{:#06x}", self.0)
    }
}

/// Simulation-global UE identity (stable across handovers, unlike [`Rnti`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct UeId(pub u32);

impl fmt::Display for UeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ue{}", self.0)
    }
}

/// Logical channel id (0..=10 used for DRBs/SRBs in LTE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lcid(pub u8);

impl Lcid {
    /// SRB0 (CCCH).
    pub const SRB0: Lcid = Lcid(0);
    /// SRB1 (DCCH).
    pub const SRB1: Lcid = Lcid(1);
    /// First data radio bearer LCID.
    pub const DRB_FIRST: Lcid = Lcid(3);
}

/// Logical channel group id (0..=3), used by buffer status reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lcgid(pub u8);

impl Lcgid {
    /// Construct, validating the 2-bit range.
    pub fn new(value: u8) -> crate::error::Result<Self> {
        if value < 4 {
            Ok(Lcgid(value))
        } else {
            Err(crate::error::FlexError::InvalidConfig(format!(
                "LCG id {value} outside 0..=3"
            )))
        }
    }
}

/// Radio bearer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BearerId(pub u8);

/// HARQ process id. LTE FDD uses 8 downlink HARQ processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct HarqPid(pub u8);

impl HarqPid {
    /// Number of HARQ processes per UE in FDD.
    pub const NUM_FDD: u8 = 8;

    /// Construct, validating against the FDD process count.
    pub fn new(value: u8) -> crate::error::Result<Self> {
        if value < Self::NUM_FDD {
            Ok(HarqPid(value))
        } else {
            Err(crate::error::FlexError::InvalidConfig(format!(
                "HARQ pid {value} outside 0..={}",
                Self::NUM_FDD - 1
            )))
        }
    }
}

/// Identity of a network slice / virtual operator (MNO, MVNOs) sharing a
/// cell, as used by the RAN-sharing use case (paper §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SliceId(pub u8);

impl SliceId {
    /// The hosting operator's slice (owner of left-over resources).
    pub const MNO: SliceId = SliceId(0);
}

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crnti_range_enforced() {
        assert!(Rnti::new_crnti(0x003C).is_err());
        assert!(Rnti::new_crnti(0x003D).is_ok());
        assert!(Rnti::new_crnti(0xFFF3).is_ok());
        assert!(Rnti::new_crnti(0xFFF4).is_err());
    }

    #[test]
    fn reserved_rntis_are_not_crntis() {
        assert!(!Rnti::P_RNTI.is_crnti());
        assert!(!Rnti::SI_RNTI.is_crnti());
        assert!(Rnti(0x0100).is_crnti());
    }

    #[test]
    fn lcg_validation() {
        assert!(Lcgid::new(3).is_ok());
        assert!(Lcgid::new(4).is_err());
    }

    #[test]
    fn harq_pid_validation() {
        assert!(HarqPid::new(7).is_ok());
        assert!(HarqPid::new(8).is_err());
    }

    #[test]
    fn global_cell_display_and_ordering() {
        let a = GlobalCellId::new(EnbId(1), CellId(0));
        let b = GlobalCellId::new(EnbId(1), CellId(1));
        let c = GlobalCellId::new(EnbId(2), CellId(0));
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "enb1/cell0");
    }
}
