//! The workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Historical name of [`Error`], kept so call sites can use either.
pub type FlexError = Error;

/// Errors surfaced by the FlexRAN platform.
///
/// The platform spans a codec, two transports, a data-plane simulator and a
/// controller; a single structured enum keeps `?` usable across crate
/// boundaries without a proliferation of conversion impls, and lets
/// resilience code branch on [`Error::kind`] instead of matching strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A protocol message could not be encoded or decoded.
    Codec(String),
    /// A transport-level failure (connection lost, framing violation, ...).
    Transport(String),
    /// A referenced entity (agent, cell, UE, VSF, parameter) does not exist.
    NotFound(String),
    /// A configuration value violates an invariant.
    InvalidConfig(String),
    /// A control-delegation operation failed (unknown VSF, bad artifact,
    /// signature rejected, DSL compile error).
    Delegation(String),
    /// A policy reconfiguration message could not be parsed or applied.
    Policy(String),
    /// Two applications issued conflicting control decisions (paper §7.3).
    Conflict(String),
    /// An I/O error (carried as a string so the enum stays `Clone + Eq`).
    Io(String),
    /// An operation arrived too late to meet its real-time deadline.
    Deadline(String),
    /// A control-plane liveness failure: missed heartbeats, a session
    /// declared dead, or an operation refused because the peer is not in
    /// a connected state.
    Liveness(String),
}

/// Discriminant-only view of [`Error`], for `match`ing on failure class
/// without caring about the message (e.g. failover code reacting to
/// `Transport`/`Liveness` but propagating everything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    Codec,
    Transport,
    NotFound,
    InvalidConfig,
    Delegation,
    Policy,
    Conflict,
    Io,
    Deadline,
    Liveness,
}

impl Error {
    /// The failure class, independent of the message.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Codec(_) => ErrorKind::Codec,
            Error::Transport(_) => ErrorKind::Transport,
            Error::NotFound(_) => ErrorKind::NotFound,
            Error::InvalidConfig(_) => ErrorKind::InvalidConfig,
            Error::Delegation(_) => ErrorKind::Delegation,
            Error::Policy(_) => ErrorKind::Policy,
            Error::Conflict(_) => ErrorKind::Conflict,
            Error::Io(_) => ErrorKind::Io,
            Error::Deadline(_) => ErrorKind::Deadline,
            Error::Liveness(_) => ErrorKind::Liveness,
        }
    }

    /// Short machine-readable category name (used in logs and counters).
    pub fn category(&self) -> &'static str {
        self.kind().as_str()
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            Error::Codec(m)
            | Error::Transport(m)
            | Error::NotFound(m)
            | Error::InvalidConfig(m)
            | Error::Delegation(m)
            | Error::Policy(m)
            | Error::Conflict(m)
            | Error::Io(m)
            | Error::Deadline(m)
            | Error::Liveness(m) => m,
        }
    }

    /// Whether the failure concerns the control channel itself (transport
    /// I/O or liveness) — the class a failover state machine reacts to.
    pub fn is_connectivity(&self) -> bool {
        matches!(
            self.kind(),
            ErrorKind::Transport | ErrorKind::Io | ErrorKind::Liveness
        )
    }
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Codec => "codec",
            ErrorKind::Transport => "transport",
            ErrorKind::NotFound => "not-found",
            ErrorKind::InvalidConfig => "invalid-config",
            ErrorKind::Delegation => "delegation",
            ErrorKind::Policy => "policy",
            ErrorKind::Conflict => "conflict",
            ErrorKind::Io => "io",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Liveness => "liveness",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Transport(m) => write!(f, "transport error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Delegation(m) => write!(f, "control delegation error: {m}"),
            Error::Policy(m) => write!(f, "policy reconfiguration error: {m}"),
            Error::Conflict(m) => write!(f, "control conflict: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Deadline(m) => write!(f, "deadline missed: {m}"),
            Error::Liveness(m) => write!(f, "liveness failure: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = FlexError::NotFound("ue7".into());
        assert_eq!(e.to_string(), "not found: ue7");
        assert_eq!(e.category(), "not-found");
        assert_eq!(e.message(), "ue7");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let e: FlexError = io.into();
        assert_eq!(e.category(), "io");
        assert!(e.to_string().contains("pipe"));
        assert!(e.is_connectivity());
    }

    #[test]
    fn kinds_are_matchable() {
        let e = Error::Liveness("3 heartbeats missed".into());
        assert_eq!(e.kind(), ErrorKind::Liveness);
        assert!(e.is_connectivity());
        assert!(!Error::Policy("bad yaml".into()).is_connectivity());
        // A failover loop matches on kind, not message text:
        let action = match e.kind() {
            ErrorKind::Transport | ErrorKind::Liveness => "failover",
            _ => "propagate",
        };
        assert_eq!(action, "failover");
    }

    #[test]
    fn categories_are_stable() {
        for (e, cat) in [
            (Error::Codec(String::new()), "codec"),
            (Error::Transport(String::new()), "transport"),
            (Error::Delegation(String::new()), "delegation"),
            (Error::Policy(String::new()), "policy"),
            (Error::Conflict(String::new()), "conflict"),
            (Error::Deadline(String::new()), "deadline"),
            (Error::Liveness(String::new()), "liveness"),
        ] {
            assert_eq!(e.category(), cat);
            assert_eq!(e.kind().to_string(), cat);
        }
    }
}
