//! The workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, FlexError>;

/// Errors surfaced by the FlexRAN platform.
///
/// The platform spans a codec, two transports, a data-plane simulator and a
/// controller; a single error enum keeps `?` usable across crate boundaries
/// without a proliferation of conversion impls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlexError {
    /// A protocol message could not be encoded or decoded.
    Codec(String),
    /// A transport-level failure (connection lost, framing violation, ...).
    Transport(String),
    /// A referenced entity (agent, cell, UE, VSF, parameter) does not exist.
    NotFound(String),
    /// A configuration value violates an invariant.
    InvalidConfig(String),
    /// A control-delegation operation failed (unknown VSF, bad artifact,
    /// signature rejected, DSL compile error).
    Delegation(String),
    /// A policy reconfiguration message could not be parsed or applied.
    Policy(String),
    /// Two applications issued conflicting control decisions (paper §7.3).
    Conflict(String),
    /// An I/O error (carried as a string so the enum stays `Clone + Eq`).
    Io(String),
    /// An operation arrived too late to meet its real-time deadline.
    Deadline(String),
}

impl FlexError {
    /// Short machine-readable category name (used in logs and counters).
    pub fn category(&self) -> &'static str {
        match self {
            FlexError::Codec(_) => "codec",
            FlexError::Transport(_) => "transport",
            FlexError::NotFound(_) => "not-found",
            FlexError::InvalidConfig(_) => "invalid-config",
            FlexError::Delegation(_) => "delegation",
            FlexError::Policy(_) => "policy",
            FlexError::Conflict(_) => "conflict",
            FlexError::Io(_) => "io",
            FlexError::Deadline(_) => "deadline",
        }
    }
}

impl fmt::Display for FlexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlexError::Codec(m) => write!(f, "codec error: {m}"),
            FlexError::Transport(m) => write!(f, "transport error: {m}"),
            FlexError::NotFound(m) => write!(f, "not found: {m}"),
            FlexError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            FlexError::Delegation(m) => write!(f, "control delegation error: {m}"),
            FlexError::Policy(m) => write!(f, "policy reconfiguration error: {m}"),
            FlexError::Conflict(m) => write!(f, "control conflict: {m}"),
            FlexError::Io(m) => write!(f, "i/o error: {m}"),
            FlexError::Deadline(m) => write!(f, "deadline missed: {m}"),
        }
    }
}

impl std::error::Error for FlexError {}

impl From<std::io::Error> for FlexError {
    fn from(e: std::io::Error) -> Self {
        FlexError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = FlexError::NotFound("ue7".into());
        assert_eq!(e.to_string(), "not found: ue7");
        assert_eq!(e.category(), "not-found");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let e: FlexError = io.into();
        assert_eq!(e.category(), "io");
        assert!(e.to_string().contains("pipe"));
    }

    #[test]
    fn categories_are_stable() {
        for (e, cat) in [
            (FlexError::Codec(String::new()), "codec"),
            (FlexError::Transport(String::new()), "transport"),
            (FlexError::Delegation(String::new()), "delegation"),
            (FlexError::Policy(String::new()), "policy"),
            (FlexError::Conflict(String::new()), "conflict"),
            (FlexError::Deadline(String::new()), "deadline"),
        ] {
            assert_eq!(e.category(), cat);
        }
    }
}
