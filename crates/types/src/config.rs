//! Cell, eNodeB and UE configuration records.
//!
//! These are the objects returned and accepted by the *Configuration* call
//! type of the FlexRAN Agent API (paper Table 1): eNodeB id, number of
//! cells, cell id, UL/DL bandwidth, number of antenna ports, RNTIs,
//! UE transmission mode, and so on.

use crate::ids::{CellId, EnbId, Rnti, SliceId};
use crate::units::Dbm;

/// LTE channel bandwidth. Each bandwidth fixes the number of physical
/// resource blocks (PRBs) available per subframe (3GPP TS 36.101 §5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bandwidth {
    Mhz1_4,
    Mhz3,
    Mhz5,
    /// The paper's experiments all use 10 MHz (50 PRB) in band 5.
    #[default]
    Mhz10,
    Mhz15,
    Mhz20,
}

impl Bandwidth {
    /// Number of PRBs per subframe for this bandwidth.
    pub fn n_prb(self) -> u8 {
        match self {
            Bandwidth::Mhz1_4 => 6,
            Bandwidth::Mhz3 => 15,
            Bandwidth::Mhz5 => 25,
            Bandwidth::Mhz10 => 50,
            Bandwidth::Mhz15 => 75,
            Bandwidth::Mhz20 => 100,
        }
    }

    /// Bandwidth in Hz (nominal channel bandwidth).
    pub fn hz(self) -> u64 {
        match self {
            Bandwidth::Mhz1_4 => 1_400_000,
            Bandwidth::Mhz3 => 3_000_000,
            Bandwidth::Mhz5 => 5_000_000,
            Bandwidth::Mhz10 => 10_000_000,
            Bandwidth::Mhz15 => 15_000_000,
            Bandwidth::Mhz20 => 20_000_000,
        }
    }

    /// Parse from a PRB count (the representation used on the wire).
    pub fn from_n_prb(n: u8) -> crate::Result<Self> {
        Ok(match n {
            6 => Bandwidth::Mhz1_4,
            15 => Bandwidth::Mhz3,
            25 => Bandwidth::Mhz5,
            50 => Bandwidth::Mhz10,
            75 => Bandwidth::Mhz15,
            100 => Bandwidth::Mhz20,
            other => {
                return Err(crate::FlexError::InvalidConfig(format!(
                    "{other} PRBs is not a valid LTE bandwidth"
                )))
            }
        })
    }
}

/// Frame structure type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DuplexMode {
    /// Frequency-division duplex (frame structure type 1) — used by all
    /// experiments in the paper.
    #[default]
    Fdd,
    /// Time-division duplex (frame structure type 2). Modeled for
    /// configuration completeness; the scheduler substrate is FDD.
    Tdd,
}

/// Downlink transmission mode (TS 36.213 §7.1). The paper uses TM1
/// (single antenna port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransmissionMode(pub u8);

impl Default for TransmissionMode {
    fn default() -> Self {
        TransmissionMode(1)
    }
}

impl TransmissionMode {
    pub fn new(tm: u8) -> crate::Result<Self> {
        if (1..=10).contains(&tm) {
            Ok(TransmissionMode(tm))
        } else {
            Err(crate::FlexError::InvalidConfig(format!(
                "transmission mode {tm} outside 1..=10"
            )))
        }
    }
}

/// Static configuration of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    pub cell_id: CellId,
    /// E-UTRA operating band (the paper uses band 5).
    pub band: u16,
    pub duplex: DuplexMode,
    pub dl_bandwidth: Bandwidth,
    pub ul_bandwidth: Bandwidth,
    /// Number of cell-specific antenna ports (1, 2 or 4).
    pub n_antenna_ports: u8,
    /// Reference-signal transmit power.
    pub tx_power: Dbm,
    /// Number of OFDM symbols reserved for PDCCH per subframe (1..=3).
    /// Determines both the control-channel element budget (how many UEs
    /// can be scheduled per TTI) and the data-region overhead.
    pub pdcch_symbols: u8,
    /// Maximum number of downlink DCIs (scheduled UEs) per TTI. Physically
    /// bounded by the CCE budget implied by `pdcch_symbols`.
    pub max_dl_dcis_per_tti: u8,
    /// Maximum number of uplink grants per TTI.
    pub max_ul_grants_per_tti: u8,
}

impl CellConfig {
    /// The configuration used throughout the paper's evaluation: FDD,
    /// transmission mode 1, 10 MHz in band 5.
    pub fn paper_default(cell_id: CellId) -> Self {
        CellConfig {
            cell_id,
            band: 5,
            duplex: DuplexMode::Fdd,
            dl_bandwidth: Bandwidth::Mhz10,
            ul_bandwidth: Bandwidth::Mhz10,
            n_antenna_ports: 1,
            tx_power: Dbm(43.0),
            pdcch_symbols: 3,
            // ~10 candidate CCE positions at aggregation level suitable for
            // mid-range SINR in a 50-PRB cell: cap of 10 DL assignments.
            max_dl_dcis_per_tti: 10,
            max_ul_grants_per_tti: 8,
        }
    }

    /// A small-cell variant: lower power, same bandwidth.
    pub fn small_cell(cell_id: CellId) -> Self {
        CellConfig {
            tx_power: Dbm(30.0),
            ..Self::paper_default(cell_id)
        }
    }

    /// Validate invariants that the wire protocol cannot express.
    pub fn validate(&self) -> crate::Result<()> {
        if !(1..=3).contains(&self.pdcch_symbols) {
            // lint:allow(alloc-reach) error path — validation runs at (re)configuration
            return Err(crate::FlexError::InvalidConfig(format!(
                "pdcch_symbols {} outside 1..=3",
                self.pdcch_symbols
            )));
        }
        if ![1, 2, 4].contains(&self.n_antenna_ports) {
            // lint:allow(alloc-reach) error path — validation runs at (re)configuration
            return Err(crate::FlexError::InvalidConfig(format!(
                "{} antenna ports (must be 1, 2 or 4)",
                self.n_antenna_ports
            )));
        }
        if self.max_dl_dcis_per_tti == 0 || self.max_ul_grants_per_tti == 0 {
            return Err(crate::FlexError::InvalidConfig(
                "DCI/grant budgets must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// Static configuration of one eNodeB (one FlexRAN agent).
#[derive(Debug, Clone, PartialEq)]
pub struct EnbConfig {
    pub enb_id: EnbId,
    pub cells: Vec<CellConfig>,
}

impl EnbConfig {
    /// Single-cell eNodeB with the paper's default cell configuration.
    pub fn single_cell(enb_id: EnbId) -> Self {
        EnbConfig {
            enb_id,
            cells: vec![CellConfig::paper_default(CellId(0))],
        }
    }

    pub fn validate(&self) -> crate::Result<()> {
        if self.cells.is_empty() {
            return Err(crate::FlexError::InvalidConfig(
                "eNodeB must serve at least one cell".into(),
            ));
        }
        // lint:allow(alloc-reach) validation runs at (re)configuration, not per TTI
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.cells {
            c.validate()?;
            if !seen.insert(c.cell_id) {
                // lint:allow(alloc-reach) error path — validation runs at (re)configuration
                return Err(crate::FlexError::InvalidConfig(format!(
                    "duplicate cell id {}",
                    c.cell_id
                )));
            }
        }
        Ok(())
    }
}

/// Per-UE configuration visible to the control plane.
#[derive(Debug, Clone, PartialEq)]
pub struct UeConfig {
    pub rnti: Rnti,
    /// Serving (primary) cell.
    pub pcell: CellId,
    pub transmission_mode: TransmissionMode,
    /// Slice the UE's subscription belongs to (RAN sharing use case).
    pub slice: SliceId,
    /// UE category caps the transport block sizes it can receive; category
    /// 4 (150 Mb/s class) covers every experiment in the paper.
    pub ue_category: u8,
    /// Aggregate maximum bitrate for the UE's non-GBR bearers, if policed.
    pub ambr_dl: Option<crate::units::BitRate>,
}

impl UeConfig {
    pub fn new(rnti: Rnti, pcell: CellId) -> Self {
        UeConfig {
            rnti,
            pcell,
            transmission_mode: TransmissionMode::default(),
            slice: SliceId::MNO,
            ue_category: 4,
            ambr_dl: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_prb_mapping_is_bijective() {
        for bw in [
            Bandwidth::Mhz1_4,
            Bandwidth::Mhz3,
            Bandwidth::Mhz5,
            Bandwidth::Mhz10,
            Bandwidth::Mhz15,
            Bandwidth::Mhz20,
        ] {
            assert_eq!(Bandwidth::from_n_prb(bw.n_prb()).unwrap(), bw);
        }
        assert!(Bandwidth::from_n_prb(42).is_err());
    }

    #[test]
    fn paper_default_is_valid_and_matches_testbed() {
        let c = CellConfig::paper_default(CellId(0));
        c.validate().unwrap();
        assert_eq!(c.dl_bandwidth.n_prb(), 50);
        assert_eq!(c.band, 5);
        assert_eq!(c.duplex, DuplexMode::Fdd);
        assert_eq!(c.n_antenna_ports, 1);
    }

    #[test]
    fn cell_validation_rejects_bad_values() {
        let mut c = CellConfig::paper_default(CellId(0));
        c.pdcch_symbols = 0;
        assert!(c.validate().is_err());
        let mut c = CellConfig::paper_default(CellId(0));
        c.n_antenna_ports = 3;
        assert!(c.validate().is_err());
        let mut c = CellConfig::paper_default(CellId(0));
        c.max_dl_dcis_per_tti = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn enb_validation_rejects_duplicates_and_empty() {
        let mut e = EnbConfig::single_cell(EnbId(1));
        e.cells.push(CellConfig::paper_default(CellId(0)));
        assert!(e.validate().is_err());
        let e = EnbConfig {
            enb_id: EnbId(1),
            cells: vec![],
        };
        assert!(e.validate().is_err());
    }

    #[test]
    fn transmission_mode_range() {
        assert!(TransmissionMode::new(0).is_err());
        assert!(TransmissionMode::new(1).is_ok());
        assert!(TransmissionMode::new(10).is_ok());
        assert!(TransmissionMode::new(11).is_err());
    }

    #[test]
    fn small_cell_has_lower_power() {
        let macro_ = CellConfig::paper_default(CellId(0));
        let small = CellConfig::small_cell(CellId(1));
        assert!(small.tx_power.0 < macro_.tx_power.0);
        small.validate().unwrap();
    }
}
