//! TTI deadline budget accounting.
//!
//! The control loop must keep pace with the 1 ms LTE subframe (paper
//! §5.2): a master cycle that overruns its subframe delays every command
//! it would have issued. [`TtiBudget`] makes that budget a continuously
//! measured quantity instead of an assumption: each cycle's wall-clock
//! duration is recorded into a fixed log-bucketed histogram (no
//! allocation, O(1) per record) from which p50/p95/p99/worst-case
//! latency and an over-budget counter are derived.
//!
//! The histogram is *observability only*: readings come from the wall
//! clock and therefore differ run to run. Nothing that feeds back into
//! scheduling may branch on these numbers — the determinism contract
//! (serial ≡ parallel ≡ sharded) holds because budget state never
//! influences control decisions.

/// Sub-buckets per power of two. 16 keeps the relative quantization
/// error below ~6% while the whole histogram stays under 4 KiB.
const SUB: usize = 16;
/// Smallest resolved magnitude: values below `2^MIN_POW` ns share the
/// linear bottom buckets.
const MIN_POW: u32 = 4;
/// Largest resolved magnitude: `2^MAX_POW` ns ≈ 17.6 s per TTI — far
/// beyond any survivable overrun; larger values clamp into the top
/// bucket.
const MAX_POW: u32 = 44;
const BUCKETS: usize = (MAX_POW - MIN_POW) as usize * SUB + SUB;

/// Default budget: one LTE subframe.
pub const DEFAULT_TTI_BUDGET_NS: u64 = 1_000_000;

/// Fixed-size latency histogram tracking wall time against a TTI budget.
#[derive(Debug, Clone)]
pub struct TtiBudget {
    budget_ns: u64,
    counts: [u64; BUCKETS],
    recorded: u64,
    over_budget: u64,
    worst_ns: u64,
    total_ns: u64,
}

impl Default for TtiBudget {
    fn default() -> Self {
        Self::new(DEFAULT_TTI_BUDGET_NS)
    }
}

/// Bucket index for a nanosecond reading (monotonic in `ns`): a linear
/// bottom below `2^MIN_POW`, then one octave per power of two with the
/// top `log2(SUB)` mantissa bits selecting the sub-bucket.
fn bucket_of(ns: u64) -> usize {
    if ns < (1 << MIN_POW) {
        (ns as usize * SUB) >> MIN_POW
    } else {
        let pow = (63 - ns.leading_zeros()).min(MAX_POW - 1); // floor(log2)
        let sub = ((ns >> (pow - 4)) as usize) & (SUB - 1);
        SUB + (pow - MIN_POW) as usize * SUB + sub
    }
}

/// Upper edge (inclusive) of a bucket — what percentiles report. Using
/// the edge rather than a midpoint makes the estimate conservative: a
/// reported p99 is never below the true p99's bucket.
fn bucket_edge(idx: usize) -> u64 {
    if idx < SUB {
        (((idx + 1) << MIN_POW) / SUB) as u64
    } else {
        let pow = MIN_POW + (idx / SUB) as u32 - 1;
        let sub = (idx % SUB) as u64;
        let base = 1u64 << pow;
        base + ((sub + 1) * base) / SUB as u64
    }
}

impl TtiBudget {
    pub fn new(budget_ns: u64) -> Self {
        TtiBudget {
            budget_ns: budget_ns.max(1),
            counts: [0; BUCKETS],
            recorded: 0,
            over_budget: 0,
            worst_ns: 0,
            total_ns: 0,
        }
    }

    pub fn budget_ns(&self) -> u64 {
        self.budget_ns
    }

    /// Record one cycle's wall-clock duration.
    pub fn record(&mut self, ns: u64) {
        let idx = bucket_of(ns).min(BUCKETS - 1);
        self.counts[idx] += 1;
        self.recorded += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        if ns > self.worst_ns {
            self.worst_ns = ns;
        }
        if ns > self.budget_ns {
            self.over_budget += 1;
        }
    }

    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    pub fn over_budget(&self) -> u64 {
        self.over_budget
    }

    pub fn worst_ns(&self) -> u64 {
        self.worst_ns
    }

    /// Mean duration over all recorded cycles (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.recorded).unwrap_or(0)
    }

    /// Percentile estimate (bucket upper edge; `q` in 0..=100). The
    /// worst-case reading is reported exactly, so `percentile(100)`
    /// returns `worst_ns`.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.recorded == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        if q >= 100.0 {
            return self.worst_ns;
        }
        // Rank of the q-th percentile among `recorded` sorted samples.
        let rank = ((q / 100.0) * self.recorded as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the observed worst.
                return bucket_edge(idx).min(self.worst_ns);
            }
        }
        self.worst_ns
    }

    /// Snapshot for readers that must not hold a reference (northbound
    /// views, bench reports).
    pub fn stats(&self) -> BudgetStats {
        BudgetStats {
            budget_ns: self.budget_ns,
            recorded: self.recorded,
            over_budget: self.over_budget,
            p50_ns: self.percentile_ns(50.0),
            p95_ns: self.percentile_ns(95.0),
            p99_ns: self.percentile_ns(99.0),
            worst_ns: self.worst_ns,
            mean_ns: self.mean_ns(),
        }
    }

    /// Forget all recordings (budget setting survives).
    pub fn reset(&mut self) {
        let budget = self.budget_ns;
        *self = TtiBudget::new(budget);
    }
}

/// Copyable summary of a [`TtiBudget`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetStats {
    pub budget_ns: u64,
    pub recorded: u64,
    pub over_budget: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub worst_ns: u64,
    pub mean_ns: u64,
}

impl BudgetStats {
    /// Headroom of the p99 against the budget, in nanoseconds (negative
    /// when the tail already blows the deadline).
    pub fn headroom_p99_ns(&self) -> i64 {
        self.budget_ns as i64 - self.p99_ns as i64
    }

    /// Internal consistency — what a chaos oracle can assert without
    /// depending on actual (nondeterministic) wall-clock values.
    pub fn is_consistent(&self) -> bool {
        self.over_budget <= self.recorded
            && self.p50_ns <= self.p95_ns
            && self.p95_ns <= self.p99_ns
            && self.p99_ns <= self.worst_ns
            && (self.recorded > 0 || self.worst_ns == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotonic() {
        let mut last = 0;
        for i in 0..BUCKETS {
            let e = bucket_edge(i);
            assert!(e > last, "bucket {i}: edge {e} <= {last}");
            last = e;
        }
    }

    #[test]
    fn bucket_of_is_monotonic_and_consistent_with_edges() {
        let mut prev = 0usize;
        for ns in [
            0u64,
            1,
            5,
            15,
            16,
            17,
            100,
            1_000,
            9_999,
            65_536,
            1_000_000,
            5_000_000,
            1 << 40,
        ] {
            let b = bucket_of(ns).min(BUCKETS - 1);
            assert!(b >= prev, "bucket_of not monotonic at {ns}");
            assert!(
                bucket_edge(b) >= ns || b == BUCKETS - 1,
                "edge below value at {ns}: edge {}",
                bucket_edge(b)
            );
            prev = b;
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut b = TtiBudget::new(1_000_000);
        // 1..=1000 µs — p50 ≈ 500 µs, p99 ≈ 990 µs, worst exactly 1 ms.
        for i in 1..=1000u64 {
            b.record(i * 1_000);
        }
        let s = b.stats();
        assert_eq!(s.recorded, 1000);
        assert_eq!(s.worst_ns, 1_000_000);
        // Bucket quantization is ≤ 1/16 relative: accept a loose window.
        assert!((450_000..=570_000).contains(&s.p50_ns), "p50 {}", s.p50_ns);
        assert!(
            (900_000..=1_000_000).contains(&s.p99_ns),
            "p99 {}",
            s.p99_ns
        );
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.worst_ns);
        assert!(s.is_consistent());
    }

    #[test]
    fn over_budget_counts_only_overruns() {
        let mut b = TtiBudget::new(1_000);
        b.record(999);
        b.record(1_000); // exactly at budget: not over
        b.record(1_001);
        b.record(50_000);
        assert_eq!(b.over_budget(), 2);
        assert_eq!(b.recorded(), 4);
        assert_eq!(b.worst_ns(), 50_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let b = TtiBudget::new(1_000_000);
        let s = b.stats();
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.p99_ns, 0);
        assert_eq!(s.worst_ns, 0);
        assert!(s.is_consistent());
        assert_eq!(s.headroom_p99_ns(), 1_000_000);
    }

    #[test]
    fn p100_is_exact_worst() {
        let mut b = TtiBudget::default();
        for ns in [3_333, 777_777, 123] {
            b.record(ns);
        }
        assert_eq!(b.percentile_ns(100.0), 777_777);
    }

    #[test]
    fn single_sample_percentiles_collapse() {
        let mut b = TtiBudget::new(1_000_000);
        b.record(123_456);
        let s = b.stats();
        // One sample: every percentile lands in its bucket, capped at
        // the exact worst.
        assert_eq!(s.p50_ns, s.p99_ns);
        assert_eq!(s.worst_ns, 123_456);
        assert!(s.p50_ns >= 123_456 && s.p50_ns <= 132_000);
    }

    #[test]
    fn reset_preserves_budget() {
        let mut b = TtiBudget::new(42);
        b.record(100);
        b.reset();
        assert_eq!(b.budget_ns(), 42);
        assert_eq!(b.recorded(), 0);
        assert_eq!(b.worst_ns(), 0);
    }
}
