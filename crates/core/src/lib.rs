#![forbid(unsafe_code)]
//! # flexran
//!
//! A from-scratch Rust reproduction of **FlexRAN: A Flexible and
//! Programmable Platform for Software-Defined Radio Access Networks**
//! (Foukas, Nikaein, Kassem, Marina, Kontovasilis — CoNEXT 2016).
//!
//! The workspace implements the full platform the paper describes —
//! master controller, per-eNodeB agents, the protobuf-wire FlexRAN
//! protocol, virtualized control functions with runtime delegation — plus
//! every substrate its evaluation needs: an LTE L2 data plane, a PHY
//! abstraction with 3GPP tables, a virtual-time control-channel emulator,
//! traffic generators, and TCP/DASH application models. `DESIGN.md` maps
//! paper sections to crates; `EXPERIMENTS.md` records reproduced results.
//!
//! This umbrella crate re-exports the public API of every layer and adds
//! [`harness`]: the simulation harness that wires eNodeBs, agents, the
//! radio environment and the master controller into a stepping virtual
//! testbed — the equivalent of the paper's lab (controller machine, agent
//! machines, Gigabit Ethernet, `netem`).
//!
//! ## Quickstart
//!
//! ```
//! use flexran::harness::{SimHarness, SimConfig, UeRadioSpec};
//! use flexran::prelude::*;
//!
//! let mut sim = SimHarness::new(SimConfig::default());
//! let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), Default::default());
//! let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
//! sim.set_dl_traffic(ue, Box::new(flexran::sim::traffic::CbrSource::new(
//!     BitRate::from_mbps(2),
//! )));
//! sim.run(2_000); // 2 simulated seconds
//! let stats = sim.ue_stats(ue).expect("attached");
//! assert!(stats.dl_delivered_bits > 0);
//! ```

pub mod harness;
pub mod platform;

pub use platform::Platform;

/// The FlexRAN agent.
pub use flexran_agent as agent;
/// The bundled applications.
pub use flexran_apps as apps;
/// The master controller.
pub use flexran_controller as controller;
/// The PHY abstraction.
pub use flexran_phy as phy;
/// The FlexRAN protocol.
pub use flexran_proto as proto;
/// The simulation substrate.
pub use flexran_sim as sim;
/// The LTE L2 data plane.
pub use flexran_stack as stack;
/// The foundational types crate.
pub use flexran_types as types;

/// Commonly needed names in one import.
pub mod prelude {
    pub use flexran_agent::{
        AgentConfig, FailoverState, FlexranAgent, LivenessConfig, PolicyDoc, VsfRegistry,
    };
    pub use flexran_controller::{
        App, ControlHandle, MasterController, Northbound, RibView, SessionLivenessStats, ShardSpec,
        TaskManagerConfig,
    };
    pub use flexran_phy::link_adaptation::{Cqi, Mcs};
    pub use flexran_proto::messages::FlexranMessage;
    pub use flexran_stack::enb::{Enb, EnbParams};
    pub use flexran_types::config::{CellConfig, EnbConfig};
    pub use flexran_types::ids::{CellId, EnbId, Rnti, SliceId, UeId};
    pub use flexran_types::time::Tti;
    pub use flexran_types::units::{BitRate, Bytes};
}
