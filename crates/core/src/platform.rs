//! The platform builder: one place to configure a FlexRAN deployment.
//!
//! [`Platform`] collects the knobs that must agree across layers — the
//! heartbeat period the agent probes with, the liveness timeout both
//! sides declare a session dead after, the reconnect backoff a real-TCP
//! agent redials with — and derives the per-component configurations
//! ([`AgentConfig`], [`TaskManagerConfig`], [`BackoffConfig`]) plus a
//! ready [`SimHarness`] for virtual-time runs.
//!
//! Every knob defaults to the pre-resilience behaviour (no heartbeats,
//! no failover, default backoff), so `Platform::new().build_sim()` is
//! equivalent to `SimHarness::new(SimConfig::default())`.

use flexran_agent::{AgentConfig, LivenessConfig};
use flexran_controller::{ShardSpec, TaskManagerConfig};
use flexran_proto::transport::BackoffConfig;
use flexran_sim::link::LinkConfig;

use crate::harness::{SimConfig, SimHarness};

/// Builder for a coherently-configured FlexRAN platform.
#[derive(Debug, Clone)]
pub struct Platform {
    heartbeat_period: u64,
    liveness_timeout: u64,
    degraded_after: u64,
    fallback_dl_scheduler: String,
    reconnect_backoff: BackoffConfig,
    master: TaskManagerConfig,
    agent: AgentConfig,
    uplink: LinkConfig,
    downlink: LinkConfig,
    seed: u64,
    workers: Option<usize>,
    shards: ShardSpec,
}

impl Default for Platform {
    fn default() -> Self {
        Self::new()
    }
}

impl Platform {
    pub fn new() -> Self {
        Platform {
            heartbeat_period: 0,
            liveness_timeout: 0,
            degraded_after: 0,
            fallback_dl_scheduler: "round-robin".into(),
            reconnect_backoff: BackoffConfig::default(),
            master: TaskManagerConfig::default(),
            agent: AgentConfig::default(),
            uplink: LinkConfig::ideal(),
            downlink: LinkConfig::ideal(),
            seed: 1,
            workers: None,
            shards: ShardSpec::Auto,
        }
    }

    /// Agent heartbeat probe period (ms). 0 disables probing.
    pub fn heartbeat_period(mut self, ms: u64) -> Self {
        self.heartbeat_period = ms;
        self
    }

    /// Silence (ms) after which each side declares the session dead:
    /// the agent fails over to local control, the master marks the RIB
    /// subtree stale. 0 disables failover.
    pub fn liveness_timeout(mut self, ms: u64) -> Self {
        self.liveness_timeout = ms;
        self
    }

    /// Silence (ms) after which the agent enters `Degraded` (default:
    /// half the liveness timeout).
    pub fn degraded_after(mut self, ms: u64) -> Self {
        self.degraded_after = ms;
        self
    }

    /// Downlink VSF the agent activates on failover.
    pub fn fallback_dl_scheduler(mut self, name: impl Into<String>) -> Self {
        self.fallback_dl_scheduler = name.into();
        self
    }

    /// Redial schedule for real-TCP agents
    /// ([`flexran_proto::transport::ReconnectingTcpTransport`]).
    pub fn reconnect_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.reconnect_backoff = backoff;
        self
    }

    /// Base master configuration (liveness timeout is overlaid on top).
    pub fn master_config(mut self, config: TaskManagerConfig) -> Self {
        self.master = config;
        self
    }

    /// Base agent configuration (liveness knobs are overlaid on top).
    pub fn agent_config(mut self, config: AgentConfig) -> Self {
        self.agent = config;
        self
    }

    /// Control-channel links for simulated deployments.
    pub fn links(mut self, uplink: LinkConfig, downlink: LinkConfig) -> Self {
        self.uplink = uplink;
        self.downlink = downlink;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the harness's per-agent TTI phases. `None`
    /// (default) is fully serial; results are bit-identical either way.
    pub fn workers(mut self, workers: Option<usize>) -> Self {
        self.workers = workers;
        self
    }

    /// Control-plane sharding: how agents are partitioned across RIB
    /// shards ([`ShardSpec::Auto`], the default, keeps the single-shard
    /// behaviour every pre-shard configuration had). Apps never see
    /// shard boundaries; the northbound facade routes by agent id.
    pub fn shards(mut self, shards: ShardSpec) -> Self {
        self.shards = shards;
        self
    }

    /// The derived master configuration.
    pub fn build_master_config(&self) -> TaskManagerConfig {
        TaskManagerConfig {
            liveness_timeout: self.liveness_timeout,
            shards: self.shards,
            ..self.master
        }
    }

    /// The derived agent configuration.
    pub fn build_agent_config(&self) -> AgentConfig {
        AgentConfig {
            liveness: LivenessConfig {
                heartbeat_period: self.heartbeat_period,
                liveness_timeout: self.liveness_timeout,
                degraded_after: self.degraded_after,
                fallback_dl_scheduler: self.fallback_dl_scheduler.clone(),
            },
            ..self.agent.clone()
        }
    }

    /// The redial schedule for deployment-mode agents.
    pub fn backoff(&self) -> BackoffConfig {
        self.reconnect_backoff
    }

    /// A virtual-time harness carrying these settings. eNodeBs added with
    /// [`SimHarness::add_enb`] still pass their own [`AgentConfig`]; use
    /// [`Platform::build_agent_config`] for it to inherit the platform's
    /// liveness knobs.
    pub fn build_sim(&self) -> SimHarness {
        SimHarness::new(SimConfig {
            uplink: self.uplink,
            downlink: self.downlink,
            master: self.build_master_config(),
            seed: self.seed,
            workers: self.workers,
            tti_budget_ns: self.build_master_config().tti_budget_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_pre_resilience_behaviour() {
        let p = Platform::new();
        let agent = p.build_agent_config();
        assert!(!agent.liveness.enabled());
        assert_eq!(agent.liveness.heartbeat_period, 0);
        assert_eq!(p.build_master_config().liveness_timeout, 0);
        assert_eq!(p.build_master_config().shards.initial_shards(), 1);
    }

    #[test]
    fn shard_knob_flows_into_the_master_config() {
        let p = Platform::new().shards(ShardSpec::Fixed(4));
        assert!(matches!(
            p.build_master_config().shards,
            ShardSpec::Fixed(4)
        ));
        let sim = Platform::new().shards(ShardSpec::Fixed(2)).build_sim();
        assert_eq!(sim.master().n_shards(), 2);
    }

    #[test]
    fn knobs_flow_into_both_sides() {
        let p = Platform::new()
            .heartbeat_period(10)
            .liveness_timeout(40)
            .degraded_after(15)
            .fallback_dl_scheduler("proportional-fair")
            .reconnect_backoff(BackoffConfig {
                initial_ms: 20,
                ..BackoffConfig::default()
            });
        let agent = p.build_agent_config();
        assert_eq!(agent.liveness.heartbeat_period, 10);
        assert_eq!(agent.liveness.liveness_timeout, 40);
        assert_eq!(agent.liveness.degraded_after, 15);
        assert_eq!(agent.liveness.fallback_dl_scheduler, "proportional-fair");
        assert_eq!(p.build_master_config().liveness_timeout, 40);
        assert_eq!(p.backoff().initial_ms, 20);
        let sim = p.build_sim();
        assert_eq!(sim.now().0, 0);
    }
}
