//! The simulation harness: the paper's testbed in virtual time.
//!
//! A [`SimHarness`] owns one master controller, any number of
//! agent-enabled eNodeBs connected over configurable control-channel
//! links (latency/jitter/rate — the `netem` stand-in), the global radio
//! environment, the UE population and their traffic sources. One call to
//! [`SimHarness::step`] advances everything by exactly one TTI:
//!
//! 1. the master runs one Task Manager cycle (so its commands ride the
//!    control links this TTI),
//! 2. traffic sources inject bytes, measurement reports fire,
//! 3. every agent runs phase A (data-plane bookkeeping, protocol intake,
//!    local VSF scheduling),
//! 4. the harness derives which cells transmit and updates the
//!    interference coupling,
//! 5. every agent runs phase B (transmissions commit; events, sync and
//!    reports go out), and the harness completes attach bookkeeping and
//!    X2-style handovers.
//!
//! [`VanillaHarness`] is the agent-less baseline of Fig. 6: the same data
//! plane driven directly by an embedded scheduler, no FlexRAN anywhere.

use std::collections::BTreeMap;
use std::sync::Arc;

use flexran_agent::{AgentConfig, FlexranAgent, VsfRegistry};
use flexran_controller::{MasterController, TaskManagerConfig};
use flexran_phy::channel::{ChannelProcess, CqiSquareWave, FixedCqi, FixedSinr, GaussMarkovFading};
use flexran_phy::link_adaptation::Cqi;
use flexran_proto::transport::Transport;
use flexran_sim::clock::VirtualClock;
use flexran_sim::link::{
    sim_link_pair, sim_link_pair_with_faults, FaultHandle, LinkConfig, SimTransport,
};
use flexran_sim::radio::{PhyAdapter, RadioEnvironment, UeRadio};
use flexran_sim::traffic::TrafficSource;
use flexran_stack::enb::{Enb, EnbParams};
use flexran_stack::events::EnbEvent;
use flexran_stack::mac::dci::{DlSchedulingDecision, UlSchedulingDecision};
use flexran_stack::mac::scheduler::{
    DlScheduler, DlSchedulerInput, DlSchedulerOutput, RoundRobinScheduler, UlRoundRobinScheduler,
    UlScheduler, UlSchedulerInput, UlSchedulerOutput,
};
use flexran_stack::stats::UeStats;
use flexran_types::budget::TtiBudget;
use flexran_types::config::EnbConfig;
use flexran_types::ids::{CellId, EnbId, Rnti, SliceId, UeId};
use flexran_types::time::Tti;
use flexran_types::units::Bytes;
use flexran_types::{FlexError, Result};

/// Harness-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Default agent→master link.
    pub uplink: LinkConfig,
    /// Default master→agent link.
    pub downlink: LinkConfig,
    pub master: TaskManagerConfig,
    pub seed: u64,
    /// Worker threads for the per-agent TTI phases. `None` (the
    /// default) runs every agent serially on the calling thread;
    /// `Some(n)` fans phase A and phase B out over `n` scoped worker
    /// threads. Observables are bit-identical either way — see
    /// DESIGN.md §"Simulation engine" for the determinism contract.
    pub workers: Option<usize>,
    /// Whole-step wall-time deadline for the TTI budget monitor
    /// (nanoseconds; LTE subframe = 1 ms). Observability only — the
    /// monitor never feeds wall time back into simulation state.
    pub tti_budget_ns: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            uplink: LinkConfig::ideal(),
            downlink: LinkConfig::ideal(),
            master: TaskManagerConfig::default(),
            seed: 1,
            workers: None,
            tti_budget_ns: flexran_types::budget::DEFAULT_TTI_BUDGET_NS,
        }
    }
}

/// Cumulative wall-clock spent in each part of [`SimHarness::step`],
/// for the perf-trajectory experiments (`experiments scale`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Number of `step` calls accumulated.
    pub steps: u64,
    /// Master cycle: serial begin/finish around the fanned-out
    /// per-shard RIB slots (parallel when `workers` is set and the
    /// master has more than one shard).
    pub serial_front_ns: u64,
    /// Phase A across all agents, including per-agent traffic and
    /// measurement injection (parallel when `workers` is set).
    pub phase_a_ns: u64,
    /// Interference-coupling barrier (serial).
    pub coupling_ns: u64,
    /// Phase B across all agents (parallel when `workers` is set).
    pub phase_b_ns: u64,
    /// Event/handover merge in agent-index order (serial).
    pub merge_ns: u64,
}

/// Per-agent output of phase B, collected before the serial merge so
/// the application order is agent-index order regardless of which
/// worker thread ran which agent.
#[derive(Default)]
struct PhaseBOut {
    events: Vec<EnbEvent>,
    handovers: Vec<flexran_agent::HandoverRequest>,
}

/// Run `f(i, &mut items[i])` for every item, writing the result into
/// `out[i]`. With `workers > 1` the index space is split into
/// contiguous chunks, one scoped thread per chunk; each thread touches
/// a disjoint `&mut` slice of items and outputs, so the only
/// synchronization is the scope join and the index-addressed outputs
/// give callers a deterministic merge order.
fn fan_out<T, R, F>(items: &mut [T], out: &mut Vec<R>, workers: usize, f: F)
where
    T: Send,
    R: Send + Default,
    F: Fn(usize, &mut T) -> R + Sync,
{
    out.clear();
    out.resize_with(items.len(), R::default);
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        for (i, (item, slot)) in items.iter_mut().zip(out.iter_mut()).enumerate() {
            // The closure body is analyzed at its definition site
            // (closures-as-edges), not through this `Fn`. lint:alloc-free-callee
            *slot = f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    // Scoped worker spawn: thread stacks are the worker pool's cost, not
    // RIB-path heap traffic; the allocgate steady-state run pins
    // workers=1 where this branch never executes. lint:allow(alloc-reach)
    std::thread::scope(|s| {
        let f = &f;
        for (ci, (item_chunk, out_chunk)) in items
            .chunks_mut(chunk)
            .zip(out.chunks_mut(chunk))
            .enumerate()
        {
            // lint:allow(alloc-reach) per-worker spawn, see scope above
            s.spawn(move || {
                for (j, (item, slot)) in item_chunk.iter_mut().zip(out_chunk.iter_mut()).enumerate()
                {
                    // lint:alloc-free-callee closure analyzed at definition site
                    *slot = f(ci * chunk + j, item);
                }
            });
        }
    });
}

/// Two-slice variant of [`fan_out`] for phases that need a disjoint
/// `&mut` pair per index (an agent and its UE bucket). Chunking and
/// merge order are identical to `fan_out`, so serial and parallel runs
/// stay bit-identical.
fn fan_out2<A, B, R, F>(a: &mut [A], b: &mut [B], out: &mut Vec<R>, workers: usize, f: F)
where
    A: Send,
    B: Send,
    R: Send + Default,
    F: Fn(usize, &mut A, &mut B) -> R + Sync,
{
    assert_eq!(a.len(), b.len(), "fan_out2 over unequal slices");
    out.clear();
    out.resize_with(a.len(), R::default);
    let workers = workers.clamp(1, a.len().max(1));
    if workers <= 1 {
        for (i, ((ai, bi), slot)) in a
            .iter_mut()
            .zip(b.iter_mut())
            .zip(out.iter_mut())
            .enumerate()
        {
            // lint:alloc-free-callee closure analyzed at definition site
            *slot = f(i, ai, bi);
        }
        return;
    }
    let chunk = a.len().div_ceil(workers);
    // lint:allow(alloc-reach) worker fan-out — same rationale as fan_out
    std::thread::scope(|s| {
        let f = &f;
        for (ci, ((ac, bc), oc)) in a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .zip(out.chunks_mut(chunk))
            .enumerate()
        {
            // lint:allow(alloc-reach) per-worker spawn, see scope above
            s.spawn(move || {
                for (j, ((ai, bi), slot)) in ac
                    .iter_mut()
                    .zip(bc.iter_mut())
                    .zip(oc.iter_mut())
                    .enumerate()
                {
                    // lint:alloc-free-callee closure analyzed at definition site
                    *slot = f(ci * chunk + j, ai, bi);
                }
            });
        }
    });
}

/// Shared lookup into the per-agent UE buckets (the permanent home of
/// every [`UeEntry`]): `index` maps a UE to its owning agent, the
/// bucket is sorted by `UeId`. Free functions so callers can hold
/// disjoint borrows of the harness's other fields.
fn ue_entry<'a>(
    index: &BTreeMap<UeId, usize>,
    buckets: &'a [Vec<(UeId, UeEntry)>],
    ue: UeId,
) -> Option<&'a UeEntry> {
    let &idx = index.get(&ue)?;
    let b = buckets.get(idx)?;
    let i = b.binary_search_by_key(&ue, |(u, _)| *u).ok()?;
    Some(&b[i].1)
}

fn ue_entry_mut<'a>(
    index: &BTreeMap<UeId, usize>,
    buckets: &'a mut [Vec<(UeId, UeEntry)>],
    ue: UeId,
) -> Option<&'a mut UeEntry> {
    let &idx = index.get(&ue)?;
    let b = buckets.get_mut(idx)?;
    let i = b.binary_search_by_key(&ue, |(u, _)| *u).ok()?;
    Some(&mut b[i].1)
}

/// One UE's per-TTI traffic-source and measurement-report injection,
/// entirely local to the owning agent so the per-agent phase-A fan-out
/// can run it on worker threads. `rsrp_all_sites` is pure geometry (it
/// ignores the shared active-site set), so moving this off the serial
/// front does not change any simulation result.
fn drive_ue_traffic(
    agent: &mut FlexranAgent<SimTransport>,
    radio: &RadioEnvironment,
    ue: UeId,
    entry: &mut UeEntry,
    now: Tti,
) {
    let Some(rnti) = entry.rnti else { return };
    let cell = entry.cell;
    // Downlink.
    if let Some(src) = entry.dl_source.as_mut() {
        let queue = agent
            .enb()
            .dl_queue_bytes(cell, rnti)
            .unwrap_or(Bytes::ZERO);
        let due = src.bytes_due(now, queue);
        if !due.is_zero() {
            let _ = agent.enb_mut().inject_dl_traffic(cell, rnti, due, now);
        }
    }
    // Uplink.
    if let Some(src) = entry.ul_source.as_mut() {
        let due = src.bytes_due(now, Bytes::ZERO);
        if !due.is_zero() {
            let _ = agent.enb_mut().inject_ul_traffic(cell, rnti, due);
        }
    }
    // Measurement reports (geometry mode).
    if let (Some(period), Some(site)) = (entry.meas_period, entry.serving_site) {
        if now.0.is_multiple_of(period) {
            // lint:allow(alloc-reach) measurement sweep — runs per meas-report period
            let all = radio.rsrp_all_sites(ue, now);
            if !all.is_empty() {
                let serving_rsrp = all
                    .iter()
                    .find(|(s, _)| *s == site)
                    .map(|(_, r)| *r)
                    .unwrap_or(-140.0);
                let neighbours: Vec<(u32, f64)> = all
                    .into_iter()
                    .filter(|(s, _)| *s != site)
                    .map(|(s, r)| (s as u32, r))
                    // lint:allow(alloc-reach) owned by the measurement event — per meas period
                    .collect();
                let _ =
                    agent
                        .enb_mut()
                        .submit_measurement(cell, rnti, serving_rsrp, neighbours, now);
            }
        }
    }
}

/// How a UE's radio is specified when added to the harness.
pub enum UeRadioSpec {
    FixedCqi(u8),
    FixedSinrDb(f64),
    /// `(high CQI, low CQI, half-period ms)`.
    CqiSquareWave(u8, u8, u64),
    /// `(mean SINR dB, sigma dB, rho, seed)`.
    Fading(f64, f64, f64, u64),
    Custom(Box<dyn ChannelProcess>),
    /// Geometry mode: mobility model + serving site index.
    Geo(Box<dyn flexran_phy::mobility::MobilityModel>, usize),
}

struct UeEntry {
    agent_idx: usize,
    cell: CellId,
    slice: SliceId,
    group: u8,
    rnti: Option<Rnti>,
    dl_source: Option<Box<dyn TrafficSource>>,
    ul_source: Option<Box<dyn TrafficSource>>,
    /// Measurement-report period (ms), geometry mode only.
    meas_period: Option<u64>,
    serving_site: Option<usize>,
}

struct PendingHandover {
    target_enb: EnbId,
    target_cell: CellId,
    target_site: Option<usize>,
}

/// The virtual testbed.
pub struct SimHarness {
    clock: Arc<VirtualClock>,
    master: MasterController,
    agents: Vec<FlexranAgent<SimTransport>>,
    rnti_maps: Vec<BTreeMap<(CellId, Rnti), UeId>>,
    radio: RadioEnvironment,
    /// UE → owning agent index (cold path: attach, handover, queries).
    /// The entries themselves live in `ue_buckets`.
    ues: BTreeMap<UeId, usize>,
    next_ue: u32,
    now: Tti,
    /// `(agent, cell)` → radio site (geometry-mode interference).
    cell_sites: BTreeMap<(EnbId, CellId), usize>,
    /// Static activity hints per site: `(pattern, transmit_in_abs)`.
    /// Drives the active-site set used for *measurements* (the
    /// restricted-measurement behaviour eICIC UEs apply), before the
    /// actual per-TTI transmission set is known.
    site_activity: BTreeMap<usize, (flexran_stack::enb::AbsPattern, bool)>,
    pending_handovers: BTreeMap<(usize, Rnti), PendingHandover>,
    /// Events of the last step, for callers that inspect them.
    pub last_events: Vec<(EnbId, EnbEvent)>,
    /// Phase-B scratch, reused every TTI.
    phase_b_out: Vec<PhaseBOut>,
    /// Permanent per-agent UE buckets (sorted by `UeId`), indexed by
    /// `ues`. Phase A iterates these directly — no per-TTI rebucketing.
    ue_buckets: Vec<Vec<(UeId, UeEntry)>>,
    /// Active-site scratch (measurement hint, then interference
    /// coupling), reused every TTI.
    site_scratch: Vec<usize>,
    timings: PhaseTimings,
    /// Whole-step deadline monitor against `config.tti_budget_ns`
    /// (records the same span `PhaseTimings` decomposes).
    budget: TtiBudget,
    config: SimConfig,
    /// Per-agent fault handle (same order as `agents`), where one was
    /// attached.
    fault_handles: Vec<Option<FaultHandle>>,
    /// Master crash state: while `true`, no Task Manager cycles run and
    /// everything the agents send evaporates at the (dead) master side.
    master_down: bool,
    /// Links survive a master crash — the processes die, the network
    /// does not. Parked here between kill and restart, in session order.
    parked_transports: Vec<Box<dyn Transport>>,
    /// The journal "on disk" at the moment of the crash.
    parked_journal: Option<Vec<u8>>,
}

impl SimHarness {
    pub fn new(config: SimConfig) -> Self {
        SimHarness::with_radio(config, RadioEnvironment::new())
    }

    /// Harness over a geometry-aware radio environment.
    pub fn with_radio(config: SimConfig, radio: RadioEnvironment) -> Self {
        SimHarness {
            clock: Arc::new(VirtualClock::new()),
            master: MasterController::new(config.master),
            agents: Vec::new(),
            rnti_maps: Vec::new(),
            radio,
            ues: BTreeMap::new(),
            next_ue: 1,
            now: Tti::ZERO,
            cell_sites: BTreeMap::new(),
            pending_handovers: BTreeMap::new(),
            last_events: Vec::new(),
            site_activity: BTreeMap::new(),
            phase_b_out: Vec::new(),
            ue_buckets: Vec::new(),
            site_scratch: Vec::new(),
            timings: PhaseTimings::default(),
            budget: TtiBudget::new(config.tti_budget_ns),
            config,
            fault_handles: Vec::new(),
            master_down: false,
            parked_transports: Vec::new(),
            parked_journal: None,
        }
    }

    /// Add an agent-enabled eNodeB connected over the default links.
    pub fn add_enb(&mut self, config: EnbConfig, agent_config: AgentConfig) -> EnbId {
        self.add_enb_with(config, agent_config, EnbParams::default(), None)
    }

    /// Full-control variant: custom data-plane parameters and links.
    pub fn add_enb_with(
        &mut self,
        config: EnbConfig,
        agent_config: AgentConfig,
        enb_params: EnbParams,
        links: Option<(LinkConfig, LinkConfig)>,
    ) -> EnbId {
        self.add_enb_inner(config, agent_config, enb_params, links, None)
    }

    /// Like [`SimHarness::add_enb_with`], with a fault model steering the
    /// control links (partitions, drops, bursts) — the outage experiments
    /// script the handle while the simulation runs.
    pub fn add_enb_with_faults(
        &mut self,
        config: EnbConfig,
        agent_config: AgentConfig,
        enb_params: EnbParams,
        links: Option<(LinkConfig, LinkConfig)>,
        faults: FaultHandle,
    ) -> EnbId {
        self.add_enb_inner(config, agent_config, enb_params, links, Some(faults))
    }

    fn add_enb_inner(
        &mut self,
        config: EnbConfig,
        agent_config: AgentConfig,
        enb_params: EnbParams,
        links: Option<(LinkConfig, LinkConfig)>,
        faults: Option<FaultHandle>,
    ) -> EnbId {
        let enb_id = config.enb_id;
        let (up, down) = links.unwrap_or((self.config.uplink, self.config.downlink));
        let (agent_side, master_side) = match &faults {
            Some(f) => sim_link_pair_with_faults(self.clock.clone(), up, down, f.clone()),
            None => sim_link_pair(self.clock.clone(), up, down),
        };
        self.fault_handles.push(faults);
        let mut registry = VsfRegistry::with_builtins();
        flexran_apps::register_app_vsfs(&mut registry);
        let enb = Enb::new(config, enb_params).expect("valid eNodeB config");
        let agent = FlexranAgent::new(enb, agent_side, registry, agent_config);
        self.master.add_agent(Box::new(master_side));
        self.agents.push(agent);
        self.rnti_maps.push(BTreeMap::new());
        enb_id
    }

    fn agent_idx(&self, enb: EnbId) -> Result<usize> {
        self.agents
            .iter()
            .position(|a| a.enb().config().enb_id == enb)
            .ok_or_else(|| FlexError::NotFound(format!("{enb}"))) // lint:allow(alloc-reach) error path
    }

    /// The agent of an eNodeB.
    pub fn agent(&self, enb: EnbId) -> Result<&FlexranAgent<SimTransport>> {
        Ok(&self.agents[self.agent_idx(enb)?])
    }

    pub fn agent_mut(&mut self, enb: EnbId) -> Result<&mut FlexranAgent<SimTransport>> {
        let i = self.agent_idx(enb)?;
        Ok(&mut self.agents[i])
    }

    pub fn master(&self) -> &MasterController {
        &self.master
    }

    pub fn master_mut(&mut self) -> &mut MasterController {
        &mut self.master
    }

    /// Whether the master is currently crashed (between
    /// [`SimHarness::kill_master`] and [`SimHarness::restart_master`]).
    pub fn master_down(&self) -> bool {
        self.master_down
    }

    /// eNodeB ids, in agent-index order.
    pub fn enb_ids(&self) -> Vec<EnbId> {
        self.agents
            .iter()
            .map(|a| a.enb().config().enb_id)
            .collect()
    }

    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The fault handle attached to an eNodeB's control link, if any.
    pub fn fault_handle(&self, enb: EnbId) -> Option<FaultHandle> {
        let i = self.agent_idx(enb).ok()?;
        self.fault_handles[i].clone()
    }

    /// Crash the master process. Its journal survives "on disk"; the
    /// control links survive too (the network outlives the process), but
    /// everything queued towards the master — and everything the agents
    /// send while it is down — is lost with its sockets. No Task Manager
    /// cycles run until [`SimHarness::restart_master`]. Idempotent.
    pub fn kill_master(&mut self) {
        if self.master_down {
            return;
        }
        self.parked_journal = self.master.journal_bytes();
        self.parked_transports = self.master.take_transports();
        for t in &mut self.parked_transports {
            let _ = t.purge_inbound();
        }
        self.master_down = true;
    }

    /// Restart the master: recover the RIB from the crash-time journal
    /// (fresh controller if journaling was off), re-attach the surviving
    /// links in session order, and resume Task Manager cycles. Apps are
    /// *not* carried over — a restarted process re-registers its apps;
    /// do that via [`SimHarness::master_mut`] after this returns.
    pub fn restart_master(&mut self) -> Result<()> {
        if !self.master_down {
            return Err(FlexError::Liveness("master is not down".into()));
        }
        let mut master = match self.parked_journal.take() {
            Some(journal) => MasterController::recover(self.config.master, &journal, self.now)?,
            None => MasterController::new(self.config.master),
        };
        for t in self.parked_transports.drain(..) {
            master.add_agent(t);
        }
        self.master = master;
        self.master_down = false;
        Ok(())
    }

    /// Crash and immediately restart an agent *process*: all soft
    /// control-plane state is lost ([`FlexranAgent::crash_restart`]) and
    /// so is everything queued towards the agent — the dead process's
    /// socket buffers. The data plane keeps running.
    pub fn crash_agent(&mut self, enb: EnbId) -> Result<()> {
        let i = self.agent_idx(enb)?;
        self.agents[i].crash_restart();
        let _ = self.agents[i].transport_mut().purge_inbound();
        Ok(())
    }

    pub fn radio_mut(&mut self) -> &mut RadioEnvironment {
        &mut self.radio
    }

    pub fn now(&self) -> Tti {
        self.now
    }

    /// Associate a cell with a radio site (geometry mode: the site's
    /// activity drives interference for other cells' UEs).
    pub fn map_cell_to_site(&mut self, enb: EnbId, cell: CellId, site: usize) {
        self.cell_sites.insert((enb, cell), site);
    }

    /// Declare a site's subframe activity pattern for *measurement*
    /// purposes (eICIC restricted measurements): `transmit_in_abs = false`
    /// means the site is silent during ABS subframes of `pattern` (a
    /// macro cell), `true` means it transmits only then (a protected
    /// small cell). Sites without a hint count as always-on.
    pub fn set_site_activity_pattern(
        &mut self,
        site: usize,
        pattern: flexran_stack::enb::AbsPattern,
        transmit_in_abs: bool,
    ) {
        self.site_activity.insert(site, (pattern, transmit_in_abs));
    }

    fn measurement_active_sites_into(&self, tti: Tti, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.cell_sites
                .values()
                .filter(|site| match self.site_activity.get(site) {
                    None => true,
                    Some((pattern, tx_in_abs)) => {
                        let abs = pattern[(tti.0 % 40) as usize];
                        abs == *tx_in_abs
                    }
                })
                .copied(),
        );
    }

    /// Add a UE and start its attach procedure.
    pub fn add_ue(
        &mut self,
        enb: EnbId,
        cell: CellId,
        slice: SliceId,
        group: u8,
        radio: UeRadioSpec,
    ) -> UeId {
        let ue = UeId(self.next_ue);
        self.next_ue += 1;
        let (ue_radio, serving_site) = match radio {
            UeRadioSpec::FixedCqi(c) => (
                UeRadio::Process(Box::new(FixedCqi(Cqi::new_clamped(c)))),
                None,
            ),
            UeRadioSpec::FixedSinrDb(s) => (UeRadio::Process(Box::new(FixedSinr(s))), None),
            UeRadioSpec::CqiSquareWave(hi, lo, half) => (
                UeRadio::Process(Box::new(CqiSquareWave::new(
                    Cqi::new_clamped(hi),
                    Cqi::new_clamped(lo),
                    half,
                ))),
                None,
            ),
            UeRadioSpec::Fading(mean, sigma, rho, seed) => (
                UeRadio::Process(Box::new(GaussMarkovFading::new(mean, sigma, rho, seed))),
                None,
            ),
            UeRadioSpec::Custom(p) => (UeRadio::Process(p), None),
            UeRadioSpec::Geo(mobility, site) => (
                UeRadio::Geo {
                    mobility,
                    serving_site: site,
                },
                Some(site),
            ),
        };
        self.radio.register_ue(ue, ue_radio);
        let idx = self.agent_idx(enb).expect("known eNodeB");
        let rnti = self.agents[idx]
            .enb_mut()
            .rach(cell, ue, slice, group, self.now)
            .expect("cell exists");
        self.rnti_maps[idx].insert((cell, rnti), ue);
        self.insert_ue_entry(
            ue,
            UeEntry {
                agent_idx: idx,
                cell,
                slice,
                group,
                rnti: Some(rnti),
                dl_source: None,
                ul_source: None,
                meas_period: None,
                serving_site,
            },
        );
        ue
    }

    /// Place a UE entry into its agent's bucket (sorted by `UeId`) and
    /// record the owner in the index. Cold path: attach and handover.
    fn insert_ue_entry(&mut self, ue: UeId, entry: UeEntry) {
        let idx = entry.agent_idx;
        if self.ue_buckets.len() < self.agents.len() {
            self.ue_buckets.resize_with(self.agents.len(), Vec::new);
        }
        let b = &mut self.ue_buckets[idx];
        let pos = b
            .binary_search_by_key(&ue, |(u, _)| *u)
            .unwrap_or_else(|p| p);
        b.insert(pos, (ue, entry));
        self.ues.insert(ue, idx);
    }

    /// Move a UE's entry to another agent's bucket (handover).
    fn rehome_ue_entry(&mut self, ue: UeId, new_idx: usize) {
        let Some(&old_idx) = self.ues.get(&ue) else {
            return;
        };
        if old_idx == new_idx {
            return;
        }
        let Ok(i) = self.ue_buckets[old_idx].binary_search_by_key(&ue, |(u, _)| *u) else {
            return;
        };
        let (_, mut entry) = self.ue_buckets[old_idx].remove(i);
        entry.agent_idx = new_idx;
        self.insert_ue_entry(ue, entry);
    }

    fn entry(&self, ue: UeId) -> Option<&UeEntry> {
        ue_entry(&self.ues, &self.ue_buckets, ue)
    }

    fn entry_mut(&mut self, ue: UeId) -> Option<&mut UeEntry> {
        ue_entry_mut(&self.ues, &mut self.ue_buckets, ue)
    }

    pub fn set_dl_traffic(&mut self, ue: UeId, source: Box<dyn TrafficSource>) {
        if let Some(e) = self.entry_mut(ue) {
            e.dl_source = Some(source);
        }
    }

    pub fn set_ul_traffic(&mut self, ue: UeId, source: Box<dyn TrafficSource>) {
        if let Some(e) = self.entry_mut(ue) {
            e.ul_source = Some(source);
        }
    }

    /// Enable periodic measurement reports for a geometry-mode UE.
    pub fn enable_measurements(&mut self, ue: UeId, period_ms: u64) {
        if let Some(e) = self.entry_mut(ue) {
            e.meas_period = Some(period_ms.max(1));
        }
    }

    /// Current serving eNodeB of a UE.
    pub fn serving_enb(&self, ue: UeId) -> Option<EnbId> {
        let e = self.entry(ue)?;
        Some(self.agents[e.agent_idx].enb().config().enb_id)
    }

    /// Data-plane statistics for a UE (None while detached / re-attaching).
    pub fn ue_stats(&self, ue: UeId) -> Option<UeStats> {
        let e = self.entry(ue)?;
        let rnti = e.rnti?;
        self.agents[e.agent_idx].enb().ue_stat(e.cell, rnti).ok()
    }

    /// Inject downlink bytes directly (application-paced flows: TCP/DASH
    /// drive this between steps).
    pub fn inject_dl(&mut self, ue: UeId, bytes: Bytes) -> Result<()> {
        let (agent_idx, cell, rnti) = {
            let e = self
                .entry(ue)
                .ok_or_else(|| FlexError::NotFound(format!("{ue}")))?;
            let rnti = e
                .rnti
                .ok_or_else(|| FlexError::NotFound(format!("{ue} has no RNTI")))?;
            (e.agent_idx, e.cell, rnti)
        };
        let now = self.now;
        self.agents[agent_idx]
            .enb_mut()
            .inject_dl_traffic(cell, rnti, bytes, now)
    }

    /// Cumulative per-phase wall-clock of every `step` so far.
    pub fn phase_timings(&self) -> PhaseTimings {
        self.timings
    }

    /// Deadline-monitor snapshot over whole `step` calls: latency
    /// percentiles, worst case, and the over-budget TTI count against
    /// `config.tti_budget_ns`.
    pub fn budget_stats(&self) -> flexran_types::budget::BudgetStats {
        self.budget.stats()
    }

    /// Forget all deadline-monitor samples (benchmarks call this after
    /// warm-up so percentiles cover only the measured window). Also
    /// resets the master's monitor.
    pub fn reset_budget(&mut self) {
        self.budget.reset();
        self.master.reset_budget();
    }

    /// Advance one TTI.
    // lint:no-alloc — the whole-TTI hot path (serial front, phase A,
    // coupling, phase B, merge); `experiments allocgate` asserts zero
    // steady-state heap traffic for this body and everything it calls
    pub fn step(&mut self) {
        // The Instant reads in this function only feed `PhaseTimings`
        // (profiling counters); no scheduling decision ever depends on
        // them, so simulation results stay bit-identical regardless of
        // wall-clock behaviour. lint:allow(wall-clock)
        let t_start = std::time::Instant::now();
        self.now = self.now.next();
        let now = self.now;
        self.clock.advance_to(now);

        // 1. Master cycle (commands ride the links this TTI): a serial
        //    begin (limbo routing, cycle clock), the per-shard RIB
        //    slots fanned out over the worker pool, and a serial finish
        //    (agent-index-ordered event merge, apps slot, cross-shard
        //    mailbox). A crashed master runs nothing, and its dead
        //    sockets swallow whatever the agents send.
        let workers = self.config.workers.unwrap_or(1).max(1);
        if self.master_down {
            for t in &mut self.parked_transports {
                let _ = t.purge_inbound();
            }
        } else {
            self.master.begin_cycle(now);
            // lint:allow(hot-alloc) Vec<()> of ZSTs can never allocate
            let mut unit: Vec<()> = Vec::new();
            fan_out(self.master.shards_mut(), &mut unit, workers, |_, shard| {
                shard.run_rib_slot(now);
            });
            self.master.finish_cycle(now);
        }

        // Profiling only, as above. lint:allow(wall-clock)
        let t_front = std::time::Instant::now();
        self.timings.serial_front_ns += (t_front - t_start).as_nanos() as u64;

        // 2. Traffic, measurements and phase A, per agent, fanned out
        //    over the worker pool when configured. UE entries are
        //    bucketed by owning agent (UeId order preserved within each
        //    bucket) so every injection is agent-local; measurements in
        //    this phase use the declared activity hints (restricted
        //    measurements).
        let mut sites = std::mem::take(&mut self.site_scratch);
        self.measurement_active_sites_into(now, &mut sites);
        self.radio.set_active_sites(&sites);
        {
            if self.ue_buckets.len() < self.agents.len() {
                // lint:allow(hot-alloc) grows only when an eNB is added (cold)
                self.ue_buckets.resize_with(self.agents.len(), Vec::new);
            }
            let radio = &self.radio;
            let maps = &self.rnti_maps;
            // lint:allow(hot-alloc) Vec<()> of ZSTs can never allocate
            let mut unit: Vec<()> = Vec::new();
            fan_out2(
                &mut self.agents,
                &mut self.ue_buckets,
                &mut unit,
                workers,
                |i, agent, ues| {
                    for (ue, entry) in ues.iter_mut() {
                        drive_ue_traffic(agent, radio, *ue, entry, now);
                    }
                    let mut phy = PhyAdapter {
                        radio,
                        rnti_map: &maps[i],
                    };
                    agent.phase_a(now, &mut phy);
                },
            );
        }
        // Profiling only, as above. lint:allow(wall-clock)
        let t_a = std::time::Instant::now();
        self.timings.phase_a_ns += (t_a - t_front).as_nanos() as u64;

        // 3. Interference coupling: which sites put energy on the air.
        //    This is the serial barrier between the two phases.
        sites.clear();
        for agent in &self.agents {
            let enb_id = agent.enb().config().enb_id;
            for ci in 0..agent.enb().n_cells() {
                let cell = agent.enb().cell_id_at(ci);
                if agent.enb().will_transmit_dl(cell, now) {
                    if let Some(site) = self.cell_sites.get(&(enb_id, cell)) {
                        sites.push(*site);
                    }
                }
            }
        }
        self.radio.set_active_sites(&sites);
        self.site_scratch = sites;
        // Profiling only, as above. lint:allow(wall-clock)
        let t_couple = std::time::Instant::now();
        self.timings.coupling_ns += (t_couple - t_a).as_nanos() as u64;

        // 4. Phase B on every agent, outputs collected per agent index.
        //    The serial and parallel paths share this collect-then-merge
        //    shape, so the merge below sees the same inputs in the same
        //    order either way.
        let mut outs = std::mem::take(&mut self.phase_b_out);
        {
            let radio = &self.radio;
            let maps = &self.rnti_maps;
            fan_out(&mut self.agents, &mut outs, workers, |i, agent| {
                let mut phy = PhyAdapter {
                    radio,
                    rnti_map: &maps[i],
                };
                let events = agent.phase_b(now, &mut phy);
                let handovers = agent.take_handover_requests();
                PhaseBOut { events, handovers }
            });
        }
        // Profiling only, as above. lint:allow(wall-clock)
        let t_b = std::time::Instant::now();
        self.timings.phase_b_ns += (t_b - t_couple).as_nanos() as u64;

        // 5. Merge in agent-index order: attach bookkeeping and X2-style
        //    handover admission (the stand-in for the X2 interface).
        self.last_events.clear();
        for (i, out) in outs.iter().enumerate() {
            let enb_id = self.agents[i].enb().config().enb_id;
            for ev in &out.events {
                // lint:allow(hot-alloc) events fire on attach/handover only (cold)
                self.last_events.push((enb_id, ev.clone()));
                // lint:allow(alloc-reach) scenario events (arrival/handover) are episodic
                self.apply_event(i, ev);
            }
            // X2 stand-in: remember where each starting handover goes.
            for req in &out.handovers {
                let target =
                    self.resolve_handover_target(req.target_site, req.target_enb, req.target_cell);
                if let Some((target_enb, target_cell, target_site)) = target {
                    self.pending_handovers.insert(
                        (i, req.rnti),
                        PendingHandover {
                            target_enb,
                            target_cell,
                            target_site,
                        },
                    );
                }
            }
        }
        self.phase_b_out = outs;
        self.timings.merge_ns += t_b.elapsed().as_nanos() as u64;
        self.timings.steps += 1;
        self.budget.record(t_start.elapsed().as_nanos() as u64);
    }

    fn resolve_handover_target(
        &self,
        site: Option<u32>,
        enb: Option<u32>,
        cell: Option<u16>,
    ) -> Option<(EnbId, CellId, Option<usize>)> {
        if let Some(site) = site {
            // Local VSF picked a radio site: reverse-map to its cell.
            let ((enb, cell), s) = self
                .cell_sites
                .iter()
                .find(|(_, s)| **s == site as usize)
                .map(|(k, s)| (*k, *s))?;
            return Some((enb, cell, Some(s)));
        }
        let enb = EnbId(enb?);
        let cell = CellId(cell.unwrap_or(0));
        let site = self.cell_sites.get(&(enb, cell)).copied();
        Some((enb, cell, site))
    }

    fn apply_event(&mut self, agent_idx: usize, ev: &EnbEvent) {
        match ev {
            EnbEvent::RachAttempt { cell, rnti, ue, .. } => {
                // Re-attach after failure: track the fresh RNTI.
                self.rnti_maps[agent_idx].insert((*cell, *rnti), *ue);
                self.rehome_ue_entry(*ue, agent_idx);
                if let Some(e) = self.entry_mut(*ue) {
                    e.rnti = Some(*rnti);
                    e.cell = *cell;
                }
            }
            EnbEvent::UeAttached { cell, rnti, ue, .. } => {
                self.rnti_maps[agent_idx].insert((*cell, *rnti), *ue);
                self.rehome_ue_entry(*ue, agent_idx);
                if let Some(e) = self.entry_mut(*ue) {
                    e.rnti = Some(*rnti);
                    e.cell = *cell;
                }
            }
            EnbEvent::AttachFailed { cell, rnti, ue, .. }
            | EnbEvent::UeDetached { cell, rnti, ue, .. } => {
                self.rnti_maps[agent_idx].remove(&(*cell, *rnti));
                if let Some(e) = self.entry_mut(*ue) {
                    if e.rnti == Some(*rnti) {
                        e.rnti = None;
                    }
                }
            }
            EnbEvent::HandoverExecuted {
                cell,
                rnti,
                ue,
                forwarded_bytes,
                ..
            } => {
                self.rnti_maps[agent_idx].remove(&(*cell, *rnti));
                let Some(pending) = self.pending_handovers.remove(&(agent_idx, *rnti)) else {
                    if let Some(e) = self.entry_mut(*ue) {
                        e.rnti = None;
                    }
                    return;
                };
                let Ok(tgt_idx) = self.agent_idx(pending.target_enb) else {
                    return;
                };
                let (slice, group) = self
                    .entry(*ue)
                    .map(|e| (e.slice, e.group))
                    .unwrap_or((SliceId::MNO, 0));
                let now = self.now;
                if let Ok(new_rnti) = self.agents[tgt_idx].enb_mut().admit_ue(
                    pending.target_cell,
                    *ue,
                    slice,
                    group,
                    *forwarded_bytes,
                    now,
                ) {
                    self.rnti_maps[tgt_idx].insert((pending.target_cell, new_rnti), *ue);
                    self.rehome_ue_entry(*ue, tgt_idx);
                    if let Some(e) = self.entry_mut(*ue) {
                        e.cell = pending.target_cell;
                        e.rnti = Some(new_rnti);
                        if let Some(site) = pending.target_site {
                            e.serving_site = Some(site);
                        }
                    }
                    if let Some(site) = pending.target_site {
                        self.radio.set_serving_site(*ue, site);
                    }
                }
            }
            _ => {}
        }
    }

    /// Run `n` TTIs.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

/// The agent-less baseline (vanilla OAI stand-in, Fig. 6): the same data
/// plane driven directly by embedded schedulers.
pub struct VanillaHarness {
    pub enb: Enb,
    dl: Box<dyn DlScheduler>,
    ul: Box<dyn UlScheduler>,
    radio: RadioEnvironment,
    rnti_map: BTreeMap<(CellId, Rnti), UeId>,
    now: Tti,
    dl_in: DlSchedulerInput,
    dl_out: DlSchedulerOutput,
    ul_in: UlSchedulerInput,
    ul_out: UlSchedulerOutput,
}

impl VanillaHarness {
    pub fn new(config: EnbConfig, params: EnbParams) -> Self {
        VanillaHarness {
            enb: Enb::new(config, params).expect("valid config"),
            dl: Box::new(RoundRobinScheduler::new()),
            ul: Box::new(UlRoundRobinScheduler::new()),
            radio: RadioEnvironment::new(),
            rnti_map: BTreeMap::new(),
            now: Tti::ZERO,
            dl_in: DlSchedulerInput::default(),
            dl_out: DlSchedulerOutput::default(),
            ul_in: UlSchedulerInput::default(),
            ul_out: UlSchedulerOutput::default(),
        }
    }

    pub fn now(&self) -> Tti {
        self.now
    }

    pub fn add_ue(&mut self, cell: CellId, radio: UeRadioSpec) -> (UeId, Rnti) {
        static NEXT: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(1);
        let ue = UeId(NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
        let ue_radio = match radio {
            UeRadioSpec::FixedCqi(c) => UeRadio::Process(Box::new(FixedCqi(Cqi::new_clamped(c)))),
            UeRadioSpec::FixedSinrDb(s) => UeRadio::Process(Box::new(FixedSinr(s))),
            UeRadioSpec::CqiSquareWave(hi, lo, half) => UeRadio::Process(Box::new(
                CqiSquareWave::new(Cqi::new_clamped(hi), Cqi::new_clamped(lo), half),
            )),
            UeRadioSpec::Fading(m, s, r, seed) => {
                UeRadio::Process(Box::new(GaussMarkovFading::new(m, s, r, seed)))
            }
            UeRadioSpec::Custom(p) => UeRadio::Process(p),
            UeRadioSpec::Geo(..) => panic!("geometry mode needs SimHarness"),
        };
        self.radio.register_ue(ue, ue_radio);
        let rnti = self
            .enb
            .rach(cell, ue, SliceId::MNO, 0, self.now)
            .expect("cell exists");
        self.rnti_map.insert((cell, rnti), ue);
        (ue, rnti)
    }

    /// One TTI with the embedded schedulers.
    pub fn step(&mut self) {
        self.now = self.now.next();
        let now = self.now;
        let mut phy = PhyAdapter {
            radio: &self.radio,
            rnti_map: &self.rnti_map,
        };
        self.enb.begin_tti(now, &mut phy);
        for ci in 0..self.enb.n_cells() {
            let cell = self.enb.cell_id_at(ci);
            if self
                .enb
                .dl_scheduler_input_into(cell, now, now, &mut self.dl_in)
                .is_ok()
            {
                self.dl.schedule_dl_into(&self.dl_in, &mut self.dl_out);
                if !self.dl_out.dcis.is_empty() {
                    let mut dcis = self.enb.recycled_dci_buffer(cell);
                    dcis.extend_from_slice(&self.dl_out.dcis);
                    let _ = self.enb.submit_dl_decision(
                        DlSchedulingDecision {
                            cell,
                            target: now,
                            dcis,
                        },
                        now,
                    );
                }
            }
            if self
                .enb
                .ul_scheduler_input_into(cell, now, now, &mut self.ul_in)
                .is_ok()
            {
                self.ul.schedule_ul_into(&self.ul_in, &mut self.ul_out);
                if !self.ul_out.grants.is_empty() {
                    let mut grants = self.enb.recycled_grant_buffer(cell);
                    grants.extend_from_slice(&self.ul_out.grants);
                    let _ = self.enb.submit_ul_decision(
                        UlSchedulingDecision {
                            cell,
                            target: now,
                            grants,
                        },
                        now,
                    );
                }
            }
        }
        let mut phy = PhyAdapter {
            radio: &self.radio,
            rnti_map: &self.rnti_map,
        };
        self.enb.finish_tti(now, &mut phy);
        for ev in self.enb.take_events() {
            if let EnbEvent::UeAttached { cell, rnti, ue, .. }
            | EnbEvent::RachAttempt { cell, rnti, ue, .. } = ev
            {
                self.rnti_map.insert((cell, rnti), ue);
            }
        }
    }

    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_sim::traffic::{CbrSource, FullBufferSource};
    use flexran_types::units::BitRate;

    #[test]
    fn ue_attaches_and_receives_cbr_traffic() {
        let mut sim = SimHarness::new(SimConfig::default());
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
        let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
        sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(2))));
        sim.run(2000);
        let stats = sim.ue_stats(ue).expect("attached");
        assert!(stats.connected);
        let mbps = stats.dl_delivered_bits as f64 / 2000.0 / 1000.0;
        assert!((1.7..=2.2).contains(&mbps), "CBR delivered {mbps} Mb/s");
    }

    #[test]
    fn vanilla_matches_agent_throughput() {
        // The Fig. 6b claim: FlexRAN is transparent to the UE.
        let mut vanilla =
            VanillaHarness::new(EnbConfig::single_cell(EnbId(1)), EnbParams::default());
        let (ue_v, rnti_v) = vanilla.add_ue(CellId(0), UeRadioSpec::FixedCqi(14));
        let mut sim = SimHarness::new(SimConfig::default());
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(2)), AgentConfig::default());
        let ue_f = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(14));
        sim.set_dl_traffic(ue_f, Box::new(FullBufferSource::default()));
        // Drive vanilla's traffic by hand.
        for _ in 0..3000u64 {
            let queue = vanilla
                .enb
                .ue_stat(CellId(0), rnti_v)
                .map(|s| s.dl_queue_bytes)
                .unwrap_or(Bytes::ZERO);
            if queue.as_u64() < 500_000 {
                let now = vanilla.now();
                let _ = vanilla.enb.inject_dl_traffic(
                    CellId(0),
                    rnti_v,
                    Bytes(500_000 - queue.as_u64()),
                    now,
                );
            }
            vanilla.step();
            sim.step();
        }
        let v = vanilla.enb.ue_stat(CellId(0), rnti_v).unwrap();
        let f = sim.ue_stats(ue_f).unwrap();
        let v_mbps = v.dl_delivered_bits as f64 / 3000.0 / 1000.0;
        let f_mbps = f.dl_delivered_bits as f64 / 3000.0 / 1000.0;
        assert!(v_mbps > 10.0, "vanilla {v_mbps}");
        let ratio = f_mbps / v_mbps;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "transparency: vanilla {v_mbps} vs flexran {f_mbps}"
        );
        let _ = ue_v;
    }

    #[test]
    fn control_channel_latency_delays_commands() {
        // With a 20 ms one-way link, agent events take 20 ms to reach the
        // master's RIB.
        let cfg = SimConfig {
            uplink: LinkConfig::with_one_way_ms(20),
            downlink: LinkConfig::with_one_way_ms(20),
            ..SimConfig::default()
        };
        let mut sim = SimHarness::new(cfg);
        let enb = sim.add_enb(EnbConfig::single_cell(EnbId(1)), AgentConfig::default());
        sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(10));
        sim.run(10);
        assert!(
            sim.master().view().agent(EnbId(1)).is_none(),
            "hello in flight"
        );
        sim.run(15);
        assert!(
            sim.master().view().agent(EnbId(1)).is_some(),
            "hello landed"
        );
    }
}
