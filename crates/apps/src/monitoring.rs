//! A monitoring application: subscribes to statistics from every agent
//! that connects and aggregates a network-wide view.
//!
//! This is the paper's "simple monitoring application that obtains
//! statistics reporting which can be used by other apps" — the snapshot
//! is shared behind an `Arc` so co-resident applications (e.g. the MEC
//! app) or an operator dashboard can read it.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use flexran_controller::northbound::{App, ControlHandle, RibView};
use flexran_proto::messages::stats::{ReportConfig, ReportFlags, ReportType, StatsRequest};
use flexran_proto::messages::{ConfigRequest, FlexranMessage};
use flexran_types::ids::{EnbId, Rnti};
use flexran_types::time::Tti;

/// One UE's monitored state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UeSnapshot {
    pub cqi: u8,
    pub dl_queue_bytes: u64,
    pub dl_delivered_bits: u64,
    pub connected: bool,
    pub slice: u8,
}

/// The shared network view.
#[derive(Debug, Clone, Default)]
pub struct NetworkSnapshot {
    pub updated: Tti,
    pub ues: BTreeMap<(EnbId, Rnti), UeSnapshot>,
    pub total_dl_bits: u64,
}

/// Shared handle to the monitoring state.
pub type SnapshotHandle = Arc<RwLock<NetworkSnapshot>>;

/// The monitoring application.
pub struct MonitoringApp {
    /// Statistics subscription pushed to each new agent.
    report: ReportConfig,
    subscribed: Vec<EnbId>,
    snapshot: SnapshotHandle,
}

impl MonitoringApp {
    pub fn new(report_period: u32) -> Self {
        MonitoringApp {
            report: ReportConfig {
                report_type: ReportType::Periodic {
                    period: report_period.max(1),
                },
                flags: ReportFlags::ALL,
            },
            subscribed: Vec::new(),
            snapshot: Arc::new(RwLock::new(NetworkSnapshot::default())),
        }
    }

    /// The handle other components read the network view from.
    pub fn snapshot_handle(&self) -> SnapshotHandle {
        self.snapshot.clone()
    }
}

impl App for MonitoringApp {
    fn name(&self) -> &str {
        "monitoring"
    }

    fn priority(&self) -> u8 {
        10 // non-time-critical (paper §4.3.3)
    }

    fn on_cycle(&mut self, rib: &RibView<'_>, ctl: &mut ControlHandle<'_>) {
        // Subscribe to agents we have not seen before.
        let new_agents: Vec<EnbId> = rib
            .agents()
            .into_iter()
            .map(|a| a.enb_id)
            .filter(|id| !self.subscribed.contains(id))
            .collect();
        for enb in new_agents {
            ctl.send(
                enb,
                FlexranMessage::StatsRequest(StatsRequest {
                    config: self.report,
                }),
            );
            // Also pull the static configuration so the RIB's cell
            // records (bandwidths, DCI budgets) are populated for other
            // applications (e.g. the centralized scheduler).
            ctl.send(enb, FlexranMessage::ConfigRequest(ConfigRequest::default()));
            self.subscribed.push(enb);
        }
        // Refresh the shared snapshot from the RIB.
        let mut snap = self.snapshot.write();
        snap.updated = rib.now();
        snap.total_dl_bits = 0;
        snap.ues.clear();
        for (enb, _cell, ue) in rib.all_ues() {
            snap.total_dl_bits += ue.report.dl_tbs_bits_total;
            snap.ues.insert(
                (enb, ue.rnti),
                UeSnapshot {
                    cqi: ue.report.wideband_cqi,
                    dl_queue_bytes: ue.report.rlc.iter().map(|r| r.tx_queue_bytes).sum(),
                    dl_delivered_bits: ue.report.dl_tbs_bits_total,
                    connected: ue.report.connected,
                    slice: ue.report.slice,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_controller::{MasterController, TaskManagerConfig};
    use flexran_proto::messages::{Header, Hello};
    use flexran_proto::transport::{channel_pair, Transport};

    #[test]
    fn subscribes_once_per_agent_and_mirrors_rib() {
        let mut master = MasterController::new(TaskManagerConfig::default());
        let app = MonitoringApp::new(1);
        let handle = app.snapshot_handle();
        master.register_app(Box::new(app));
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(3),
                    n_cells: 1,
                    capabilities: vec![],
                    applied_config: 0,
                }),
            )
            .unwrap();
        for t in 0..3 {
            master.run_cycle(Tti(t));
        }
        // Exactly one subscription + one config request arrived.
        let mut stats_requests = 0;
        let mut config_requests = 0;
        while let Ok(Some((_, msg))) = agent_side.try_recv() {
            match msg {
                FlexranMessage::StatsRequest(_) => stats_requests += 1,
                FlexranMessage::ConfigRequest(_) => config_requests += 1,
                _ => {}
            }
        }
        assert_eq!(stats_requests, 1);
        assert_eq!(config_requests, 1);
        // Feed a stats reply; the snapshot mirrors it.
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::StatsReply(flexran_proto::messages::StatsReply {
                    enb_id: EnbId(3),
                    tti: 2,
                    cells: vec![],
                    ues: vec![flexran_proto::messages::UeReport {
                        rnti: 0x100,
                        cell: 0,
                        connected: true,
                        wideband_cqi: 13,
                        dl_tbs_bits_total: 4096,
                        ..Default::default()
                    }],
                }),
            )
            .unwrap();
        master.run_cycle(Tti(3));
        let snap = handle.read();
        assert_eq!(snap.ues.len(), 1);
        let ue = &snap.ues[&(EnbId(3), Rnti(0x100))];
        assert_eq!(ue.cqi, 13);
        assert!(ue.connected);
        assert_eq!(snap.total_dl_bits, 4096);
    }
}
