//! Interference management: eICIC and optimized eICIC (paper §6.1).
//!
//! Heterogeneous deployments protect small-cell users with *almost-blank
//! subframes* (ABS): the macro cell is muted in a configured subframe
//! pattern so small cells can serve their users without cross-tier
//! interference. Three operating modes, matching the paper's experiment:
//!
//! * **uncoordinated** — no ABS, each cell schedules independently
//!   (plain local schedulers; nothing from this module needed),
//! * **eICIC** — the macro runs [`AbsAwareScheduler::macro_side`]
//!   (silent during ABS), small cells run
//!   [`AbsAwareScheduler::small_side`] (transmit *only* during ABS,
//!   where their users see clean SINR),
//! * **optimized eICIC** — additionally, the [`OptimizedEicicApp`] at the
//!   master watches the small cells' queues in the RIB and hands ABS
//!   subframes the small cells won't use back to the macro cell
//!   (the coordination "which cannot be easily achieved using the
//!   traditional X2 interface").

use std::collections::BTreeMap;

use flexran_controller::northbound::{App, ControlHandle, RibView};
use flexran_proto::messages::DlSchedulingCommand;
use flexran_stack::enb::AbsPattern;
use flexran_stack::mac::dci::DlSchedulingDecision;
use flexran_stack::mac::scheduler::{
    DlScheduler, DlSchedulerInput, DlSchedulerOutput, RoundRobinScheduler,
};
use flexran_types::ids::{CellId, EnbId};
use flexran_types::time::Tti;

use crate::remote_sched::scheduler_input_from_rib;

/// A standard ABS pattern: `n_abs` muted subframes spread evenly over the
/// 40-subframe pattern period (n=4 → subframes 0, 10, 20, 30 — one ABS
/// per radio frame, as in the paper's experiment).
pub fn standard_abs_pattern(n_abs: usize) -> AbsPattern {
    let mut p = [false; 40];
    if n_abs == 0 {
        return p;
    }
    let stride = (40 / n_abs.min(40)).max(1);
    let mut placed = 0;
    let mut i = 0;
    while placed < n_abs.min(40) {
        p[i % 40] = true;
        i += stride;
        placed += 1;
    }
    p
}

/// Whether `tti` falls in an ABS of `pattern`.
pub fn is_abs(pattern: &AbsPattern, tti: Tti) -> bool {
    pattern[(tti.0 % 40) as usize]
}

/// An ABS-aware local scheduler: wraps a round-robin allocator and gates
/// it on the pattern phase.
pub struct AbsAwareScheduler {
    inner: RoundRobinScheduler,
    pattern: AbsPattern,
    /// `true` → transmit only during ABS (small cell); `false` → only
    /// outside ABS (macro cell).
    transmit_in_abs: bool,
    label: &'static str,
}

impl AbsAwareScheduler {
    /// Macro-cell side: silent during ABS.
    pub fn macro_side(pattern: AbsPattern) -> Self {
        AbsAwareScheduler {
            inner: RoundRobinScheduler::new(),
            pattern,
            transmit_in_abs: false,
            label: "macro-eicic",
        }
    }

    /// Small-cell side: transmits only during ABS (its users are
    /// interference-protected exactly then).
    pub fn small_side(pattern: AbsPattern) -> Self {
        AbsAwareScheduler {
            inner: RoundRobinScheduler::new(),
            pattern,
            transmit_in_abs: true,
            label: "small-eicic",
        }
    }
}

impl DlScheduler for AbsAwareScheduler {
    fn name(&self) -> &str {
        self.label
    }

    fn schedule_dl_into(&mut self, input: &DlSchedulerInput, out: &mut DlSchedulerOutput) {
        if is_abs(&self.pattern, input.target) != self.transmit_in_abs {
            out.dcis.clear();
            return;
        }
        self.inner.schedule_dl_into(input, out);
    }
}

/// The optimized-eICIC coordinator at the master.
pub struct OptimizedEicicApp {
    pub macro_enb: EnbId,
    pub macro_cell: u16,
    /// The protected small cells: `(agent, cell)`.
    pub small_cells: Vec<(EnbId, u16)>,
    pub pattern: AbsPattern,
    /// Schedule-ahead for the macro reassignment commands.
    pub schedule_ahead: u64,
    /// A small cell "needs" its ABS if its queued bytes exceed this.
    /// The default is near zero: reassignment targets *periods of
    /// inactivity* of the small cells (paper §6.1); reassigning ABS a
    /// small cell still wants would re-create the interference eICIC
    /// exists to remove.
    pub queue_threshold: u64,
    policy: RoundRobinScheduler,
    last_target: u64,
    /// ABS subframes reassigned to the macro cell (observability).
    pub reassigned: u64,
}

impl OptimizedEicicApp {
    pub fn new(
        macro_enb: EnbId,
        macro_cell: u16,
        small_cells: Vec<(EnbId, u16)>,
        pattern: AbsPattern,
        schedule_ahead: u64,
    ) -> Self {
        OptimizedEicicApp {
            macro_enb,
            macro_cell,
            small_cells,
            pattern,
            schedule_ahead,
            queue_threshold: 300,
            policy: RoundRobinScheduler::new(),
            last_target: 0,
            reassigned: 0,
        }
    }

    fn small_cells_idle(&self, rib: &RibView<'_>) -> bool {
        for (enb, cell) in &self.small_cells {
            let Some(cell_node) = rib.cell(*enb, CellId(*cell)) else {
                continue;
            };
            let queued: u64 = cell_node
                .ues()
                .iter()
                .flat_map(|u| u.report.rlc.iter())
                .filter(|b| b.lcid >= 3)
                .map(|b| b.tx_queue_bytes)
                .sum();
            if queued > self.queue_threshold {
                return false;
            }
        }
        true
    }
}

impl App for OptimizedEicicApp {
    fn name(&self) -> &str {
        "optimized-eicic"
    }

    fn priority(&self) -> u8 {
        200
    }

    fn on_cycle(&mut self, rib: &RibView<'_>, ctl: &mut ControlHandle<'_>) {
        let Some(sync) = rib.synced_subframe(self.macro_enb) else {
            return;
        };
        let horizon = sync.0 + self.schedule_ahead;
        let from = (self.last_target + 1)
            .max(sync.0 + 1)
            .max(horizon.saturating_sub(3));
        for target in from..=horizon {
            self.last_target = target;
            if !is_abs(&self.pattern, Tti(target)) {
                continue; // non-ABS: the macro's local scheduler owns it
            }
            if !self.small_cells_idle(rib) {
                continue; // the protected cells need this ABS
            }
            let Some(cell) = rib.cell(self.macro_enb, CellId(self.macro_cell)) else {
                continue;
            };
            let input = scheduler_input_from_rib(cell, rib.now(), Tti(target), &BTreeMap::new());
            let out = self.policy.schedule_dl(&input);
            if out.dcis.is_empty() {
                continue;
            }
            let cmd = DlSchedulingCommand::from_decision(
                self.macro_enb,
                &DlSchedulingDecision {
                    cell: CellId(self.macro_cell),
                    target: Tti(target),
                    dcis: out.dcis,
                },
            );
            if ctl.schedule_dl(self.macro_enb, cmd).is_ok() {
                self.reassigned += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_phy::link_adaptation::Cqi;
    use flexran_stack::mac::scheduler::UeSchedInfo;
    use flexran_types::ids::{Rnti, SliceId};
    use flexran_types::units::Bytes;

    #[test]
    fn standard_pattern_spreads_abs() {
        let p = standard_abs_pattern(4);
        assert_eq!(p.iter().filter(|m| **m).count(), 4);
        assert!(p[0] && p[10] && p[20] && p[30]);
        assert!(!p[5]);
        assert_eq!(standard_abs_pattern(0).iter().filter(|m| **m).count(), 0);
        assert_eq!(standard_abs_pattern(40).iter().filter(|m| **m).count(), 40);
    }

    fn input_at(target: u64) -> DlSchedulerInput {
        DlSchedulerInput {
            cell: CellId(0),
            now: Tti(target),
            target: Tti(target),
            available_prb: 50,
            max_dcis: 10,
            ues: vec![UeSchedInfo {
                rnti: Rnti(0x100),
                cqi: Cqi(12),
                queue_bytes: Bytes(10_000),
                srb_bytes: Bytes::ZERO,
                avg_rate_bps: 1.0,
                slice: SliceId::MNO,
                priority_group: 0,
                hol_delay_ms: 0,
            }],
            retx: vec![],
        }
    }

    #[test]
    fn macro_scheduler_silent_in_abs() {
        let mut s = AbsAwareScheduler::macro_side(standard_abs_pattern(4));
        assert!(s.schedule_dl(&input_at(0)).dcis.is_empty(), "ABS subframe");
        assert!(
            !s.schedule_dl(&input_at(5)).dcis.is_empty(),
            "normal subframe"
        );
        assert!(
            s.schedule_dl(&input_at(40)).dcis.is_empty(),
            "pattern wraps"
        );
    }

    #[test]
    fn small_scheduler_transmits_only_in_abs() {
        let mut s = AbsAwareScheduler::small_side(standard_abs_pattern(4));
        assert!(!s.schedule_dl(&input_at(0)).dcis.is_empty());
        assert!(s.schedule_dl(&input_at(5)).dcis.is_empty());
        assert!(!s.schedule_dl(&input_at(30)).dcis.is_empty());
    }

    #[test]
    fn macro_and_small_never_overlap() {
        let p = standard_abs_pattern(4);
        let mut m = AbsAwareScheduler::macro_side(p);
        let mut s = AbsAwareScheduler::small_side(p);
        for t in 0..80u64 {
            let macro_tx = !m.schedule_dl(&input_at(t)).dcis.is_empty();
            let small_tx = !s.schedule_dl(&input_at(t)).dcis.is_empty();
            assert!(
                !(macro_tx && small_tx),
                "both transmitting at subframe {t} defeats eICIC"
            );
            assert!(macro_tx || small_tx, "someone should use subframe {t}");
        }
    }
}
