//! Load-aware mobility management (paper §7.1).
//!
//! "The centralized network view offered by FlexRAN could enable more
//! sophisticated mobility management mechanisms that consider additional
//! factors, e.g., the load of cells." This application reacts to
//! measurement-report events: it scores each candidate cell by RSRP minus
//! a load penalty (UEs currently attached, from the RIB) and issues a
//! handover command when a neighbour beats the serving cell by the
//! hysteresis margin.

use std::collections::BTreeMap;

use flexran_controller::northbound::{App, ControlHandle, RibView};
use flexran_controller::updater::NotifiedEvent;
use flexran_proto::messages::events::EventKind;
use flexran_proto::messages::{FlexranMessage, HandoverCommand};
use flexran_types::ids::{CellId, EnbId};

/// The mobility manager.
pub struct MobilityManagerApp {
    /// RSRP advantage a candidate needs (dB).
    pub hysteresis_db: f64,
    /// Penalty per attached UE at the candidate (dB) — the load-awareness
    /// the paper motivates.
    pub load_penalty_db: f64,
    /// Minimum interval between handovers of the same UE (ms).
    pub min_interval_ms: u64,
    /// Radio-site key (as reported in measurement events) → cell.
    site_map: BTreeMap<u32, (EnbId, CellId)>,
    last_handover: BTreeMap<(EnbId, u16), u64>,
    /// Handover commands issued.
    pub handovers: u64,
}

impl MobilityManagerApp {
    /// `site_map`: the deployment knowledge mapping measurement site keys
    /// to cells (in a real network: the neighbour-relation table).
    pub fn new(site_map: BTreeMap<u32, (EnbId, CellId)>) -> Self {
        MobilityManagerApp {
            hysteresis_db: 3.0,
            load_penalty_db: 0.5,
            min_interval_ms: 1000,
            site_map,
            last_handover: BTreeMap::new(),
            handovers: 0,
        }
    }

    fn cell_load(&self, rib: &RibView<'_>, enb: EnbId, cell: CellId) -> usize {
        rib.cell(enb, cell).map(|c| c.n_ues()).unwrap_or(0)
    }
}

impl App for MobilityManagerApp {
    fn name(&self) -> &str {
        "mobility-manager"
    }

    fn priority(&self) -> u8 {
        100
    }

    fn on_cycle(&mut self, _rib: &RibView<'_>, _ctl: &mut ControlHandle<'_>) {}

    fn on_event(&mut self, event: &NotifiedEvent, rib: &RibView<'_>, ctl: &mut ControlHandle<'_>) {
        let n = &event.notification;
        if n.kind != EventKind::MeasurementReport {
            return;
        }
        // Rate-limit per UE.
        if let Some(last) = self.last_handover.get(&(event.enb, n.rnti)) {
            if rib.now().0.saturating_sub(*last) < self.min_interval_ms {
                return;
            }
        }
        let serving_load = self.cell_load(rib, event.enb, CellId(n.cell));
        let serving_score =
            n.serving_rsrp_decidbm as f64 / 10.0 - self.load_penalty_db * serving_load as f64;
        let mut best: Option<(f64, EnbId, CellId)> = None;
        for (site, rsrp) in n.neighbours() {
            let Some((enb, cell)) = self.site_map.get(&site) else {
                continue;
            };
            if *enb == event.enb && cell.0 == n.cell {
                continue; // serving itself
            }
            let load = self.cell_load(rib, *enb, *cell);
            let score = rsrp - self.load_penalty_db * load as f64;
            if best.map(|(s, _, _)| score > s).unwrap_or(true) {
                best = Some((score, *enb, *cell));
            }
        }
        let Some((score, target_enb, target_cell)) = best else {
            return;
        };
        if score > serving_score + self.hysteresis_db {
            ctl.send(
                event.enb,
                FlexranMessage::HandoverCommand(HandoverCommand {
                    cell: n.cell,
                    rnti: n.rnti,
                    target_enb: target_enb.0,
                    target_cell: target_cell.0,
                }),
            );
            self.last_handover.insert((event.enb, n.rnti), rib.now().0);
            self.handovers += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_controller::northbound::Northbound;
    use flexran_controller::rib::Rib;
    use flexran_proto::messages::EventNotification;
    use flexran_types::time::Tti;

    fn meas_event(serving_decidbm: i64, neighbours: &[(u32, f64)]) -> NotifiedEvent {
        let mut packed = Vec::new();
        for (site, rsrp) in neighbours {
            packed.push(*site as u64);
            packed.push(((rsrp * 10.0) as i64 + 2000).max(0) as u64);
        }
        NotifiedEvent {
            enb: EnbId(1),
            notification: EventNotification {
                enb_id: EnbId(1),
                kind: EventKind::MeasurementReport,
                cell: 0,
                rnti: 0x100,
                serving_rsrp_decidbm: serving_decidbm,
                neighbours_packed: packed,
                ..Default::default()
            },
            received: Tti(0),
        }
    }

    fn site_map() -> BTreeMap<u32, (EnbId, CellId)> {
        let mut m = BTreeMap::new();
        m.insert(0, (EnbId(1), CellId(0)));
        m.insert(1, (EnbId(2), CellId(0)));
        m
    }

    #[test]
    fn strong_neighbour_triggers_handover() {
        let mut app = MobilityManagerApp::new(site_map());
        let rib = Rib::new();
        let mut nb = Northbound::new();
        let view = RibView::over(Tti(10), &rib);
        let mut ctl = nb.control();
        app.on_event(&meas_event(-950, &[(1, -85.0)]), &view, &mut ctl);
        assert_eq!(app.handovers, 1);
        assert!(matches!(
            &nb.staged()[0].2,
            FlexranMessage::HandoverCommand(c) if c.target_enb == 2 && c.rnti == 0x100
        ));
    }

    #[test]
    fn hysteresis_blocks_marginal_gain() {
        let mut app = MobilityManagerApp::new(site_map());
        let rib = Rib::new();
        let mut nb = Northbound::new();
        let view = RibView::over(Tti(10), &rib);
        let mut ctl = nb.control();
        // Neighbour only 1 dB better (hysteresis is 3 dB).
        app.on_event(&meas_event(-900, &[(1, -89.0)]), &view, &mut ctl);
        assert_eq!(app.handovers, 0);
        assert!(nb.staged().is_empty());
    }

    #[test]
    fn load_penalty_steers_away_from_busy_cells() {
        let mut app = MobilityManagerApp::new(site_map());
        app.load_penalty_db = 2.0;
        let mut rib = Rib::new();
        // Target cell enb2/cell0 holds 5 UEs → 10 dB penalty.
        {
            let agent = rib.agent_mut(EnbId(2));
            let cell = agent.cell_entry(CellId(0));
            for i in 0..5u16 {
                cell.ue_entry(flexran_types::ids::Rnti(0x200 + i));
            }
        }
        let mut nb = Northbound::new();
        let view = RibView::over(Tti(10), &rib);
        let mut ctl = nb.control();
        // 6 dB RSRP advantage, but load penalty (10 dB) eats it.
        app.on_event(&meas_event(-900, &[(1, -84.0)]), &view, &mut ctl);
        assert_eq!(app.handovers, 0);
    }

    #[test]
    fn rate_limited_per_ue() {
        let mut app = MobilityManagerApp::new(site_map());
        let rib = Rib::new();
        let mut nb = Northbound::new();
        let ev = meas_event(-950, &[(1, -85.0)]);
        {
            let view = RibView::over(Tti(10), &rib);
            let mut ctl = nb.control();
            app.on_event(&ev, &view, &mut ctl);
            app.on_event(&ev, &view, &mut ctl);
        }
        assert_eq!(app.handovers, 1, "second HO suppressed by interval");
        {
            let view = RibView::over(Tti(2000), &rib);
            let mut ctl = nb.control();
            app.on_event(&ev, &view, &mut ctl);
        }
        assert_eq!(app.handovers, 2, "allowed after the interval");
    }

    #[test]
    fn unknown_sites_ignored() {
        let mut app = MobilityManagerApp::new(site_map());
        let rib = Rib::new();
        let mut nb = Northbound::new();
        let view = RibView::over(Tti(10), &rib);
        let mut ctl = nb.control();
        app.on_event(&meas_event(-950, &[(99, -50.0)]), &view, &mut ctl);
        assert_eq!(app.handovers, 0);
    }
}
