//! Mobile edge computing: RAN-assisted DASH bitrate selection
//! (paper §6.2).
//!
//! The application "uses the RIB to obtain real-time information about
//! the CQI values of the attached UEs\[,\] computes an exponential moving
//! average of the UE CQI and maps it to the optimal video bitrate", then
//! forwards the bitrate "through an out-of-band channel" to the modified
//! DASH client. The out-of-band channel is a shared hint map the DASH
//! client reads ([`HintChannel`]); the CQI → sustainable-bitrate mapping
//! follows the Table 2 relationship measured by the `table2` experiment
//! (sustainable ≈ safety × achievable MAC capacity at that CQI).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use flexran_controller::northbound::{App, ControlHandle, RibView};
use flexran_phy::link_adaptation::{mcs_for_cqi, Cqi};
use flexran_phy::tables::{itbs_for_mcs, tbs_bits};
use flexran_sim::dash::Ema;
use flexran_types::ids::{EnbId, Rnti};
use flexran_types::units::BitRate;

/// Achievable MAC-layer capacity at a CQI over a 50-PRB (10 MHz) carrier.
pub fn cqi_capacity(cqi: Cqi) -> BitRate {
    let mcs = mcs_for_cqi(cqi);
    BitRate(tbs_bits(itbs_for_mcs(mcs.0), 50) as u64 * 1000)
}

/// The out-of-band channel: per-UE sustainable-bitrate hints.
pub type HintChannel = Arc<RwLock<BTreeMap<(EnbId, Rnti), BitRate>>>;

/// The MEC application.
pub struct MecDashApp {
    hints: HintChannel,
    ema: BTreeMap<(EnbId, Rnti), Ema>,
    /// EMA coefficient for the CQI average.
    pub alpha: f64,
    /// Sustainable-bitrate fraction of the CQI capacity (calibrated by
    /// the Table 2 experiment; the paper's measured ratios span
    /// 0.49–0.91, ours sit near 0.8).
    pub safety: f64,
}

impl MecDashApp {
    pub fn new() -> Self {
        MecDashApp {
            hints: Arc::new(RwLock::new(BTreeMap::new())),
            ema: BTreeMap::new(),
            alpha: 0.05,
            safety: 0.8,
        }
    }

    /// The channel handle the DASH client polls.
    pub fn hint_channel(&self) -> HintChannel {
        self.hints.clone()
    }
}

impl Default for MecDashApp {
    fn default() -> Self {
        Self::new()
    }
}

impl App for MecDashApp {
    fn name(&self) -> &str {
        "mec-dash-assist"
    }

    fn priority(&self) -> u8 {
        50 // responsive but not TTI-critical
    }

    fn on_cycle(&mut self, rib: &RibView<'_>, _ctl: &mut ControlHandle<'_>) {
        let mut hints = self.hints.write();
        for (enb, _cell, ue) in rib.all_ues() {
            if !ue.report.connected || ue.report.wideband_cqi == 0 {
                continue;
            }
            let ema = self
                .ema
                .entry((enb, ue.rnti))
                .or_insert_with(|| Ema::new(self.alpha));
            let avg_cqi = ema.update(ue.report.wideband_cqi as f64);
            let capacity = cqi_capacity(Cqi::new_clamped(avg_cqi.floor() as u8));
            hints.insert((enb, ue.rnti), capacity * self.safety);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_controller::northbound::Northbound;
    use flexran_controller::rib::{Rib, UeNode};
    use flexran_proto::messages::UeReport;
    use flexran_types::ids::CellId;
    use flexran_types::time::Tti;

    #[test]
    fn capacity_is_monotone_and_matches_regime() {
        let mut prev = BitRate::ZERO;
        for c in 1..=15u8 {
            let cap = cqi_capacity(Cqi(c));
            assert!(cap >= prev, "CQI {c}");
            prev = cap;
        }
        // CQI 10 lands near the paper's ~15 Mb/s TCP ceiling.
        let c10 = cqi_capacity(Cqi(10)).as_mbps_f64();
        assert!((10.0..=18.0).contains(&c10), "{c10}");
        // CQI 2 near the ~1.8 Mb/s regime.
        let c2 = cqi_capacity(Cqi(2)).as_mbps_f64();
        assert!((1.0..=3.0).contains(&c2), "{c2}");
    }

    fn rib_with_cqi(cqi: u8) -> Rib {
        let mut rib = Rib::new();
        let agent = rib.agent_mut(EnbId(1));
        let cell = agent.cell_entry(CellId(0));
        cell.insert_ue(UeNode {
            rnti: Rnti(0x100),
            report: UeReport {
                rnti: 0x100,
                connected: true,
                wideband_cqi: cqi,
                ..Default::default()
            },
            ..Default::default()
        });
        rib
    }

    #[test]
    fn hints_follow_cqi_with_smoothing() {
        let mut app = MecDashApp::new();
        app.alpha = 0.5; // fast for the test
        let hints = app.hint_channel();
        let mut nb = Northbound::new();

        let rib = rib_with_cqi(10);
        for t in 0..20u64 {
            let view = RibView::over(Tti(t), &rib);
            let mut ctl = nb.control();
            app.on_cycle(&view, &mut ctl);
        }
        let high = hints.read()[&(EnbId(1), Rnti(0x100))];
        assert!(high.as_mbps_f64() > 8.0, "{high}");

        // CQI drops to 4: the hint follows (with smoothing, after a few
        // cycles).
        let rib = rib_with_cqi(4);
        for t in 20..60u64 {
            let view = RibView::over(Tti(t), &rib);
            let mut ctl = nb.control();
            app.on_cycle(&view, &mut ctl);
        }
        let low = hints.read()[&(EnbId(1), Rnti(0x100))];
        assert!(low < high);
        assert!(low.as_mbps_f64() < 5.0, "{low}");
        assert!(nb.staged().is_empty(), "the MEC app sends no RAN commands");
    }

    #[test]
    fn disconnected_or_unmeasured_ues_get_no_hint() {
        let mut app = MecDashApp::new();
        let hints = app.hint_channel();
        let rib = rib_with_cqi(0); // CQI 0 = out of range
        let mut nb = Northbound::new();
        let view = RibView::over(Tti(0), &rib);
        let mut ctl = nb.control();
        app.on_cycle(&view, &mut ctl);
        assert!(hints.read().is_empty());
    }
}
