#![forbid(unsafe_code)]
//! # flexran-apps
//!
//! RAN control and management applications over the FlexRAN northbound
//! API, plus the agent-side VSFs they delegate to — everything paper §6
//! deploys:
//!
//! * [`monitoring`] — a statistics-gathering app (the paper's simplest
//!   application class).
//! * [`remote_sched`] — the centralized downlink scheduler with the
//!   schedule-ahead mechanism of §5.3.
//! * [`eicic`] — interference management (§6.1): ABS patterns, the
//!   ABS-aware macro/small-cell VSFs, and the optimized-eICIC
//!   coordinator that reassigns idle almost-blank subframes.
//! * [`mec_dash`] — mobile edge computing (§6.2): CQI-EMA → sustainable
//!   bitrate hints for DASH clients, over an out-of-band channel.
//! * [`ran_sharing`] — RAN sharing & virtualization (§6.3): the slicing
//!   VSF with runtime-reconfigurable per-operator shares and fair /
//!   group-based intra-slice policies.
//! * [`mobility`] — load-aware mobility management (§7.1 use case).
//!
//! [`register_app_vsfs`] adds the agent-side VSFs of these applications
//! to a [`VsfRegistry`], so masters can push and activate them by name.

pub mod eicic;
pub mod mec_dash;
pub mod mobility;
pub mod monitoring;
pub mod ran_sharing;
pub mod remote_sched;

use flexran_agent::vsf::{VsfImpl, VsfRegistry};

pub use eicic::{AbsAwareScheduler, OptimizedEicicApp};
pub use mec_dash::{cqi_capacity, MecDashApp};
pub use mobility::MobilityManagerApp;
pub use monitoring::MonitoringApp;
pub use ran_sharing::SliceScheduler;
pub use remote_sched::CentralizedScheduler;

/// Register the agent-side VSFs shipped by this crate under their
/// wire-addressable registry keys.
pub fn register_app_vsfs(registry: &mut VsfRegistry) {
    registry.register("slice-scheduler", || {
        VsfImpl::DlScheduler(Box::new(SliceScheduler::default()))
    });
    registry.register("macro-eicic", || {
        VsfImpl::DlScheduler(Box::new(AbsAwareScheduler::macro_side(
            eicic::standard_abs_pattern(4),
        )))
    });
    registry.register("small-eicic", || {
        VsfImpl::DlScheduler(Box::new(AbsAwareScheduler::small_side(
            eicic::standard_abs_pattern(4),
        )))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vsfs_register_and_instantiate() {
        let mut r = VsfRegistry::with_builtins();
        register_app_vsfs(&mut r);
        for key in ["slice-scheduler", "macro-eicic", "small-eicic"] {
            assert_eq!(r.instantiate(key).unwrap().kind(), "dl-scheduler", "{key}");
        }
    }
}
