//! The centralized (remote) downlink scheduler with schedule-ahead
//! (paper §5.3).
//!
//! Runs at the master as a real-time application: each cycle it reads the
//! RIB (whose contents are stale by half the control-channel RTT), takes
//! the freshest synced agent subframe `x`, and issues scheduling
//! decisions for subframe `x + n`, where `n` is the *schedule-ahead*
//! parameter. The agent applies a decision only if it arrives before its
//! target subframe — so, as the paper derives, the UE can only be served
//! when `n ≥ RTT` (half to cover the stale subframe report, half for the
//! command's flight time).
//!
//! The actual allocation policy is pluggable (any [`DlScheduler`]); the
//! RIB's raw UE reports are adapted into the scheduler-input vocabulary.

use std::collections::BTreeMap;

use flexran_controller::northbound::{App, ControlHandle, RibView};
use flexran_controller::rib::CellNode;
use flexran_phy::link_adaptation::Cqi;
use flexran_proto::messages::{DlSchedulingCommand, FlexranMessage, UlSchedulingCommand};
use flexran_stack::mac::dci::{DlSchedulingDecision, UlSchedulingDecision};
use flexran_stack::mac::scheduler::{
    DlScheduler, DlSchedulerInput, UeSchedInfo, UlScheduler, UlSchedulerInput, UlUeInfo,
};
use flexran_types::ids::{CellId, EnbId, SliceId};
use flexran_types::time::Tti;
use flexran_types::units::Bytes;

/// Build scheduler input from a RIB cell node.
///
/// `queue_discount` lets a caller scheduling several future subframes in
/// one cycle account for bytes it already granted (keyed by RNTI).
pub fn scheduler_input_from_rib(
    cell: &CellNode,
    now: Tti,
    target: Tti,
    queue_discount: &BTreeMap<u16, u64>,
) -> DlSchedulerInput {
    let (available_prb, max_dcis) = match &cell.config {
        Some(c) => (c.dl_prbs, c.max_dl_dcis),
        None => (50, 10), // the paper's 10 MHz defaults
    };
    let ues = cell
        .ues()
        .iter()
        .map(|u| {
            let r = &u.report;
            let raw_queue: u64 = r
                .rlc
                .iter()
                .filter(|b| b.lcid >= 3)
                .map(|b| b.tx_queue_bytes)
                .sum();
            let srb: u64 = r
                .rlc
                .iter()
                .filter(|b| b.lcid < 3)
                .map(|b| b.tx_queue_bytes)
                .sum();
            let discount = queue_discount.get(&r.rnti).copied().unwrap_or(0);
            UeSchedInfo {
                rnti: u.rnti,
                cqi: Cqi::new_clamped(r.wideband_cqi),
                queue_bytes: Bytes(raw_queue.saturating_sub(discount)),
                srb_bytes: Bytes(srb),
                avg_rate_bps: r.avg_rate_bps as f64,
                slice: SliceId(r.slice),
                priority_group: r.priority_group,
                hol_delay_ms: r.rlc.iter().map(|b| b.hol_delay_ms).max().unwrap_or(0),
            }
        })
        .collect();
    DlSchedulerInput {
        cell: cell.cell_id,
        now,
        target,
        available_prb,
        max_dcis,
        ues,
        retx: Vec::new(), // HARQ is below the remote scheduler's view
    }
}

/// Build an *uplink* scheduler input from a RIB cell node (backlogs come
/// from the BSR indices in the UE reports).
pub fn ul_scheduler_input_from_rib(cell: &CellNode, now: Tti, target: Tti) -> UlSchedulerInput {
    let (available_prb, max_grants) = match &cell.config {
        Some(c) => (c.ul_prbs, c.max_ul_grants),
        None => (50, 8),
    };
    let ues = cell
        .ues()
        .iter()
        .filter(|u| u.report.connected)
        .map(|u| {
            let bsr_idx = u.report.bsr.first().copied().unwrap_or(0) as u8;
            UlUeInfo {
                rnti: u.rnti,
                bsr_bytes: Bytes(flexran_stack::mac::bsr::bsr_upper_edge_bytes(bsr_idx)),
                cqi: Cqi::new_clamped(u.report.wideband_cqi),
                prb_cap: 24,
            }
        })
        .collect();
    UlSchedulerInput {
        cell: cell.cell_id,
        now,
        target,
        available_prb,
        max_grants,
        ues,
    }
}

/// The centralized scheduler application.
pub struct CentralizedScheduler {
    /// Schedule-ahead in subframes (`n` of Fig. 9).
    pub schedule_ahead: u64,
    policy: Box<dyn DlScheduler>,
    /// Optional uplink policy: when set, uplink grants are also issued
    /// remotely (full centralization).
    ul_policy: Option<Box<dyn UlScheduler>>,
    /// Most recent target issued per (agent, cell).
    last_target: BTreeMap<(EnbId, u16), u64>,
    /// Cap on targets issued per cycle per cell (sync hiccup catch-up).
    pub max_catchup: u64,
    /// Commands issued (observability / Fig. 7b accounting cross-check).
    pub commands_sent: u64,
    /// Cells this app manages; empty = every cell it sees.
    pub scope: Vec<(EnbId, u16)>,
}

impl CentralizedScheduler {
    pub fn new(schedule_ahead: u64, policy: Box<dyn DlScheduler>) -> Self {
        CentralizedScheduler {
            schedule_ahead,
            policy,
            ul_policy: None,
            last_target: BTreeMap::new(),
            max_catchup: 4,
            commands_sent: 0,
            scope: Vec::new(),
        }
    }

    /// Restrict the app to specific cells.
    pub fn with_scope(mut self, scope: Vec<(EnbId, u16)>) -> Self {
        self.scope = scope;
        self
    }

    /// Also centralize uplink scheduling with the given policy.
    pub fn with_uplink(mut self, ul: Box<dyn UlScheduler>) -> Self {
        self.ul_policy = Some(ul);
        self
    }

    fn in_scope(&self, enb: EnbId, cell: u16) -> bool {
        self.scope.is_empty() || self.scope.contains(&(enb, cell))
    }
}

impl App for CentralizedScheduler {
    fn name(&self) -> &str {
        "centralized-scheduler"
    }

    fn priority(&self) -> u8 {
        200 // time-critical (paper §4.3.3)
    }

    fn on_cycle(&mut self, rib: &RibView<'_>, ctl: &mut ControlHandle<'_>) {
        let agents: Vec<EnbId> = rib.agents().into_iter().map(|a| a.enb_id).collect();
        for enb in agents {
            if rib.is_stale(enb) {
                continue; // session down: the RIB subtree is a pre-outage
                          // snapshot and the agent runs local control
            }
            let Some(sync) = rib.synced_subframe(enb) else {
                continue; // agent not syncing: cannot schedule remotely
            };
            let agent = rib.agent(enb).expect("listed agent");
            let cells: Vec<u16> = agent.cells().iter().map(|c| c.cell_id.0).collect();
            for cell_id in cells {
                if !self.in_scope(enb, cell_id) {
                    continue;
                }
                let horizon = sync.0 + self.schedule_ahead;
                let start = self
                    .last_target
                    .get(&(enb, cell_id))
                    .map(|t| t + 1)
                    .unwrap_or(horizon)
                    .max(sync.0 + 1);
                if start > horizon {
                    continue; // nothing new to cover
                }
                let from = horizon.saturating_sub(self.max_catchup - 1).max(start);
                // Bytes already granted this cycle, so consecutive targets
                // don't re-schedule the same queue.
                let mut discount: BTreeMap<u16, u64> = BTreeMap::new();
                for target in from..=horizon {
                    let cell = agent.cell(CellId(cell_id)).expect("listed cell");
                    let input = scheduler_input_from_rib(cell, rib.now(), Tti(target), &discount);
                    let out = self.policy.schedule_dl(&input);
                    self.last_target.insert((enb, cell_id), target);
                    // Uplink grants for the same target, if centralized
                    // (independent of whether the downlink has work).
                    if let Some(ul) = self.ul_policy.as_mut() {
                        let input = ul_scheduler_input_from_rib(cell, rib.now(), Tti(target));
                        let ul_out = ul.schedule_ul(&input);
                        if !ul_out.grants.is_empty() {
                            let cmd = UlSchedulingCommand::from_decision(
                                enb,
                                &UlSchedulingDecision {
                                    cell: CellId(cell_id),
                                    target: Tti(target),
                                    grants: ul_out.grants,
                                },
                            );
                            ctl.send(enb, FlexranMessage::UlSchedulingCommand(cmd));
                            self.commands_sent += 1;
                        }
                    }
                    if out.dcis.is_empty() {
                        continue;
                    }
                    for dci in &out.dcis {
                        let tbs = flexran_phy::tables::tbs_bits(
                            flexran_phy::tables::itbs_for_mcs(dci.mcs.0),
                            dci.n_prb,
                        ) as u64
                            / 8;
                        *discount.entry(dci.rnti.0).or_insert(0) += tbs;
                    }
                    let cmd = DlSchedulingCommand::from_decision(
                        enb,
                        &DlSchedulingDecision {
                            cell: CellId(cell_id),
                            target: Tti(target),
                            dcis: out.dcis,
                        },
                    );
                    if ctl.schedule_dl(enb, cmd).is_ok() {
                        self.commands_sent += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_controller::rib::{Rib, UeNode};
    use flexran_controller::{MasterController, Northbound, TaskManagerConfig};
    use flexran_proto::messages::stats::RlcReport;
    use flexran_proto::messages::{FlexranMessage, Header, Hello, SubframeTrigger, UeReport};
    use flexran_proto::transport::{channel_pair, Transport};
    use flexran_stack::mac::scheduler::RoundRobinScheduler;
    use flexran_types::ids::Rnti;

    #[test]
    fn input_adapter_maps_rib_fields() {
        let mut cell = CellNode::default();
        cell.cell_id = CellId(0);
        cell.insert_ue(UeNode {
            rnti: Rnti(0x100),
            report: UeReport {
                rnti: 0x100,
                wideband_cqi: 9,
                slice: 1,
                priority_group: 1,
                rlc: vec![
                    RlcReport {
                        lcid: 1,
                        tx_queue_bytes: 60,
                        ..Default::default()
                    },
                    RlcReport {
                        lcid: 3,
                        tx_queue_bytes: 9_000,
                        hol_delay_ms: 12,
                        ..Default::default()
                    },
                ],
                ..Default::default()
            },
            ..Default::default()
        });
        let input = scheduler_input_from_rib(&cell, Tti(10), Tti(16), &BTreeMap::new());
        assert_eq!(input.available_prb, 50);
        let ue = &input.ues[0];
        assert_eq!(ue.cqi, Cqi(9));
        assert_eq!(ue.queue_bytes, Bytes(9_000));
        assert_eq!(ue.srb_bytes, Bytes(60));
        assert_eq!(ue.slice, SliceId(1));
        assert_eq!(ue.hol_delay_ms, 12);
        // Discounting reduces the visible queue.
        let mut discount = BTreeMap::new();
        discount.insert(0x100u16, 8_500u64);
        let input = scheduler_input_from_rib(&cell, Tti(10), Tti(17), &discount);
        assert_eq!(input.ues[0].queue_bytes, Bytes(500));
    }

    /// End-to-end through a real master: sync + stats in, commands out.
    #[test]
    fn issues_commands_n_ahead_of_sync() {
        let mut master = MasterController::new(TaskManagerConfig::default());
        master.register_app(Box::new(CentralizedScheduler::new(
            6,
            Box::new(RoundRobinScheduler::new()),
        )));
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(1),
                    n_cells: 1,
                    capabilities: vec![],
                    applied_config: 0,
                }),
            )
            .unwrap();
        // Stats first so the RIB knows the UE, then per-TTI sync.
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::StatsReply(flexran_proto::messages::StatsReply {
                    enb_id: EnbId(1),
                    tti: 99,
                    cells: vec![],
                    ues: vec![UeReport {
                        rnti: 0x100,
                        cell: 0,
                        connected: true,
                        wideband_cqi: 12,
                        rlc: vec![RlcReport {
                            lcid: 3,
                            tx_queue_bytes: 100_000,
                            ..Default::default()
                        }],
                        ..Default::default()
                    }],
                }),
            )
            .unwrap();
        for t in 100..110u64 {
            agent_side
                .send(
                    Header::default(),
                    &FlexranMessage::SubframeTrigger(SubframeTrigger {
                        enb_id: EnbId(1),
                        sfn: 0,
                        sf: 0,
                        tti: t,
                    }),
                )
                .unwrap();
            master.run_cycle(Tti(t + 1));
        }
        // Collect the scheduling commands the agent received.
        let mut targets = Vec::new();
        while let Ok(Some((_, msg))) = agent_side.try_recv() {
            if let FlexranMessage::DlSchedulingCommand(c) = msg {
                assert_eq!(c.dcis[0].rnti, 0x100);
                targets.push(c.target_tti);
            }
        }
        assert!(!targets.is_empty(), "commands must flow");
        // Every target is exactly schedule-ahead past some synced subframe
        // and strictly increasing.
        for w in targets.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(
            targets.iter().all(|t| (105..=115).contains(t)),
            "{targets:?}"
        );
    }

    #[test]
    fn no_sync_no_commands() {
        let mut sched = CentralizedScheduler::new(6, Box::new(RoundRobinScheduler::new()));
        let rib = Rib::new();
        let mut nb = Northbound::new();
        let view = RibView::over(Tti(5), &rib);
        let mut ctl = nb.control();
        sched.on_cycle(&view, &mut ctl);
        assert!(nb.staged().is_empty());
        assert_eq!(sched.commands_sent, 0);
    }

    #[test]
    fn stale_agents_are_skipped() {
        let mut sched = CentralizedScheduler::new(6, Box::new(RoundRobinScheduler::new()));
        let mut rib = Rib::new();
        {
            let agent = rib.agent_mut(EnbId(1));
            agent.last_sync = Some((Tti(100), Tti(101)));
            let cell = agent.cell_entry(CellId(0));
            cell.insert_ue(UeNode {
                rnti: Rnti(0x100),
                report: UeReport {
                    rnti: 0x100,
                    connected: true,
                    wideband_cqi: 12,
                    rlc: vec![RlcReport {
                        lcid: 3,
                        tx_queue_bytes: 100_000,
                        ..Default::default()
                    }],
                    ..Default::default()
                },
                ..Default::default()
            });
            agent.mark_stale(Tti(105));
        }
        let mut nb = Northbound::new();
        {
            let view = RibView::over(Tti(106), &rib);
            let mut ctl = nb.control();
            sched.on_cycle(&view, &mut ctl);
        }
        assert!(
            nb.staged().is_empty(),
            "no commands toward a down session's pre-outage snapshot"
        );
        // Session restored: the same RIB state now yields commands.
        rib.agent_mut(EnbId(1)).mark_fresh();
        {
            let view = RibView::over(Tti(107), &rib);
            let mut ctl = nb.control();
            sched.on_cycle(&view, &mut ctl);
        }
        assert!(!nb.staged().is_empty(), "commands resume after mark_fresh");
    }
}
