//! RAN sharing & virtualization (paper §6.3).
//!
//! [`SliceScheduler`] is the agent-side downlink scheduler "that supports
//! the dynamic introduction of new MVNOs to the RAN and the on-demand
//! modification of the scheduling policy per operator". Each slice
//! (operator) owns a runtime-reconfigurable share of the cell's PRBs and
//! an intra-slice policy:
//!
//! * `fair` — equal split among the slice's backlogged UEs,
//! * `group` — premium/secondary user groups, with the premium group
//!   owning a configurable fraction of the slice's resources
//!   (the paper's second experiment: 70 % premium / 30 % secondary).
//!
//! A master application modifies `slice_shares` / policies at runtime via
//! the policy-reconfiguration mechanism — the Fig. 12a experiment is
//! literally two such messages at t = 10 s and t = 140 s.

use flexran_phy::link_adaptation::mcs_for_cqi;
use flexran_stack::mac::dci::DlDci;
use flexran_stack::mac::scheduler::{
    allocate_srbs, prbs_for_bytes, DlScheduler, DlSchedulerInput, DlSchedulerOutput, ParamValue,
    UeSchedInfo,
};
use flexran_types::units::Bytes;
use flexran_types::{FlexError, Result};

/// Intra-slice scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicePolicy {
    Fair,
    /// Premium (group 0) / secondary (group ≥ 1) split.
    GroupBased,
}

/// The multi-operator slicing scheduler.
pub struct SliceScheduler {
    /// PRB share per slice id (normalized on use; missing slices get 0).
    pub shares: Vec<f64>,
    /// Intra-slice policy per slice id (missing → `Fair`).
    pub policies: Vec<SlicePolicy>,
    /// Premium group's fraction of its slice's budget under `GroupBased`.
    pub premium_share: f64,
    /// Per-(slice, group) rotation cursors — each candidate set rotates
    /// independently so DCI pressure starves nobody.
    rotations: std::collections::BTreeMap<(usize, u8), usize>,
    /// Candidate index scratch (into `input.ues`), reused across TTIs.
    cand: Vec<usize>,
    premium: Vec<usize>,
    secondary: Vec<usize>,
}

impl Default for SliceScheduler {
    fn default() -> Self {
        SliceScheduler {
            shares: vec![1.0],
            policies: vec![SlicePolicy::Fair],
            premium_share: 0.7,
            rotations: std::collections::BTreeMap::new(),
            cand: Vec::new(),
            premium: Vec::new(),
            secondary: Vec::new(),
        }
    }
}

impl SliceScheduler {
    pub fn new(shares: Vec<f64>, policies: Vec<SlicePolicy>) -> Self {
        SliceScheduler {
            shares,
            policies,
            ..SliceScheduler::default()
        }
    }

    fn policy_of(&self, slice: usize) -> SlicePolicy {
        self.policies
            .get(slice)
            .copied()
            .unwrap_or(SlicePolicy::Fair)
    }

    /// Allocate `budget` PRBs among the UEs at `cands` (indices into
    /// `ues`) with equal shares, adding at most `max_new` DCIs and
    /// rotating the start index so DCI-budget pressure is spread over
    /// TTIs rather than starving whoever comes last.
    #[allow(clippy::too_many_arguments)]
    fn allocate_equal(
        rotations: &mut std::collections::BTreeMap<(usize, u8), usize>,
        key: (usize, u8),
        ues: &[UeSchedInfo],
        cands: &[usize],
        budget: u8,
        dcis: &mut Vec<DlDci>,
        max_new: usize,
    ) {
        if cands.is_empty() || budget == 0 || max_new == 0 {
            return;
        }
        let n_served = cands.len().min(max_new);
        let rotation = rotations.entry(key).or_insert(0);
        *rotation = rotation.wrapping_add(1);
        let rotation = *rotation;
        let share = ((budget as usize) / n_served).max(1) as u8;
        let mut left = budget;
        for i in 0..n_served {
            if left == 0 {
                break;
            }
            let ue = &ues[cands[(rotation + i) % cands.len()]];
            let mcs = mcs_for_cqi(ue.cqi);
            let want = prbs_for_bytes(mcs, Bytes(ue.queue_bytes.as_u64() + 8), share.min(left));
            dcis.push(DlDci {
                rnti: ue.rnti,
                n_prb: want,
                mcs,
            });
            left -= want;
        }
    }
}

impl DlScheduler for SliceScheduler {
    fn name(&self) -> &str {
        "slice-scheduler"
    }

    fn schedule_dl_into(&mut self, input: &DlSchedulerInput, out: &mut DlSchedulerOutput) {
        out.dcis.clear();
        let dcis = &mut out.dcis;
        let prb_left = allocate_srbs(input, dcis, input.available_prb);
        let max_dcis = input.max_dcis as usize;
        let total_share: f64 = self.shares.iter().sum::<f64>().max(1e-9);
        let n_slices = self.shares.len().max(1);
        for slice in 0..n_slices {
            if dcis.len() >= max_dcis {
                break;
            }
            let budget = ((self.shares.get(slice).copied().unwrap_or(0.0) / total_share)
                * prb_left as f64)
                .floor() as u8;
            if budget == 0 {
                continue;
            }
            self.cand.clear();
            self.cand
                .extend(input.ues.iter().enumerate().filter_map(|(i, u)| {
                    let want = u.slice.0 as usize == slice
                        && !u.queue_bytes.is_zero()
                        && u.cqi.0 > 0
                        && !dcis.iter().any(|d| d.rnti == u.rnti);
                    want.then_some(i)
                }));
            if self.cand.is_empty() {
                continue;
            }
            // The PDCCH DCI budget is sliced proportionally too, so late
            // slices/groups are not starved of control-channel space.
            let share_frac = self.shares.get(slice).copied().unwrap_or(0.0) / total_share;
            let slice_dcis = ((max_dcis as f64 * share_frac).ceil() as usize)
                .max(1)
                .min(max_dcis.saturating_sub(dcis.len()));
            match self.policy_of(slice) {
                SlicePolicy::Fair => {
                    Self::allocate_equal(
                        &mut self.rotations,
                        (slice, 0),
                        &input.ues,
                        &self.cand,
                        budget,
                        dcis,
                        slice_dcis,
                    );
                }
                SlicePolicy::GroupBased => {
                    self.premium.clear();
                    self.secondary.clear();
                    for &i in &self.cand {
                        if input.ues[i].priority_group == 0 {
                            self.premium.push(i);
                        } else {
                            self.secondary.push(i);
                        }
                    }
                    let premium_budget =
                        (budget as f64 * self.premium_share.clamp(0.0, 1.0)).round() as u8;
                    let premium_dcis = if self.secondary.is_empty() {
                        slice_dcis
                    } else {
                        ((slice_dcis as f64 * self.premium_share).ceil() as usize)
                            .min(slice_dcis.saturating_sub(1))
                    };
                    Self::allocate_equal(
                        &mut self.rotations,
                        (slice, 0),
                        &input.ues,
                        &self.premium,
                        premium_budget,
                        dcis,
                        premium_dcis,
                    );
                    Self::allocate_equal(
                        &mut self.rotations,
                        (slice, 1),
                        &input.ues,
                        &self.secondary,
                        budget.saturating_sub(premium_budget),
                        dcis,
                        slice_dcis.saturating_sub(premium_dcis),
                    );
                }
            }
        }
    }

    fn set_param(&mut self, key: &str, value: ParamValue) -> Result<()> {
        match key {
            "slice_shares" => match value {
                ParamValue::List(shares) => {
                    if shares.iter().any(|s| *s < 0.0) || shares.is_empty() {
                        return Err(FlexError::Policy(
                            "slice_shares must be non-empty and non-negative".into(),
                        ));
                    }
                    self.shares = shares;
                    Ok(())
                }
                _ => Err(FlexError::Policy("slice_shares must be a list".into())),
            },
            "premium_share" => {
                let v = value
                    .as_f64()
                    .ok_or_else(|| FlexError::Policy("premium_share must be numeric".into()))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(FlexError::Policy(format!(
                        "premium_share {v} outside 0..=1"
                    )));
                }
                self.premium_share = v;
                Ok(())
            }
            "policies" => match value {
                ParamValue::Str(s) => {
                    let mut out = Vec::new();
                    for p in s.split(',') {
                        out.push(match p.trim() {
                            "fair" => SlicePolicy::Fair,
                            "group" => SlicePolicy::GroupBased,
                            other => {
                                return Err(FlexError::Policy(format!(
                                    "unknown slice policy '{other}'"
                                )))
                            }
                        });
                    }
                    self.policies = out;
                    Ok(())
                }
                _ => Err(FlexError::Policy(
                    "policies must be a comma-separated string".into(),
                )),
            },
            other => Err(FlexError::NotFound(format!(
                "slice-scheduler has no parameter '{other}'"
            ))),
        }
    }

    fn params(&self) -> Vec<(String, ParamValue)> {
        vec![
            ("slice_shares".into(), ParamValue::List(self.shares.clone())),
            ("premium_share".into(), ParamValue::F64(self.premium_share)),
            (
                "policies".into(),
                ParamValue::Str(
                    self.policies
                        .iter()
                        .map(|p| match p {
                            SlicePolicy::Fair => "fair",
                            SlicePolicy::GroupBased => "group",
                        })
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_phy::link_adaptation::Cqi;
    use flexran_types::ids::{CellId, Rnti, SliceId};
    use flexran_types::time::Tti;

    fn ue(rnti: u16, slice: u8, group: u8) -> UeSchedInfo {
        UeSchedInfo {
            rnti: Rnti(rnti),
            cqi: Cqi(10),
            queue_bytes: Bytes(1_000_000),
            srb_bytes: Bytes::ZERO,
            avg_rate_bps: 1.0,
            slice: SliceId(slice),
            priority_group: group,
            hol_delay_ms: 0,
        }
    }

    fn input(ues: Vec<UeSchedInfo>) -> DlSchedulerInput {
        DlSchedulerInput {
            cell: CellId(0),
            now: Tti(0),
            target: Tti(0),
            available_prb: 50,
            max_dcis: 10,
            ues,
            retx: vec![],
        }
    }

    fn prbs_for_slice(out: &DlSchedulerOutput, ues: &[UeSchedInfo], slice: u8) -> u32 {
        out.dcis
            .iter()
            .filter(|d| {
                ues.iter()
                    .any(|u| u.rnti == d.rnti && u.slice == SliceId(slice))
            })
            .map(|d| d.n_prb as u32)
            .sum()
    }

    #[test]
    fn shares_partition_the_band() {
        let mut s = SliceScheduler::new(vec![0.7, 0.3], vec![SlicePolicy::Fair, SlicePolicy::Fair]);
        let ues: Vec<_> = (0..4).map(|i| ue(0x100 + i, (i % 2) as u8, 0)).collect();
        let out = s.schedule_dl(&input(ues.clone()));
        let mno = prbs_for_slice(&out, &ues, 0);
        let mvno = prbs_for_slice(&out, &ues, 1);
        assert!(mno + mvno <= 50);
        // 70/30 ± rounding.
        assert!((33..=35).contains(&mno), "MNO got {mno}");
        assert!((13..=15).contains(&mvno), "MVNO got {mvno}");
    }

    #[test]
    fn reconfiguring_shares_shifts_allocation() {
        let mut s = SliceScheduler::new(vec![0.7, 0.3], vec![SlicePolicy::Fair, SlicePolicy::Fair]);
        s.set_param("slice_shares", ParamValue::List(vec![0.4, 0.6]))
            .unwrap();
        let ues: Vec<_> = (0..4).map(|i| ue(0x100 + i, (i % 2) as u8, 0)).collect();
        let out = s.schedule_dl(&input(ues.clone()));
        let mno = prbs_for_slice(&out, &ues, 0);
        let mvno = prbs_for_slice(&out, &ues, 1);
        assert!(mvno > mno, "after reconfiguration the MVNO leads");
    }

    #[test]
    fn group_policy_prefers_premium() {
        let mut s = SliceScheduler::new(vec![1.0], vec![SlicePolicy::GroupBased]);
        let mut ues = Vec::new();
        for i in 0..3 {
            ues.push(ue(0x100 + i, 0, 0)); // premium
        }
        for i in 3..6 {
            ues.push(ue(0x100 + i, 0, 1)); // secondary
        }
        let out = s.schedule_dl(&input(ues.clone()));
        let premium_prbs: u32 = out
            .dcis
            .iter()
            .filter(|d| d.rnti.0 < 0x103)
            .map(|d| d.n_prb as u32)
            .sum();
        let secondary_prbs: u32 = out
            .dcis
            .iter()
            .filter(|d| d.rnti.0 >= 0x103)
            .map(|d| d.n_prb as u32)
            .sum();
        assert!(
            premium_prbs > secondary_prbs * 2 - 3,
            "{premium_prbs} vs {secondary_prbs}"
        );
    }

    #[test]
    fn unused_share_is_not_stolen() {
        // Slice isolation: slice 1 has no backlog; slice 0 must NOT take
        // its PRBs (hard slicing, as in the paper's on-demand allocation).
        let mut s = SliceScheduler::new(vec![0.5, 0.5], vec![SlicePolicy::Fair, SlicePolicy::Fair]);
        let ues = vec![ue(0x100, 0, 0)];
        let out = s.schedule_dl(&input(ues.clone()));
        let mno = prbs_for_slice(&out, &ues, 0);
        assert!(mno <= 25, "slice 0 confined to its share, got {mno}");
    }

    #[test]
    fn param_api_validates() {
        let mut s = SliceScheduler::default();
        assert!(s.set_param("slice_shares", ParamValue::F64(1.0)).is_err());
        assert!(s
            .set_param("slice_shares", ParamValue::List(vec![]))
            .is_err());
        assert!(s
            .set_param("slice_shares", ParamValue::List(vec![-0.1, 1.1]))
            .is_err());
        assert!(s.set_param("premium_share", ParamValue::F64(1.5)).is_err());
        s.set_param("policies", ParamValue::Str("fair,group".into()))
            .unwrap();
        assert_eq!(s.policies, vec![SlicePolicy::Fair, SlicePolicy::GroupBased]);
        assert!(s
            .set_param("policies", ParamValue::Str("bogus".into()))
            .is_err());
        assert!(s.set_param("nope", ParamValue::I64(0)).is_err());
        assert_eq!(s.params().len(), 3);
    }

    #[test]
    fn rotation_serves_everyone_under_dci_pressure() {
        // 15 UEs in one fair slice, 10 DCIs per TTI: over 30 TTIs all are
        // served (the Fig. 12b fairness requirement).
        let mut s = SliceScheduler::new(vec![1.0], vec![SlicePolicy::Fair]);
        let ues: Vec<_> = (0..15).map(|i| ue(0x100 + i, 0, 0)).collect();
        let mut served = std::collections::HashSet::new();
        for _ in 0..30 {
            let out = s.schedule_dl(&input(ues.clone()));
            assert!(out.dcis.len() <= 10);
            for d in out.dcis {
                served.insert(d.rnti);
            }
        }
        assert_eq!(served.len(), 15);
    }
}
