//! 3GPP TS 36.213-style lookup tables.
//!
//! Two tables are reproduced exactly from the standard:
//!
//! * the CQI table (TS 36.213 Table 7.2.3-1), and
//! * the modulation & TBS-index table for PDSCH (Table 7.1.7.1-1).
//!
//! The transport block size table (Table 7.1.7.2.1-1, 27 × 110 entries) is
//! embedded exactly for the 50-PRB column — the 10 MHz bandwidth every
//! paper experiment uses — and scaled proportionally for other PRB counts
//! (the standard's table is itself piecewise-proportional in `n_prb`).
//! Anchor tests pin the scaling error to a few percent; the divergence is
//! documented in `DESIGN.md` §7.

/// Modulation scheme of a transport block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    Qpsk,
    Qam16,
    Qam64,
}

impl Modulation {
    /// Bits carried per modulation symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }
}

/// One row of the CQI table (TS 36.213 Table 7.2.3-1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CqiTableEntry {
    /// CQI index, 0..=15. Index 0 means "out of range".
    pub index: u8,
    /// Modulation; `None` for CQI 0.
    pub modulation: Option<Modulation>,
    /// Code rate × 1024; 0 for CQI 0.
    pub code_rate_x1024: u16,
    /// Spectral efficiency in bits per modulation symbol × code rate.
    pub efficiency: f64,
}

/// TS 36.213 Table 7.2.3-1, verbatim.
pub const CQI_TABLE: [CqiTableEntry; 16] = [
    CqiTableEntry {
        index: 0,
        modulation: None,
        code_rate_x1024: 0,
        efficiency: 0.0,
    },
    CqiTableEntry {
        index: 1,
        modulation: Some(Modulation::Qpsk),
        code_rate_x1024: 78,
        efficiency: 0.1523,
    },
    CqiTableEntry {
        index: 2,
        modulation: Some(Modulation::Qpsk),
        code_rate_x1024: 120,
        efficiency: 0.2344,
    },
    CqiTableEntry {
        index: 3,
        modulation: Some(Modulation::Qpsk),
        code_rate_x1024: 193,
        efficiency: 0.3770,
    },
    CqiTableEntry {
        index: 4,
        modulation: Some(Modulation::Qpsk),
        code_rate_x1024: 308,
        efficiency: 0.6016,
    },
    CqiTableEntry {
        index: 5,
        modulation: Some(Modulation::Qpsk),
        code_rate_x1024: 449,
        efficiency: 0.8770,
    },
    CqiTableEntry {
        index: 6,
        modulation: Some(Modulation::Qpsk),
        code_rate_x1024: 602,
        efficiency: 1.1758,
    },
    CqiTableEntry {
        index: 7,
        modulation: Some(Modulation::Qam16),
        code_rate_x1024: 378,
        efficiency: 1.4766,
    },
    CqiTableEntry {
        index: 8,
        modulation: Some(Modulation::Qam16),
        code_rate_x1024: 490,
        efficiency: 1.9141,
    },
    CqiTableEntry {
        index: 9,
        modulation: Some(Modulation::Qam16),
        code_rate_x1024: 616,
        efficiency: 2.4063,
    },
    CqiTableEntry {
        index: 10,
        modulation: Some(Modulation::Qam64),
        code_rate_x1024: 466,
        efficiency: 2.7305,
    },
    CqiTableEntry {
        index: 11,
        modulation: Some(Modulation::Qam64),
        code_rate_x1024: 567,
        efficiency: 3.3223,
    },
    CqiTableEntry {
        index: 12,
        modulation: Some(Modulation::Qam64),
        code_rate_x1024: 666,
        efficiency: 3.9023,
    },
    CqiTableEntry {
        index: 13,
        modulation: Some(Modulation::Qam64),
        code_rate_x1024: 772,
        efficiency: 4.5234,
    },
    CqiTableEntry {
        index: 14,
        modulation: Some(Modulation::Qam64),
        code_rate_x1024: 873,
        efficiency: 5.1152,
    },
    CqiTableEntry {
        index: 15,
        modulation: Some(Modulation::Qam64),
        code_rate_x1024: 948,
        efficiency: 5.5547,
    },
];

/// Highest MCS index for PDSCH.
pub const MAX_MCS: u8 = 28;
/// Highest TBS index.
pub const MAX_ITBS: u8 = 26;

/// Modulation for each PDSCH MCS index (TS 36.213 Table 7.1.7.1-1):
/// MCS 0..=9 QPSK, 10..=16 16QAM, 17..=28 64QAM.
pub fn modulation_for_mcs(mcs: u8) -> Modulation {
    match mcs {
        0..=9 => Modulation::Qpsk,
        10..=16 => Modulation::Qam16,
        _ => Modulation::Qam64,
    }
}

/// TBS index I_TBS for each PDSCH MCS index (TS 36.213 Table 7.1.7.1-1).
///
/// MCS 9/10 and 16/17 map to the same I_TBS (the modulation switch points).
pub fn itbs_for_mcs(mcs: u8) -> u8 {
    const ITBS: [u8; 29] = [
        0, 1, 2, 3, 4, 5, 6, 7, 8, 9, // QPSK
        9, 10, 11, 12, 13, 14, 15, // 16QAM
        15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, // 64QAM
    ];
    ITBS[mcs.min(MAX_MCS) as usize]
}

/// The 50-PRB column of the standard TBS table (TS 36.213 Table
/// 7.1.7.2.1-1), I_TBS 0..=26, in bits. 50 PRB is the 10 MHz bandwidth
/// used for every experiment in the paper, so this column is exact where
/// it matters; other PRB counts scale proportionally (see [`tbs_bits`]).
pub const TBS_50PRB_BITS: [u32; 27] = [
    1384, 1800, 2216, 2856, 3624, 4392, 5160, 6200, 6968, 7992, // I_TBS 0..=9
    8760, 9912, 11448, 12960, 14112, 15264, 16416, 17568, // I_TBS 10..=17
    19848, 21384, 22920, 25456, 27376, 28336, 30576, 31704, 36696, // I_TBS 18..=26
];

/// Nominal resource elements per PRB pair available to the shared channel
/// (12 subcarriers × 14 symbols minus control region and reference-signal
/// overhead), used only to express TBS entries as spectral efficiencies.
pub const NOMINAL_RE_PER_PRB: f64 = 132.0;

/// Spectral efficiency (information bits per resource element) realized by
/// each I_TBS, derived from the standard's 50-PRB TBS column.
pub fn efficiency_for_itbs(itbs: u8) -> f64 {
    TBS_50PRB_BITS[itbs.min(MAX_ITBS) as usize] as f64 / (NOMINAL_RE_PER_PRB * 50.0)
}

/// Transport block size in bits for a given TBS index and PRB allocation.
///
/// Exact (standard Table 7.1.7.2.1-1) at 50 PRB; for other allocations the
/// 50-PRB entry is scaled proportionally and floored to a byte boundary
/// (minimum 16 bits, the smallest entry of the standard table). The
/// standard's own table is piecewise-proportional in `n_prb`, so the
/// scaling error stays within a few percent — anchor-tested below.
pub fn tbs_bits(itbs: u8, n_prb: u8) -> u32 {
    if n_prb == 0 {
        return 0;
    }
    let base = TBS_50PRB_BITS[itbs.min(MAX_ITBS) as usize] as u64;
    let bits = base * n_prb as u64 / 50;
    let byte_aligned = ((bits / 8) * 8) as u32;
    byte_aligned.max(16)
}

/// Convenience: transport block size for an MCS index directly.
pub fn tbs_bits_for_mcs(mcs: u8, n_prb: u8) -> u32 {
    tbs_bits(itbs_for_mcs(mcs), n_prb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqi_table_is_monotonic() {
        for w in CQI_TABLE.windows(2) {
            assert!(w[1].efficiency > w[0].efficiency);
        }
        assert_eq!(CQI_TABLE[15].efficiency, 5.5547);
        assert_eq!(CQI_TABLE[7].modulation, Some(Modulation::Qam16));
    }

    #[test]
    fn mcs_mapping_matches_standard_switch_points() {
        assert_eq!(modulation_for_mcs(9), Modulation::Qpsk);
        assert_eq!(modulation_for_mcs(10), Modulation::Qam16);
        assert_eq!(modulation_for_mcs(16), Modulation::Qam16);
        assert_eq!(modulation_for_mcs(17), Modulation::Qam64);
        assert_eq!(itbs_for_mcs(9), 9);
        assert_eq!(itbs_for_mcs(10), 9);
        assert_eq!(itbs_for_mcs(16), 15);
        assert_eq!(itbs_for_mcs(17), 15);
        assert_eq!(itbs_for_mcs(28), 26);
    }

    #[test]
    fn efficiency_is_strictly_increasing() {
        for i in 0..MAX_ITBS {
            assert!(
                efficiency_for_itbs(i + 1) > efficiency_for_itbs(i),
                "I_TBS {} -> {}",
                i,
                i + 1
            );
        }
    }

    #[test]
    fn tbs_anchors_close_to_standard() {
        // (i_tbs, n_prb, standard_tbs_bits, tolerance_fraction)
        let anchors = [
            (26u8, 100u8, 75376u32, 0.03),
            (26, 50, 36696, 0.0),
            (15, 50, 15264, 0.0),
            (9, 50, 7992, 0.0),
            (0, 50, 1384, 0.0),
            (0, 1, 16, 0.75),
        ];
        for (itbs, n_prb, standard, tol) in anchors {
            let got = tbs_bits(itbs, n_prb);
            let err = (got as f64 - standard as f64).abs() / standard as f64;
            assert!(
                err <= tol,
                "I_TBS {itbs} x {n_prb} PRB: got {got}, standard {standard}, err {err:.3}"
            );
        }
    }

    #[test]
    fn tbs_monotonic_in_prb_and_itbs() {
        for itbs in 0..=MAX_ITBS {
            for prb in 1..50u8 {
                assert!(tbs_bits(itbs, prb + 1) >= tbs_bits(itbs, prb));
            }
        }
        for prb in [1u8, 10, 25, 50, 100] {
            for itbs in 0..MAX_ITBS {
                assert!(tbs_bits(itbs + 1, prb) >= tbs_bits(itbs, prb));
            }
        }
    }

    #[test]
    fn tbs_zero_prb_is_zero() {
        assert_eq!(tbs_bits(10, 0), 0);
    }

    #[test]
    fn tbs_byte_aligned() {
        for itbs in 0..=MAX_ITBS {
            for prb in [1u8, 7, 25, 50] {
                assert_eq!(tbs_bits(itbs, prb) % 8, 0);
            }
        }
    }

    #[test]
    fn peak_rate_10mhz_matches_paper_regime() {
        // MCS 28 over 50 PRB per TTI: should land in the 30-40 Mb/s range,
        // which after MAC/RLC overheads gives the ~25 Mb/s the paper sees.
        let per_tti = tbs_bits_for_mcs(28, 50);
        let mbps = per_tti as f64 * 1000.0 / 1e6;
        assert!((30.0..40.0).contains(&mbps), "{mbps} Mb/s");
    }
}
