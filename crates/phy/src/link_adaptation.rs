//! Link adaptation: SINR → CQI reporting and CQI → MCS selection.
//!
//! The scheduler's modulation-and-coding-scheme choice is central to two of
//! the paper's experiments: the control-channel-latency study (Fig. 9),
//! where stale CQI in the RIB leads to "wrong scheduling decisions (e.g.
//! due to a bad modulation and coding scheme choice)", and the MEC use
//! case, where CQI determines "the highest achievable throughput" of a UE.

use crate::tables::{efficiency_for_itbs, itbs_for_mcs, CQI_TABLE, MAX_MCS};

/// A wideband channel quality indicator, 0..=15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cqi(pub u8);

impl Cqi {
    pub const OUT_OF_RANGE: Cqi = Cqi(0);
    pub const MAX: Cqi = Cqi(15);

    /// Construct with range clamping (reports are 4-bit fields).
    pub fn new_clamped(v: u8) -> Self {
        Cqi(v.min(15))
    }

    /// The spectral efficiency this CQI reports as sustainable.
    pub fn efficiency(self) -> f64 {
        CQI_TABLE[self.0 as usize].efficiency
    }
}

/// A PDSCH modulation-and-coding-scheme index, 0..=28.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mcs(pub u8);

impl Mcs {
    pub const MIN: Mcs = Mcs(0);
    pub const MAX: Mcs = Mcs(MAX_MCS);

    pub fn new_clamped(v: u8) -> Self {
        Mcs(v.min(MAX_MCS))
    }

    /// The spectral efficiency the transport blocks of this MCS carry.
    pub fn efficiency(self) -> f64 {
        efficiency_for_itbs(itbs_for_mcs(self.0))
    }
}

/// SINR (dB) at which a UE would report each CQI, i.e. the ~10 % BLER
/// operating point of the CQI's modulation and code rate.
///
/// The spacing (~1.9 dB per CQI step across the table) follows the widely
/// used link-level calibration for AWGN channels.
const CQI_SINR_THRESHOLDS_DB: [f64; 16] = [
    f64::NEG_INFINITY, // CQI 0: below CQI 1's threshold
    -6.7,              // CQI 1
    -4.7,              // CQI 2
    -2.3,              // CQI 3
    0.2,               // CQI 4
    2.4,               // CQI 5
    4.3,               // CQI 6
    5.9,               // CQI 7
    8.1,               // CQI 8
    10.3,              // CQI 9
    11.7,              // CQI 10
    14.1,              // CQI 11
    16.3,              // CQI 12
    18.7,              // CQI 13
    21.0,              // CQI 14
    22.7,              // CQI 15
];

/// Minimum SINR (dB) at which `cqi` would be reported.
pub fn sinr_threshold_for_cqi(cqi: Cqi) -> f64 {
    CQI_SINR_THRESHOLDS_DB[cqi.0.min(15) as usize]
}

/// The CQI a UE reports for a measured SINR: the highest CQI whose
/// threshold the SINR meets.
pub fn cqi_from_sinr(sinr_db: f64) -> Cqi {
    let mut cqi = 0u8;
    for (i, thr) in CQI_SINR_THRESHOLDS_DB.iter().enumerate().skip(1) {
        if sinr_db >= *thr {
            cqi = i as u8;
        } else {
            break;
        }
    }
    Cqi(cqi)
}

/// Representative SINR (dB) for a reported CQI — the midpoint of the CQI's
/// SINR bin. Used when a channel process is specified directly in CQI terms
/// (e.g. the MEC experiment's emulated CQI fluctuations).
pub fn sinr_for_cqi(cqi: Cqi) -> f64 {
    let c = cqi.0.min(15) as usize;
    if c == 0 {
        return CQI_SINR_THRESHOLDS_DB[1] - 3.0;
    }
    if c == 15 {
        // Comfortably above the top threshold.
        return CQI_SINR_THRESHOLDS_DB[15] + 3.0;
    }
    (CQI_SINR_THRESHOLDS_DB[c] + CQI_SINR_THRESHOLDS_DB[c + 1]) / 2.0
}

/// SINR (dB) at which each MCS hits the ~10 % BLER operating point.
///
/// Spread linearly over the CQI table's SINR span (CQI 1's −6.7 dB at
/// MCS 0 up to CQI 15's 22.7 dB at MCS 28, ≈1.05 dB per MCS step), the
/// usual AWGN link-level calibration.
pub fn mcs_operating_sinr_db(mcs: Mcs) -> f64 {
    let lo = CQI_SINR_THRESHOLDS_DB[1];
    let hi = CQI_SINR_THRESHOLDS_DB[15];
    lo + (hi - lo) * mcs.0.min(MAX_MCS) as f64 / MAX_MCS as f64
}

/// The MCS a scheduler selects for a reported CQI: the highest MCS whose
/// operating point is no worse than the SINR the CQI attests to (the
/// standard outer-loop-free link adaptation rule). A block scheduled this
/// way is decodable at ≤ the target BLER when the report is fresh.
pub fn mcs_for_cqi(cqi: Cqi) -> Mcs {
    if cqi.0 == 0 {
        return Mcs(0);
    }
    let attested = sinr_threshold_for_cqi(cqi);
    let mut best = Mcs(0);
    for m in 0..=MAX_MCS {
        if mcs_operating_sinr_db(Mcs(m)) <= attested + 1e-9 {
            best = Mcs(m);
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqi_from_sinr_monotonic() {
        let mut prev = Cqi(0);
        let mut s = -10.0;
        while s < 30.0 {
            let c = cqi_from_sinr(s);
            assert!(c >= prev, "CQI decreased at {s} dB");
            prev = c;
            s += 0.25;
        }
        assert_eq!(prev, Cqi(15));
    }

    #[test]
    fn cqi_sinr_roundtrip() {
        for c in 1..=15u8 {
            let cqi = Cqi(c);
            assert_eq!(cqi_from_sinr(sinr_for_cqi(cqi)), cqi, "CQI {c}");
        }
    }

    #[test]
    fn out_of_range_below_first_threshold() {
        assert_eq!(cqi_from_sinr(-7.0), Cqi(0));
        assert_eq!(cqi_from_sinr(-6.7), Cqi(1));
    }

    #[test]
    fn mcs_for_cqi_monotonic_and_bounded() {
        let mut prev = Mcs(0);
        for c in 1..=15u8 {
            let m = mcs_for_cqi(Cqi(c));
            assert!(m >= prev);
            prev = m;
        }
        assert_eq!(mcs_for_cqi(Cqi(15)), Mcs::MAX);
        assert_eq!(mcs_for_cqi(Cqi(0)), Mcs(0));
        assert_eq!(mcs_for_cqi(Cqi(1)), Mcs(0));
    }

    #[test]
    fn mcs_operating_point_never_exceeds_attested_sinr() {
        // The link-adaptation invariant: a block scheduled per the rule is
        // decodable at the SINR the report attests to.
        for c in 1..=15u8 {
            let m = mcs_for_cqi(Cqi(c));
            assert!(
                mcs_operating_sinr_db(m) <= sinr_threshold_for_cqi(Cqi(c)) + 1e-9,
                "CQI {c}"
            );
        }
    }

    #[test]
    fn mcs_operating_sinr_spans_cqi_range() {
        assert!((mcs_operating_sinr_db(Mcs(0)) - (-6.7)).abs() < 1e-9);
        assert!((mcs_operating_sinr_db(Mcs(28)) - 22.7).abs() < 1e-9);
        for m in 0..28u8 {
            assert!(mcs_operating_sinr_db(Mcs(m + 1)) > mcs_operating_sinr_db(Mcs(m)));
        }
    }

    #[test]
    fn clamping() {
        assert_eq!(Cqi::new_clamped(99), Cqi(15));
        assert_eq!(Mcs::new_clamped(99), Mcs(28));
    }
}
