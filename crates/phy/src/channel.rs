//! Per-UE channel processes.
//!
//! A [`ChannelProcess`] produces the instantaneous SINR a UE experiences at
//! each TTI. The implementations cover every channel the paper's
//! experiments need:
//!
//! * [`FixedSinr`] / [`FixedCqi`] — the Table 2 measurements ("various
//!   fixed CQI values").
//! * [`CqiSquareWave`] — the MEC experiment's emulated CQI fluctuation
//!   (CQI 3↔2 and 10↔4 toggles).
//! * [`TraceChannel`] — replay of an arbitrary SINR trace.
//! * [`GaussMarkovFading`] — an AR(1) shadow-fading process around a mean,
//!   giving the time-varying channel that makes stale CQI costly (Fig. 9).

use flexran_types::time::Tti;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::link_adaptation::{sinr_for_cqi, Cqi};

/// A source of per-TTI SINR samples for one UE.
pub trait ChannelProcess: Send {
    /// SINR in dB at `tti`. Implementations may assume `tti` is
    /// non-decreasing across calls.
    fn sinr_db(&mut self, tti: Tti) -> f64;
}

/// Constant SINR.
#[derive(Debug, Clone, Copy)]
pub struct FixedSinr(pub f64);

impl ChannelProcess for FixedSinr {
    fn sinr_db(&mut self, _tti: Tti) -> f64 {
        self.0
    }
}

/// Constant channel specified by the CQI the UE should report.
#[derive(Debug, Clone, Copy)]
pub struct FixedCqi(pub Cqi);

impl ChannelProcess for FixedCqi {
    fn sinr_db(&mut self, _tti: Tti) -> f64 {
        sinr_for_cqi(self.0)
    }
}

/// Alternates between two CQI levels with a fixed period, starting on
/// `high`. Used by the MEC/DASH experiment to emulate channel-quality
/// fluctuation reproducibly.
#[derive(Debug, Clone, Copy)]
pub struct CqiSquareWave {
    pub high: Cqi,
    pub low: Cqi,
    /// Half-period: TTIs spent at each level.
    pub half_period: u64,
    /// Phase offset in TTIs.
    pub phase: u64,
}

impl CqiSquareWave {
    pub fn new(high: Cqi, low: Cqi, half_period_ms: u64) -> Self {
        CqiSquareWave {
            high,
            low,
            half_period: half_period_ms.max(1),
            phase: 0,
        }
    }

    /// The CQI level active at `tti`.
    pub fn level_at(&self, tti: Tti) -> Cqi {
        let phase = (tti.0 + self.phase) / self.half_period;
        if phase.is_multiple_of(2) {
            self.high
        } else {
            self.low
        }
    }
}

impl ChannelProcess for CqiSquareWave {
    fn sinr_db(&mut self, tti: Tti) -> f64 {
        sinr_for_cqi(self.level_at(tti))
    }
}

/// Replays a fixed SINR trace, holding each sample for `sample_ttis` and
/// looping at the end.
#[derive(Debug, Clone)]
pub struct TraceChannel {
    samples_db: Vec<f64>,
    sample_ttis: u64,
}

impl TraceChannel {
    /// `samples_db` must be non-empty; each sample is held for
    /// `sample_ttis` TTIs.
    pub fn new(samples_db: Vec<f64>, sample_ttis: u64) -> flexran_types::Result<Self> {
        if samples_db.is_empty() {
            return Err(flexran_types::FlexError::InvalidConfig(
                "channel trace must be non-empty".into(),
            ));
        }
        Ok(TraceChannel {
            samples_db,
            sample_ttis: sample_ttis.max(1),
        })
    }
}

impl ChannelProcess for TraceChannel {
    fn sinr_db(&mut self, tti: Tti) -> f64 {
        let idx = (tti.0 / self.sample_ttis) as usize % self.samples_db.len();
        self.samples_db[idx]
    }
}

/// First-order Gauss–Markov (AR(1)) fading around a mean SINR:
///
/// `x[t+1] = mean + rho * (x[t] - mean) + sqrt(1-rho^2) * sigma * N(0,1)`
///
/// `rho` close to 1 gives slowly varying shadowing whose decorrelation time
/// determines how quickly a stale CQI report becomes wrong — the knob
/// behind the throughput decay across Fig. 9's upper triangle.
#[derive(Debug)]
pub struct GaussMarkovFading {
    pub mean_db: f64,
    pub sigma_db: f64,
    pub rho: f64,
    state_db: f64,
    last_tti: Option<Tti>,
    rng: StdRng,
}

impl GaussMarkovFading {
    pub fn new(mean_db: f64, sigma_db: f64, rho: f64, seed: u64) -> Self {
        GaussMarkovFading {
            mean_db,
            sigma_db,
            rho: rho.clamp(0.0, 1.0),
            state_db: mean_db,
            last_tti: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A standard-normal draw via Box–Muller (keeps `rand_distr` out of the
    /// dependency set).
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn step_once(&mut self) {
        let innovation = (1.0 - self.rho * self.rho).sqrt() * self.sigma_db;
        let n = self.standard_normal();
        self.state_db = self.mean_db + self.rho * (self.state_db - self.mean_db) + innovation * n;
    }
}

impl ChannelProcess for GaussMarkovFading {
    fn sinr_db(&mut self, tti: Tti) -> f64 {
        // Advance the process once per elapsed TTI (capped so a long jump
        // does not spin; beyond ~5 decorrelation times the state is
        // independent anyway).
        let steps = match self.last_tti {
            None => 1,
            Some(prev) => tti.saturating_since(prev).min(256),
        };
        for _ in 0..steps.max(1) {
            self.step_once();
        }
        self.last_tti = Some(tti);
        self.state_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link_adaptation::cqi_from_sinr;

    #[test]
    fn fixed_cqi_reports_itself() {
        for c in 1..=15u8 {
            let mut ch = FixedCqi(Cqi(c));
            assert_eq!(cqi_from_sinr(ch.sinr_db(Tti(0))), Cqi(c));
        }
    }

    #[test]
    fn square_wave_alternates_with_period() {
        let mut ch = CqiSquareWave::new(Cqi(10), Cqi(4), 100);
        assert_eq!(cqi_from_sinr(ch.sinr_db(Tti(0))), Cqi(10));
        assert_eq!(cqi_from_sinr(ch.sinr_db(Tti(99))), Cqi(10));
        assert_eq!(cqi_from_sinr(ch.sinr_db(Tti(100))), Cqi(4));
        assert_eq!(cqi_from_sinr(ch.sinr_db(Tti(199))), Cqi(4));
        assert_eq!(cqi_from_sinr(ch.sinr_db(Tti(200))), Cqi(10));
    }

    #[test]
    fn trace_loops() {
        let mut ch = TraceChannel::new(vec![0.0, 10.0, 20.0], 2).unwrap();
        assert_eq!(ch.sinr_db(Tti(0)), 0.0);
        assert_eq!(ch.sinr_db(Tti(1)), 0.0);
        assert_eq!(ch.sinr_db(Tti(2)), 10.0);
        assert_eq!(ch.sinr_db(Tti(5)), 20.0);
        assert_eq!(ch.sinr_db(Tti(6)), 0.0);
        assert!(TraceChannel::new(vec![], 1).is_err());
    }

    #[test]
    fn gauss_markov_is_deterministic_per_seed() {
        let mut a = GaussMarkovFading::new(10.0, 3.0, 0.99, 7);
        let mut b = GaussMarkovFading::new(10.0, 3.0, 0.99, 7);
        for t in 0..100 {
            assert_eq!(a.sinr_db(Tti(t)), b.sinr_db(Tti(t)));
        }
    }

    #[test]
    fn gauss_markov_stays_near_mean() {
        let mut ch = GaussMarkovFading::new(12.0, 3.0, 0.98, 42);
        let n = 20_000u64;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for t in 0..n {
            let s = ch.sinr_db(Tti(t));
            sum += s;
            min = min.min(s);
            max = max.max(s);
        }
        let mean = sum / n as f64;
        assert!((mean - 12.0).abs() < 1.0, "empirical mean {mean}");
        assert!(max - min > 2.0, "process should actually vary");
    }

    #[test]
    fn gauss_markov_decorrelates() {
        // With rho=0.99 the state 1 TTI later is close; 500 TTIs later the
        // correlation should have mostly washed out (statistically).
        let mut ch = GaussMarkovFading::new(0.0, 3.0, 0.99, 9);
        let s0 = ch.sinr_db(Tti(0));
        let s1 = ch.sinr_db(Tti(1));
        assert!((s1 - s0).abs() < 3.0);
        let far = ch.sinr_db(Tti(2000));
        // Not a strict test of independence, just that it moved.
        assert!((far - s0).abs() > 1e-6);
    }
}
