//! UE mobility models.
//!
//! The mobility-management use case (paper §7.1) needs UEs whose serving
//! signal degrades over time so the controller's handover application has
//! something to react to. These models drive [`crate::geometry::Position`]
//! updates at a configurable tick.

use flexran_types::time::Tti;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::geometry::Position;

/// A mobility model updating a UE position over time.
pub trait MobilityModel: Send {
    /// Position at `tti`.
    fn position(&mut self, tti: Tti) -> Position;
}

/// A UE that never moves.
#[derive(Debug, Clone, Copy)]
pub struct Stationary(pub Position);

impl MobilityModel for Stationary {
    fn position(&mut self, _tti: Tti) -> Position {
        self.0
    }
}

/// Straight-line motion at constant speed from a start point along a
/// heading (radians).
#[derive(Debug, Clone, Copy)]
pub struct LinearMotion {
    pub start: Position,
    pub speed_mps: f64,
    pub heading_rad: f64,
}

impl MobilityModel for LinearMotion {
    fn position(&mut self, tti: Tti) -> Position {
        let t_s = tti.as_secs_f64();
        Position::new(
            self.start.x + self.speed_mps * t_s * self.heading_rad.cos(),
            self.start.y + self.speed_mps * t_s * self.heading_rad.sin(),
        )
    }
}

/// Random-waypoint motion inside a rectangular region: pick a waypoint
/// uniformly, walk to it at the configured speed, repeat.
#[derive(Debug)]
pub struct RandomWaypoint {
    region_min: Position,
    region_max: Position,
    speed_mps: f64,
    current: Position,
    waypoint: Position,
    last_tti: Tti,
    rng: StdRng,
}

impl RandomWaypoint {
    pub fn new(
        region_min: Position,
        region_max: Position,
        speed_mps: f64,
        seed: u64,
    ) -> flexran_types::Result<Self> {
        if region_max.x <= region_min.x || region_max.y <= region_min.y {
            return Err(flexran_types::FlexError::InvalidConfig(
                "random-waypoint region must have positive area".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let draw = |min: f64, max: f64, rng: &mut StdRng| min + rng.random::<f64>() * (max - min);
        let current = Position::new(
            draw(region_min.x, region_max.x, &mut rng),
            draw(region_min.y, region_max.y, &mut rng),
        );
        let waypoint = Position::new(
            draw(region_min.x, region_max.x, &mut rng),
            draw(region_min.y, region_max.y, &mut rng),
        );
        Ok(RandomWaypoint {
            region_min,
            region_max,
            speed_mps,
            current,
            waypoint,
            last_tti: Tti::ZERO,
            rng,
        })
    }

    fn pick_waypoint(&mut self) {
        self.waypoint = Position::new(
            self.region_min.x + self.rng.random::<f64>() * (self.region_max.x - self.region_min.x),
            self.region_min.y + self.rng.random::<f64>() * (self.region_max.y - self.region_min.y),
        );
    }
}

impl MobilityModel for RandomWaypoint {
    fn position(&mut self, tti: Tti) -> Position {
        let elapsed_s = tti.saturating_since(self.last_tti) as f64 / 1000.0;
        self.last_tti = tti;
        let mut budget = self.speed_mps * elapsed_s;
        while budget > 0.0 {
            let d = self.current.distance_to(self.waypoint);
            if d <= budget {
                self.current = self.waypoint;
                budget -= d;
                self.pick_waypoint();
                if d == 0.0 {
                    break;
                }
            } else {
                let f = budget / d;
                self.current = Position::new(
                    self.current.x + (self.waypoint.x - self.current.x) * f,
                    self.current.y + (self.waypoint.y - self.current.y) * f,
                );
                budget = 0.0;
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let mut m = Stationary(Position::new(5.0, 5.0));
        assert_eq!(m.position(Tti(0)), m.position(Tti(100_000)));
    }

    #[test]
    fn linear_motion_covers_expected_distance() {
        let mut m = LinearMotion {
            start: Position::new(0.0, 0.0),
            speed_mps: 10.0,
            heading_rad: 0.0,
        };
        let p = m.position(Tti(5000)); // 5 s at 10 m/s
        assert!((p.x - 50.0).abs() < 1e-9);
        assert!(p.y.abs() < 1e-9);
    }

    #[test]
    fn random_waypoint_stays_in_region() {
        let min = Position::new(0.0, 0.0);
        let max = Position::new(100.0, 100.0);
        let mut m = RandomWaypoint::new(min, max, 30.0, 3).unwrap();
        for t in (0..60_000).step_by(100) {
            let p = m.position(Tti(t));
            assert!(p.x >= -1e-9 && p.x <= 100.0 + 1e-9);
            assert!(p.y >= -1e-9 && p.y <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn random_waypoint_respects_speed() {
        let mut m = RandomWaypoint::new(
            Position::new(0.0, 0.0),
            Position::new(1000.0, 1000.0),
            10.0,
            4,
        )
        .unwrap();
        let mut prev = m.position(Tti(0));
        for t in (100..10_000).step_by(100) {
            let p = m.position(Tti(t));
            // 100 ms at 10 m/s = at most 1 m (+ epsilon).
            assert!(prev.distance_to(p) <= 1.0 + 1e-6);
            prev = p;
        }
    }

    #[test]
    fn degenerate_region_rejected() {
        assert!(
            RandomWaypoint::new(Position::new(0.0, 0.0), Position::new(0.0, 10.0), 1.0, 1).is_err()
        );
    }
}
