#![forbid(unsafe_code)]
//! # flexran-phy
//!
//! The physical-layer abstraction underneath the FlexRAN data plane.
//!
//! The paper runs its scalability experiments with OAI's PHY *abstracted*
//! ("operations occurring above the PHY were unaffected by the emulation");
//! this crate is the equivalent abstraction, built from scratch:
//!
//! * [`tables`] — 3GPP TS 36.213-style lookup tables: the exact CQI table
//!   (7.2.3-1), the exact MCS → modulation/I_TBS mapping (7.1.7.1-1), and a
//!   transport-block-size function constructed from the standard's
//!   spectral-efficiency targets (anchored against known table values).
//! * [`link_adaptation`] — CQI → MCS selection and SINR → CQI reporting.
//! * [`bler`] — a block-error-rate model per MCS as a function of SINR.
//! * [`geometry`] — positions, path loss, shadowing, thermal noise, and
//!   multi-cell SINR computation (this is what makes the eICIC use case
//!   meaningful: a small-cell UE's SINR depends on whether the macro cell
//!   is transmitting in the same subframe).
//! * [`channel`] — per-UE channel processes: fixed, square-wave (the MEC
//!   use case's emulated CQI fluctuation), trace-driven, and AR(1) fading.
//! * [`mobility`] — simple mobility models feeding the geometry.

pub mod bler;
pub mod channel;
pub mod geometry;
pub mod link_adaptation;
pub mod mobility;
pub mod tables;

pub use bler::BlerModel;
pub use channel::{
    ChannelProcess, CqiSquareWave, FixedCqi, FixedSinr, GaussMarkovFading, TraceChannel,
};
pub use geometry::{Environment, PathLossModel, Position};
pub use link_adaptation::{cqi_from_sinr, mcs_for_cqi, sinr_threshold_for_cqi, Cqi, Mcs};
pub use tables::{
    itbs_for_mcs, modulation_for_mcs, tbs_bits, CqiTableEntry, Modulation, CQI_TABLE,
};
