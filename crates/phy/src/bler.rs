//! Block-error-rate model.
//!
//! Transport blocks scheduled with an MCS whose operating point exceeds the
//! instantaneous SINR fail with increasing probability; HARQ then triggers
//! retransmissions. This is the mechanism through which *stale* CQI (Fig. 9:
//! high control-channel RTT → outdated RIB → over-aggressive MCS) costs
//! throughput.

use crate::link_adaptation::{cqi_from_sinr, mcs_for_cqi, mcs_operating_sinr_db, Mcs};

/// A per-MCS waterfall BLER curve.
///
/// Modeled as a logistic in SINR around the MCS's ~10 % BLER operating
/// point, with the waterfall steepness typical of turbo-coded LTE blocks
/// (a couple of dB from BLER≈0.9 to BLER≈0.01).
#[derive(Debug, Clone, Copy)]
pub struct BlerModel {
    /// Logistic steepness in 1/dB. Larger = sharper waterfall.
    pub steepness: f64,
    /// BLER at the exact operating point (standard link adaptation targets
    /// 10 %).
    pub target_bler: f64,
}

impl Default for BlerModel {
    fn default() -> Self {
        BlerModel {
            steepness: 1.6,
            target_bler: 0.1,
        }
    }
}

impl BlerModel {
    /// The SINR operating point (dB) of an MCS (its ~10 % BLER point).
    pub fn operating_point_db(mcs: Mcs) -> f64 {
        mcs_operating_sinr_db(mcs)
    }

    /// Block error probability for a transport block sent with `mcs` while
    /// the channel is at `sinr_db`.
    pub fn bler(&self, mcs: Mcs, sinr_db: f64) -> f64 {
        let op = Self::operating_point_db(mcs);
        // Logistic anchored so bler(op) == target_bler.
        let x0 = op - (1.0 / self.steepness) * ((1.0 - self.target_bler) / self.target_bler).ln();
        1.0 / (1.0 + ((sinr_db - x0) * self.steepness).exp())
    }

    /// Convenience: whether a transmission succeeds, given a uniform draw
    /// in `[0,1)`.
    pub fn success(&self, mcs: Mcs, sinr_db: f64, uniform_draw: f64) -> bool {
        uniform_draw >= self.bler(mcs, sinr_db)
    }
}

/// BLER when the scheduler follows the standard rule at a *fresh* CQI:
/// by construction this sits at or below the target BLER.
pub fn bler_at_fresh_cqi(model: &BlerModel, sinr_db: f64) -> f64 {
    let cqi = cqi_from_sinr(sinr_db);
    let mcs = mcs_for_cqi(cqi);
    model.bler(mcs, sinr_db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link_adaptation::Cqi;

    #[test]
    fn bler_decreases_with_sinr() {
        let m = BlerModel::default();
        let mut prev = 1.0;
        let mut s = -10.0;
        while s <= 30.0 {
            let b = m.bler(Mcs(15), s);
            assert!(b <= prev + 1e-12);
            prev = b;
            s += 0.5;
        }
    }

    #[test]
    fn bler_increases_with_mcs_at_fixed_sinr() {
        let m = BlerModel::default();
        for mcs in 0..28u8 {
            assert!(
                m.bler(Mcs(mcs + 1), 10.0) >= m.bler(Mcs(mcs), 10.0) - 1e-12,
                "MCS {mcs}"
            );
        }
    }

    #[test]
    fn operating_point_hits_target() {
        let m = BlerModel::default();
        for mcs in [Mcs(0), Mcs(5), Mcs(10), Mcs(20), Mcs(28)] {
            let op = BlerModel::operating_point_db(mcs);
            let b = m.bler(mcs, op);
            assert!((b - m.target_bler).abs() < 1e-6, "MCS {mcs:?}: {b}");
        }
    }

    #[test]
    fn fresh_cqi_meets_target() {
        let m = BlerModel::default();
        for c in 1..=15u8 {
            let s = crate::link_adaptation::sinr_for_cqi(Cqi(c));
            let b = bler_at_fresh_cqi(&m, s);
            assert!(b <= m.target_bler + 1e-6, "CQI {c}: BLER {b}");
        }
    }

    #[test]
    fn stale_overshoot_is_punished() {
        // Channel dropped from CQI 10 to CQI 4 but the scheduler still uses
        // the CQI-10 MCS: the block should almost surely fail.
        let m = BlerModel::default();
        let stale_mcs = mcs_for_cqi(Cqi(10));
        let actual_sinr = crate::link_adaptation::sinr_for_cqi(Cqi(4));
        assert!(m.bler(stale_mcs, actual_sinr) > 0.95);
    }
}
