//! Radio geometry: positions, path loss, noise, and multi-cell SINR.
//!
//! The interference-management use case (paper §6.1) hinges on the SINR of
//! a small-cell UE improving when the macro cell is muted during an
//! almost-blank subframe. [`Environment::sinr_db`] computes per-subframe
//! SINR from the set of cells actually transmitting, which is exactly the
//! coupling the eICIC experiment needs.

use flexran_types::units::{Db, Dbm};

/// A point in a 2-D deployment plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    pub x: f64,
    pub y: f64,
}

impl Position {
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Distance-dependent path-loss models.
#[derive(Debug, Clone, Copy)]
pub enum PathLossModel {
    /// 3GPP TR 36.814 macro-cell NLOS model:
    /// `PL(dB) = 128.1 + 37.6 log10(d_km)`.
    UrbanMacro,
    /// 3GPP TR 36.814 pico/small-cell model:
    /// `PL(dB) = 140.7 + 36.7 log10(d_km)`.
    SmallCell,
    /// Free-space path loss at 850 MHz (band 5).
    FreeSpace,
}

impl PathLossModel {
    /// Path loss in dB at distance `d` metres (clamped to ≥ 10 m so the
    /// near field does not produce absurd gains).
    pub fn loss_db(self, d_m: f64) -> Db {
        let d_km = (d_m.max(10.0)) / 1000.0;
        let db = match self {
            PathLossModel::UrbanMacro => 128.1 + 37.6 * d_km.log10(),
            PathLossModel::SmallCell => 140.7 + 36.7 * d_km.log10(),
            PathLossModel::FreeSpace => {
                // FSPL = 20 log10(d_m) + 20 log10(f_MHz) - 27.55, f = 850.
                20.0 * d_m.max(10.0).log10() + 20.0 * 850f64.log10() - 27.55
            }
        };
        Db(db)
    }
}

/// Thermal noise power over `bandwidth_hz` at a 9 dB UE noise figure.
pub fn noise_power_dbm(bandwidth_hz: u64) -> Dbm {
    // -174 dBm/Hz + 10 log10(BW) + NF.
    Dbm(-174.0 + 10.0 * (bandwidth_hz as f64).log10() + 9.0)
}

/// One transmitter the environment knows about.
#[derive(Debug, Clone, Copy)]
pub struct TxSite {
    pub position: Position,
    pub tx_power: Dbm,
    pub path_loss: PathLossModel,
}

/// A static radio environment: a set of transmitter sites and a noise
/// floor. SINR is evaluated per subframe against whichever subset of sites
/// is transmitting in that subframe.
#[derive(Debug, Clone)]
pub struct Environment {
    sites: Vec<TxSite>,
    noise_dbm: Dbm,
}

impl Environment {
    /// Environment over `bandwidth_hz` with no sites yet.
    pub fn new(bandwidth_hz: u64) -> Self {
        Environment {
            sites: Vec::new(),
            noise_dbm: noise_power_dbm(bandwidth_hz),
        }
    }

    /// Add a transmitter site, returning its index (used as the cell key in
    /// [`Environment::sinr_db`]).
    pub fn add_site(&mut self, site: TxSite) -> usize {
        self.sites.push(site);
        self.sites.len() - 1
    }

    pub fn site(&self, idx: usize) -> Option<&TxSite> {
        self.sites.get(idx)
    }

    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Received power at `ue_pos` from site `idx` (no fast fading).
    pub fn rx_power_dbm(&self, idx: usize, ue_pos: Position) -> Dbm {
        let s = &self.sites[idx];
        s.tx_power - s.path_loss.loss_db(s.position.distance_to(ue_pos))
    }

    /// Reference-signal received power proxy used by measurement reports.
    pub fn rsrp_dbm(&self, idx: usize, ue_pos: Position) -> Dbm {
        self.rx_power_dbm(idx, ue_pos)
    }

    /// SINR (dB) at a UE served by `serving`, with `active` listing the
    /// site indices transmitting in this subframe (the serving site is
    /// counted as signal whether or not it appears in `active`; all other
    /// active sites are interference).
    pub fn sinr_db(&self, serving: usize, ue_pos: Position, active: &[usize]) -> f64 {
        let signal_mw = self.rx_power_dbm(serving, ue_pos).to_mw();
        let mut denom_mw = self.noise_dbm.to_mw();
        for &i in active {
            if i != serving && i < self.sites.len() {
                denom_mw += self.rx_power_dbm(i, ue_pos).to_mw();
            }
        }
        10.0 * (signal_mw / denom_mw).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_macro_small() -> (Environment, usize, usize) {
        let mut env = Environment::new(10_000_000);
        let macro_ = env.add_site(TxSite {
            position: Position::new(0.0, 0.0),
            tx_power: Dbm(43.0),
            path_loss: PathLossModel::UrbanMacro,
        });
        let small = env.add_site(TxSite {
            position: Position::new(400.0, 0.0),
            tx_power: Dbm(30.0),
            path_loss: PathLossModel::SmallCell,
        });
        (env, macro_, small)
    }

    #[test]
    fn pathloss_increases_with_distance() {
        for m in [
            PathLossModel::UrbanMacro,
            PathLossModel::SmallCell,
            PathLossModel::FreeSpace,
        ] {
            assert!(m.loss_db(1000.0).0 > m.loss_db(100.0).0);
            // Near-field clamp.
            assert_eq!(m.loss_db(1.0).0, m.loss_db(10.0).0);
        }
    }

    #[test]
    fn noise_scales_with_bandwidth() {
        let n10 = noise_power_dbm(10_000_000);
        let n20 = noise_power_dbm(20_000_000);
        assert!((n20.0 - n10.0 - 3.0103).abs() < 0.01);
        // 10 MHz: -174 + 70 + 9 = -95 dBm.
        assert!((n10.0 - (-95.0)).abs() < 0.01);
    }

    #[test]
    fn muting_the_macro_raises_small_cell_ue_sinr() {
        // The eICIC premise: a UE near the small cell sees much better SINR
        // in an almost-blank subframe (macro silent).
        let (env, macro_, small) = env_macro_small();
        let ue = Position::new(420.0, 0.0); // 20 m from small cell
        let with_macro = env.sinr_db(small, ue, &[macro_, small]);
        let abs_subframe = env.sinr_db(small, ue, &[small]);
        assert!(
            abs_subframe > with_macro + 5.0,
            "ABS {abs_subframe:.1} dB vs non-ABS {with_macro:.1} dB"
        );
    }

    #[test]
    fn serving_site_never_self_interferes() {
        let (env, macro_, _) = env_macro_small();
        let ue = Position::new(100.0, 0.0);
        let a = env.sinr_db(macro_, ue, &[]);
        let b = env.sinr_db(macro_, ue, &[macro_]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn closer_ue_gets_better_sinr() {
        let (env, macro_, small) = env_macro_small();
        let near = env.sinr_db(macro_, Position::new(50.0, 0.0), &[small]);
        let far = env.sinr_db(macro_, Position::new(350.0, 0.0), &[small]);
        assert!(near > far);
    }

    #[test]
    fn rsrp_ordering_flips_between_cells() {
        let (env, macro_, small) = env_macro_small();
        let near_macro = Position::new(50.0, 0.0);
        let near_small = Position::new(398.0, 0.0);
        assert!(env.rsrp_dbm(macro_, near_macro).0 > env.rsrp_dbm(small, near_macro).0);
        assert!(env.rsrp_dbm(small, near_small).0 > env.rsrp_dbm(macro_, near_small).0);
    }
}
