//! Property tests for the failover state machine (`LivenessTracker`).
//!
//! Each case builds a randomized outage schedule — alternating healthy,
//! silent and lossy/reordering segments — and drives the tracker through
//! it TTI by TTI the way `FlexranAgent` does (drain rx, then tick). The
//! invariants hold for *any* schedule:
//!
//! 1. the tracker never panics and its counters stay consistent,
//! 2. the fallback-activation edge fires exactly once per `LocalControl`
//!    entry (no double pointer-swap at the VSF registry),
//! 3. once the channel heals for good, the tracker converges back to
//!    `Connected` within a bounded number of TTIs.

use flexran_agent::{FailoverState, LivenessConfig, LivenessTracker};
use flexran_types::time::Tti;
use proptest::collection::vec;
use proptest::prelude::*;

/// What the master-side channel does during one segment of the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Delivers traffic (and probe acks) every TTI.
    Healthy,
    /// Total silence: a partition or a crashed master.
    Silent,
    /// Drops ~half the deliveries and acks out of order, including
    /// stale pre-outage sequence numbers.
    Lossy,
}

fn phase(kind: u8) -> Phase {
    match kind % 3 {
        0 => Phase::Healthy,
        1 => Phase::Silent,
        _ => Phase::Lossy,
    }
}

/// Small deterministic generator for per-TTI loss/reorder decisions, so a
/// failing case is reproducible from the strategy inputs alone.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// Drive a tracker through `segments`, returning it together with the
/// number of `entered_local_control` edges observed.
fn run_schedule(
    tracker: &mut LivenessTracker,
    segments: &[(u8, u64)],
    seed: u64,
    start: u64,
) -> (u64, u64) {
    let mut rng = XorShift(seed);
    let mut pending_acks: Vec<u64> = Vec::new();
    let mut activations = 0u64;
    let mut now = start;
    for &(kind, len) in segments {
        let p = phase(kind);
        for _ in 0..len {
            // Drain the channel first, exactly like the agent's phase_a.
            match p {
                Phase::Healthy => {
                    tracker.on_rx(Tti(now));
                    for seq in pending_acks.drain(..) {
                        tracker.on_ack(seq);
                    }
                }
                Phase::Silent => {}
                Phase::Lossy => {
                    if rng.chance(50) {
                        tracker.on_rx(Tti(now));
                    }
                    if !pending_acks.is_empty() && rng.chance(60) {
                        // Deliver an arbitrary pending ack (reordering),
                        // or drop it outright.
                        let i = (rng.next() as usize) % pending_acks.len();
                        let seq = pending_acks.swap_remove(i);
                        if rng.chance(70) {
                            tracker.on_ack(seq);
                        }
                    }
                }
            }
            let out = tracker.tick(Tti(now));
            if out.entered_local_control {
                activations += 1;
                assert_eq!(
                    tracker.state(),
                    FailoverState::LocalControl,
                    "the activation edge must land in LocalControl"
                );
            }
            if let Some(seq) = out.probe {
                pending_acks.push(seq);
            }
            now += 1;
        }
    }
    (activations, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariants 1 + 2: for any loss/reorder/partition schedule the
    /// tracker never panics, activates the fallback exactly once per
    /// `LocalControl` entry, and never completes more rejoins than it
    /// had failovers.
    #[test]
    fn random_schedules_never_double_activate(
        period in 1u64..20,
        timeout in 5u64..80,
        degraded in 0u64..80,
        seed in 1u64..u64::MAX,
        segments in vec((0u8..3, 1u64..120), 1..8),
    ) {
        let mut tracker = LivenessTracker::new(LivenessConfig {
            heartbeat_period: period,
            liveness_timeout: timeout,
            degraded_after: degraded,
            ..LivenessConfig::default()
        });
        let (activations, _) = run_schedule(&mut tracker, &segments, seed, 0);
        let c = tracker.counters();
        prop_assert_eq!(activations, c.failovers);
        prop_assert!(c.rejoins <= c.failovers + 1);
        prop_assert!(c.acks_received <= c.heartbeats_sent);
        // `Connected` with zero silence is only reachable legitimately.
        if tracker.state() == FailoverState::Connected && c.failovers > 0 {
            prop_assert!(c.rejoins > 0 || c.failovers == activations);
        }
    }

    /// Invariant 3: whatever state the schedule leaves the tracker in, a
    /// healed channel (traffic + acks every TTI) brings it back to
    /// `Connected` within one heartbeat period plus one round trip.
    #[test]
    fn healed_channel_converges_to_connected(
        period in 1u64..20,
        timeout in 5u64..80,
        seed in 1u64..u64::MAX,
        segments in vec((0u8..3, 1u64..120), 1..8),
    ) {
        let mut tracker = LivenessTracker::new(LivenessConfig {
            heartbeat_period: period,
            liveness_timeout: timeout,
            ..LivenessConfig::default()
        });
        let (_, mut now) = run_schedule(&mut tracker, &segments, seed, 0);
        // Heal: deliver traffic and same-TTI acks for every probe. The
        // tracker needs at most one period for a fresh probe to go out
        // and (here, instantly) come back confirmed.
        let deadline = now + period + 2;
        while now <= deadline {
            tracker.on_rx(Tti(now));
            let out = tracker.tick(Tti(now));
            prop_assert!(
                !out.entered_local_control,
                "no failover may fire while the channel delivers every TTI"
            );
            if let Some(seq) = out.probe {
                tracker.on_ack(seq);
            }
            now += 1;
        }
        prop_assert_eq!(tracker.state(), FailoverState::Connected);
    }

    /// A pure-silence schedule fails over exactly once, at the configured
    /// timeout, regardless of the probe period.
    #[test]
    fn pure_silence_fails_over_exactly_at_timeout(
        period in 1u64..20,
        timeout in 5u64..80,
    ) {
        let mut tracker = LivenessTracker::new(LivenessConfig {
            heartbeat_period: period,
            liveness_timeout: timeout,
            ..LivenessConfig::default()
        });
        let mut entered_at = None;
        for now in 0..timeout + 50 {
            if tracker.tick(Tti(now)).entered_local_control {
                prop_assert!(entered_at.is_none(), "second activation without rx");
                entered_at = Some(now);
            }
        }
        prop_assert_eq!(entered_at, Some(timeout));
        prop_assert_eq!(tracker.counters().failovers, 1);
    }
}
