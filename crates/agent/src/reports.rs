//! The Reports & Events manager (paper §4.3.1).
//!
//! The master registers asynchronous statistics requests; the manager
//! produces the replies at the right moments:
//!
//! * **one-off** — a single reply to the request,
//! * **periodic** — every `period` TTIs ("using the TTI as a time
//!   reference for the length of the interval"),
//! * **triggered** — "sent by the agent aperiodically and only when there
//!   is a change in the contents of the requested report".

use flexran_proto::messages::stats::{ReportConfig, ReportType, StatsReply, UeReport};
use flexran_proto::messages::CellReport;
use flexran_proto::wire::WireWriter;
use flexran_stack::enb::Enb;
use flexran_types::time::Tti;

#[derive(Debug)]
struct Subscription {
    xid: u32,
    config: ReportConfig,
    last_sent: Option<Tti>,
    last_hash: u64,
    done: bool,
}

/// Registered statistics subscriptions for one agent.
///
/// The tick path is delta-aware and allocation-free in steady state: the
/// candidate reply and the hash encoding live in reusable buffers, and
/// heap traffic only happens when a report actually fires (the reply is
/// handed to the caller by `mem::take`).
#[derive(Debug, Default)]
pub struct ReportsManager {
    subs: Vec<Subscription>,
    /// Reusable reply — refilled in place each tick a subscription looks.
    reply_buf: StatsReply,
    /// Reusable encode buffer for content hashing.
    hash_buf: WireWriter,
}

fn fnv(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Compose a statistics reply for the whole eNodeB.
pub fn compose_reply(enb: &Enb, tti: Tti, config: ReportConfig) -> StatsReply {
    let mut reply = StatsReply::default();
    compose_reply_into(enb, tti, config, &mut reply);
    reply
}

/// In-place variant of [`compose_reply`]: refills `reply`, reusing its
/// `cells`/`ues` buffers.
pub fn compose_reply_into(enb: &Enb, tti: Tti, config: ReportConfig, reply: &mut StatsReply) {
    reply.enb_id = enb.config().enb_id;
    reply.tti = tti.0;
    reply.cells.clear();
    reply.ues.clear();
    for ci in 0..enb.n_cells() {
        let cell = enb.cell_id_at(ci);
        let Ok(stats) = enb.cell_stats(cell) else {
            continue; // cell ids come from the eNB itself; don't panic mid-report
        };
        if config
            .flags
            .contains(flexran_proto::messages::stats::ReportFlags::CELL)
        {
            reply.cells.push(CellReport {
                cell_id: cell.0,
                noise_interference_decidbm: -950,
                dl_prbs_used_total: stats.dl_prbs_used,
                ul_prbs_used_total: stats.ul_prbs_used,
                active_ues: enb.n_ues(cell).unwrap_or(0) as u32,
                abs_muted_ttis: stats.abs_muted_ttis,
                decisions_applied: stats.decisions_applied,
                missed_deadlines: stats.missed_deadlines,
            });
        }
        let Ok(ues) = enb.ue_stats_iter(cell) else {
            continue;
        };
        for ue in ues {
            reply
                .ues
                // lint:allow(alloc-reach) owned wire structs, composed per report window
                .push(UeReport::from_stats(&ue, cell, config.flags));
        }
    }
}

/// Content hash of a reply, excluding the timestamp (so a triggered report
/// fires on *content* changes, not on the clock). Encodes the reply body
/// into `scratch` in place — no clone, no fresh buffer.
fn content_hash(reply: &mut StatsReply, scratch: &mut WireWriter) -> u64 {
    let tti = reply.tti;
    reply.tti = 0;
    reply.encode_body_into(scratch);
    let h = fnv(scratch.as_slice());
    reply.tti = tti;
    h
}

impl ReportsManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the subscription with transaction id `xid`.
    pub fn register(&mut self, xid: u32, config: ReportConfig) {
        self.subs.retain(|s| s.xid != xid);
        self.subs.push(Subscription {
            xid,
            config,
            last_sent: None,
            last_hash: 0,
            done: false,
        });
    }

    /// Cancel a subscription.
    pub fn cancel(&mut self, xid: u32) {
        self.subs.retain(|s| s.xid != xid);
    }

    pub fn n_subscriptions(&self) -> usize {
        self.subs.iter().filter(|s| !s.done).count()
    }

    /// Replies due at `tti`, with the xid to reply under.
    ///
    /// Candidate replies are composed into the manager's reusable buffer;
    /// only a reply that actually fires is moved out (`mem::take`), so a
    /// quiet tick — the steady state of a triggered subscription — does
    /// not touch the heap.
    pub fn due(&mut self, tti: Tti, enb: &Enb) -> Vec<(u32, StatsReply)> {
        // lint:allow(alloc-reach) populated only when a report fires — interval-driven
        let mut out = Vec::new();
        for sub in &mut self.subs {
            if sub.done {
                continue;
            }
            match sub.config.report_type {
                ReportType::OneOff => {
                    compose_reply_into(enb, tti, sub.config, &mut self.reply_buf);
                    out.push((sub.xid, std::mem::take(&mut self.reply_buf)));
                    sub.done = true;
                }
                ReportType::Periodic { period } => {
                    let due = match sub.last_sent {
                        None => true,
                        Some(last) => tti.saturating_since(last) >= period as u64,
                    };
                    if due {
                        compose_reply_into(enb, tti, sub.config, &mut self.reply_buf);
                        out.push((sub.xid, std::mem::take(&mut self.reply_buf)));
                        sub.last_sent = Some(tti);
                    }
                }
                ReportType::Triggered => {
                    compose_reply_into(enb, tti, sub.config, &mut self.reply_buf);
                    let h = content_hash(&mut self.reply_buf, &mut self.hash_buf);
                    if h != sub.last_hash {
                        sub.last_hash = h;
                        sub.last_sent = Some(tti);
                        out.push((sub.xid, std::mem::take(&mut self.reply_buf)));
                    }
                }
            }
        }
        // Drop completed one-offs.
        self.subs.retain(|s| !s.done);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_proto::messages::stats::ReportFlags;
    use flexran_stack::enb::{EnbParams, StaticPhyView};
    use flexran_types::config::EnbConfig;
    use flexran_types::ids::{EnbId, SliceId, UeId};
    use flexran_types::units::Bytes;

    fn enb_with_ue() -> Enb {
        let mut e = Enb::new(EnbConfig::single_cell(EnbId(1)), EnbParams::default()).unwrap();
        e.admit_ue(
            flexran_types::ids::CellId(0),
            UeId(1),
            SliceId::MNO,
            0,
            Bytes(100),
            Tti(0),
        )
        .unwrap();
        e
    }

    fn all_config(rt: ReportType) -> ReportConfig {
        ReportConfig {
            report_type: rt,
            flags: ReportFlags::ALL,
        }
    }

    #[test]
    fn one_off_fires_once() {
        let enb = enb_with_ue();
        let mut m = ReportsManager::new();
        m.register(1, all_config(ReportType::OneOff));
        assert_eq!(m.due(Tti(0), &enb).len(), 1);
        assert_eq!(m.due(Tti(1), &enb).len(), 0);
        assert_eq!(m.n_subscriptions(), 0);
    }

    #[test]
    fn periodic_respects_period() {
        let enb = enb_with_ue();
        let mut m = ReportsManager::new();
        m.register(2, all_config(ReportType::Periodic { period: 5 }));
        let mut sent = Vec::new();
        for t in 0..20 {
            for (xid, _) in m.due(Tti(t), &enb) {
                assert_eq!(xid, 2);
                sent.push(t);
            }
        }
        assert_eq!(sent, vec![0, 5, 10, 15]);
    }

    #[test]
    fn triggered_fires_only_on_change() {
        let mut enb = enb_with_ue();
        let mut m = ReportsManager::new();
        m.register(3, all_config(ReportType::Triggered));
        // First report always fires (hash 0 → real hash).
        assert_eq!(m.due(Tti(0), &enb).len(), 1);
        // Nothing changed.
        assert_eq!(m.due(Tti(1), &enb).len(), 0);
        assert_eq!(m.due(Tti(2), &enb).len(), 0);
        // Change the queue: fires again.
        enb.inject_dl_traffic(
            flexran_types::ids::CellId(0),
            enb.ue_stats(flexran_types::ids::CellId(0)).unwrap()[0].rnti,
            Bytes(500),
            Tti(3),
        )
        .unwrap();
        assert_eq!(m.due(Tti(3), &enb).len(), 1);
        assert_eq!(m.due(Tti(4), &enb).len(), 0);
    }

    #[test]
    fn reply_contains_cells_and_ues() {
        let enb = enb_with_ue();
        let reply = compose_reply(&enb, Tti(7), all_config(ReportType::OneOff));
        assert_eq!(reply.tti, 7);
        assert_eq!(reply.cells.len(), 1);
        assert_eq!(reply.ues.len(), 1);
        assert_eq!(reply.ues[0].rlc.len(), 2);
        // Without the CELL flag, no cell report.
        let cfg = ReportConfig {
            report_type: ReportType::OneOff,
            flags: ReportFlags::CQI,
        };
        let reply = compose_reply(&enb, Tti(7), cfg);
        assert!(reply.cells.is_empty());
    }

    #[test]
    fn subscriptions_replace_and_cancel() {
        let enb = enb_with_ue();
        let mut m = ReportsManager::new();
        m.register(5, all_config(ReportType::Periodic { period: 1 }));
        m.register(5, all_config(ReportType::Periodic { period: 100 }));
        assert_eq!(m.n_subscriptions(), 1);
        assert_eq!(m.due(Tti(0), &enb).len(), 1);
        assert_eq!(m.due(Tti(1), &enb).len(), 0, "period replaced");
        m.cancel(5);
        assert_eq!(m.n_subscriptions(), 0);
        let mut phy = StaticPhyView(10.0);
        let _ = &mut phy;
    }
}
