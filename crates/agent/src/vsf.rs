//! Virtual Subsystem Functions: the cache, the registry and code signing.
//!
//! The paper's VSF-updation mechanism pushes compiled shared libraries to
//! the agent, stores them "in a cache memory at the agent-side", and lets
//! the master "swap \[them\] at runtime" — measured at ~103 ns per swap
//! (§5.4). [`VsfSlot`] is that cache: named implementations per CMI slot,
//! with activation being a name lookup (the criterion bench
//! `vsf_swap` reproduces the swap-latency measurement).
//!
//! Pushed artifacts are verified against a trusted-authority signature
//! before entering the cache (§4.3.1's code-signing requirement); the
//! signature here is an HMAC-style keyed FNV-1a over the artifact — a
//! stand-in with the same accept/reject semantics.

use std::collections::BTreeMap;

use flexran_proto::messages::delegation::{VsfArtifact, VsfPush};
use flexran_stack::mac::scheduler::{DlScheduler, UlScheduler};
use flexran_types::{FlexError, Result};

use crate::cmi::HandoverVsf;

/// A named cache of implementations for one CMI slot, with one active.
pub struct VsfSlot<T: ?Sized> {
    cache: BTreeMap<String, Box<T>>,
    active: Option<String>,
    /// Swap counter (observability).
    pub swaps: u64,
}

impl<T: ?Sized> Default for VsfSlot<T> {
    fn default() -> Self {
        VsfSlot {
            cache: BTreeMap::new(),
            active: None,
            swaps: 0,
        }
    }
}

impl<T: ?Sized> VsfSlot<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Store an implementation under `name` (replacing any previous one
    /// with that name; an active implementation stays active through a
    /// same-name replacement).
    pub fn insert(&mut self, name: impl Into<String>, imp: Box<T>) {
        self.cache.insert(name.into(), imp);
    }

    /// Make `name` the active implementation. This is the runtime swap:
    /// a map lookup plus a small string clone — nanoseconds.
    pub fn activate(&mut self, name: &str) -> Result<()> {
        if !self.cache.contains_key(name) {
            return Err(FlexError::NotFound(format!(
                "VSF '{name}' not in cache (available: {:?})",
                self.cache.keys().collect::<Vec<_>>()
            )));
        }
        self.active = Some(name.to_string());
        self.swaps += 1;
        Ok(())
    }

    /// Name of the active implementation.
    pub fn active_name(&self) -> Option<&str> {
        self.active.as_deref()
    }

    /// Whether `name` is in the cache (validate-before-swap checks).
    pub fn contains(&self, name: &str) -> bool {
        self.cache.contains_key(name)
    }

    /// The active implementation, if any.
    pub fn active_mut(&mut self) -> Option<&mut T> {
        let name = self.active.as_ref()?;
        self.cache.get_mut(name).map(|b| &mut **b)
    }

    /// A specific cached implementation.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut T> {
        self.cache.get_mut(name).map(|b| &mut **b)
    }

    pub fn names(&self) -> Vec<&str> {
        self.cache.keys().map(|s| s.as_str()).collect()
    }

    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// A concrete VSF implementation, typed by the CMI slot it fills.
pub enum VsfImpl {
    DlScheduler(Box<dyn DlScheduler>),
    UlScheduler(Box<dyn UlScheduler>),
    Handover(Box<dyn HandoverVsf>),
}

impl VsfImpl {
    pub fn kind(&self) -> &'static str {
        match self {
            VsfImpl::DlScheduler(_) => "dl-scheduler",
            VsfImpl::UlScheduler(_) => "ul-scheduler",
            VsfImpl::Handover(_) => "handover",
        }
    }
}

type Factory = Box<dyn Fn() -> VsfImpl + Send + Sync>;

/// The registry of pre-compiled, signable VSF implementations — the model
/// of the paper's "online VSF store" of certified shared libraries.
pub struct VsfRegistry {
    factories: BTreeMap<String, Factory>,
}

impl VsfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        VsfRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// The registry with the data plane's baseline schedulers plus the
    /// remote stub (a scheduler that emits nothing locally because the
    /// decisions arrive from the master over the FlexRAN protocol).
    pub fn with_builtins() -> Self {
        use flexran_stack::mac::scheduler::{
            MaxCqiScheduler, ProportionalFairScheduler, RoundRobinScheduler, UlRoundRobinScheduler,
        };
        let mut r = Self::new();
        r.register("round-robin", || {
            VsfImpl::DlScheduler(Box::new(RoundRobinScheduler::new()))
        });
        r.register("proportional-fair", || {
            VsfImpl::DlScheduler(Box::new(ProportionalFairScheduler::new()))
        });
        r.register("max-cqi", || {
            VsfImpl::DlScheduler(Box::new(MaxCqiScheduler::new()))
        });
        r.register("remote-stub", || {
            VsfImpl::DlScheduler(Box::new(RemoteStubScheduler))
        });
        r.register("ul-round-robin", || {
            VsfImpl::UlScheduler(Box::new(UlRoundRobinScheduler::new()))
        });
        r.register("a3-handover", || {
            VsfImpl::Handover(Box::new(crate::cmi::A3HandoverVsf::default()))
        });
        r
    }

    /// Register a factory under `key`.
    pub fn register(
        &mut self,
        key: impl Into<String>,
        factory: impl Fn() -> VsfImpl + Send + Sync + 'static,
    ) {
        self.factories.insert(key.into(), Box::new(factory));
    }

    /// Instantiate the implementation registered under `key`.
    pub fn instantiate(&self, key: &str) -> Result<VsfImpl> {
        self.factories
            .get(key)
            .map(|f| f())
            .ok_or_else(|| FlexError::Delegation(format!("no registry entry '{key}'")))
    }

    pub fn keys(&self) -> Vec<&str> {
        self.factories.keys().map(|s| s.as_str()).collect()
    }
}

impl Default for VsfRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

/// The remote stub: emits no local decisions — the master's centralized
/// scheduler drives the cell through DlSchedulingCommand messages.
#[derive(Debug, Default)]
pub struct RemoteStubScheduler;

impl DlScheduler for RemoteStubScheduler {
    fn name(&self) -> &str {
        "remote-stub"
    }

    fn schedule_dl_into(
        &mut self,
        _input: &flexran_stack::mac::scheduler::DlSchedulerInput,
        out: &mut flexran_stack::mac::scheduler::DlSchedulerOutput,
    ) {
        out.dcis.clear();
    }
}

// ----------------------------------------------------------------------
// Code signing
// ----------------------------------------------------------------------

/// The trusted authority's signing key (in a real deployment: a private
/// key whose public half is provisioned to agents).
const SIGNING_KEY: u64 = 0x46_4C_45_58_52_41_4E_21; // "FLEXRAN!"

fn fnv1a(data: &[u8], mut hash: u64) -> u64 {
    for b in data {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Canonical byte string a push is signed over.
fn signing_payload(push: &VsfPush) -> Vec<u8> {
    let mut v = Vec::new();
    v.extend_from_slice(push.module.as_bytes());
    v.push(0);
    v.extend_from_slice(push.vsf.as_bytes());
    v.push(0);
    v.extend_from_slice(push.name.as_bytes());
    v.push(0);
    match &push.artifact {
        VsfArtifact::Registry { key } => {
            v.push(0);
            v.extend_from_slice(key.as_bytes());
        }
        VsfArtifact::Dsl { source } => {
            v.push(1);
            v.extend_from_slice(source.as_bytes());
        }
    }
    v
}

/// Sign a push (the trusted authority / master side).
pub fn sign_push(push: &mut VsfPush) {
    let h = fnv1a(&signing_payload(push), SIGNING_KEY ^ 0xcbf29ce484222325);
    push.signature = h.to_be_bytes().to_vec();
}

/// Verify a push's signature (the agent side).
pub fn verify_push(push: &VsfPush) -> Result<()> {
    let h = fnv1a(&signing_payload(push), SIGNING_KEY ^ 0xcbf29ce484222325);
    if push.signature == h.to_be_bytes() {
        Ok(())
    } else {
        Err(FlexError::Delegation(format!(
            "signature verification failed for VSF '{}' ({}/{})",
            push.name, push.module, push.vsf
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_insert_activate_swap() {
        let mut slot: VsfSlot<dyn DlScheduler> = VsfSlot::new();
        assert!(slot.active_mut().is_none());
        slot.insert(
            "rr",
            Box::new(flexran_stack::mac::scheduler::RoundRobinScheduler::new()),
        );
        slot.insert(
            "pf",
            Box::new(flexran_stack::mac::scheduler::ProportionalFairScheduler::new()),
        );
        assert!(slot.activate("missing").is_err());
        slot.activate("rr").unwrap();
        assert_eq!(slot.active_mut().unwrap().name(), "round-robin");
        slot.activate("pf").unwrap();
        assert_eq!(slot.active_mut().unwrap().name(), "proportional-fair");
        assert_eq!(slot.swaps, 2);
        assert_eq!(slot.names(), vec!["pf", "rr"]);
    }

    #[test]
    fn registry_builtins_instantiate() {
        let r = VsfRegistry::with_builtins();
        for key in ["round-robin", "proportional-fair", "max-cqi", "remote-stub"] {
            let imp = r.instantiate(key).unwrap();
            assert_eq!(imp.kind(), "dl-scheduler", "{key}");
        }
        assert_eq!(
            r.instantiate("ul-round-robin").unwrap().kind(),
            "ul-scheduler"
        );
        assert!(r.instantiate("nope").is_err());
    }

    #[test]
    fn signatures_accept_genuine_and_reject_tampered() {
        let mut push = VsfPush {
            module: "mac".into(),
            vsf: "dl_ue_scheduler".into(),
            name: "pf".into(),
            artifact: VsfArtifact::Registry {
                key: "proportional-fair".into(),
            },
            signature: vec![],
        };
        sign_push(&mut push);
        verify_push(&push).unwrap();
        // Tamper with the artifact after signing.
        let mut evil = push.clone();
        evil.artifact = VsfArtifact::Registry {
            key: "max-cqi".into(),
        };
        assert!(verify_push(&evil).is_err());
        // Tamper with the signature itself.
        let mut bad_sig = push.clone();
        bad_sig.signature[0] ^= 0xFF;
        assert!(verify_push(&bad_sig).is_err());
        // Missing signature.
        let mut unsigned = push.clone();
        unsigned.signature.clear();
        assert!(verify_push(&unsigned).is_err());
    }

    #[test]
    fn remote_stub_emits_nothing() {
        use flexran_stack::mac::scheduler::DlSchedulerInput;
        use flexran_types::ids::CellId;
        use flexran_types::time::Tti;
        let mut s = RemoteStubScheduler;
        let out = s.schedule_dl(&DlSchedulerInput {
            cell: CellId(0),
            now: Tti(0),
            target: Tti(0),
            available_prb: 50,
            max_dcis: 10,
            ues: vec![],
            retx: vec![],
        });
        assert!(out.dcis.is_empty());
    }
}
