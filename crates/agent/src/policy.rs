//! Policy reconfiguration: the YAML-subset document of paper Fig. 3.
//!
//! The structure mirrors the paper exactly: the top level names a control
//! module, below it a sequence of VSFs, each with two optional sections —
//! `behavior:` (an instruction to link the CMI call to one of the cached
//! VSF implementations, i.e. the runtime swap) and `parameters:` (values
//! exposed by the active implementation's public parameter API).
//!
//! ```yaml
//! mac:
//!   dl_ue_scheduler:
//!     behavior: slice-scheduler
//!     parameters:
//!       slice_shares: [0.7, 0.3]
//!   ul_ue_scheduler:
//!     behavior: ul-round-robin
//! ```
//!
//! The parser is a from-scratch indentation-based YAML subset (block maps,
//! scalars, inline numeric lists, `#` comments) — enough for every policy
//! document the platform produces, with strict errors on anything else.

use flexran_stack::mac::scheduler::ParamValue;
use flexran_types::{FlexError, Result};

/// One VSF's reconfiguration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VsfPolicy {
    pub vsf: String,
    /// Cached implementation to activate, if present.
    pub behavior: Option<String>,
    /// Parameters to set on the (newly) active implementation.
    pub parameters: Vec<(String, ParamValue)>,
}

/// One control module's reconfiguration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModulePolicy {
    pub module: String,
    pub vsfs: Vec<VsfPolicy>,
}

/// A full policy reconfiguration document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyDoc {
    pub modules: Vec<ModulePolicy>,
}

#[derive(Debug)]
struct Line<'a> {
    indent: usize,
    key: &'a str,
    value: Option<&'a str>,
}

fn split_lines(src: &str) -> Result<Vec<Line<'_>>> {
    let mut out = Vec::new();
    for (no, raw) in src.lines().enumerate() {
        let line = match raw.split_once('#') {
            Some((before, _comment)) => before,
            None => raw,
        };
        let after_indent = line.trim_start_matches(' ');
        if after_indent.trim().is_empty() {
            continue;
        }
        let indent = line.len() - after_indent.len();
        if after_indent.starts_with('\t') {
            return Err(FlexError::Policy(format!(
                "line {}: tabs are not allowed for indentation",
                no + 1
            )));
        }
        let body = line.trim();
        let Some((key, value)) = body.split_once(':') else {
            return Err(FlexError::Policy(format!(
                "line {}: expected 'key:' or 'key: value'",
                no + 1
            )));
        };
        let key = key.trim();
        if key.is_empty() {
            return Err(FlexError::Policy(format!("line {}: empty key", no + 1)));
        }
        let rest = value.trim();
        out.push(Line {
            indent,
            key,
            value: if rest.is_empty() { None } else { Some(rest) },
        });
    }
    Ok(out)
}

fn parse_scalar(s: &str) -> ParamValue {
    if let Ok(i) = s.parse::<i64>() {
        return ParamValue::I64(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return ParamValue::F64(f);
    }
    ParamValue::Str(s.trim_matches(|c| c == '"' || c == '\'').to_string())
}

fn parse_value(s: &str) -> Result<ParamValue> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(FlexError::Policy(format!("unterminated list '{s}'")));
        };
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let v = part
                .parse::<f64>()
                .map_err(|_| FlexError::Policy(format!("list item '{part}' is not numeric")))?;
            items.push(v);
        }
        return Ok(ParamValue::List(items));
    }
    Ok(parse_scalar(s))
}

impl PolicyDoc {
    /// Parse a policy document.
    pub fn parse(src: &str) -> Result<PolicyDoc> {
        let lines = split_lines(src)?;
        let mut doc = PolicyDoc::default();
        // Cursor-style walk: every access goes through `lines.get(i)`, so
        // the parser has no indexing panic sites at all.
        let mut i = 0;
        while let Some(l) = lines.get(i) {
            if l.indent != 0 || l.value.is_some() {
                return Err(FlexError::Policy(format!(
                    "expected a module name at top level, got '{}'",
                    l.key
                )));
            }
            let mut module = ModulePolicy {
                module: l.key.to_string(),
                vsfs: Vec::new(),
            };
            i += 1;
            // VSF entries, indented deeper than the module.
            while let Some(entry) = lines.get(i).filter(|l| l.indent > 0) {
                let vsf_indent = entry.indent;
                if entry.value.is_some() {
                    return Err(FlexError::Policy(format!(
                        "VSF entry '{}' must be a mapping",
                        entry.key
                    )));
                }
                let mut vsf = VsfPolicy {
                    vsf: entry.key.to_string(),
                    ..VsfPolicy::default()
                };
                i += 1;
                while let Some(section) = lines.get(i).filter(|l| l.indent > vsf_indent) {
                    match (section.key, section.value) {
                        ("behavior", Some(v)) => {
                            vsf.behavior = Some(v.to_string());
                            i += 1;
                        }
                        ("parameters", None) => {
                            let sec_indent = section.indent;
                            i += 1;
                            while let Some(p) = lines.get(i).filter(|l| l.indent > sec_indent) {
                                let Some(v) = p.value else {
                                    return Err(FlexError::Policy(format!(
                                        "parameter '{}' has no value",
                                        p.key
                                    )));
                                };
                                vsf.parameters.push((p.key.to_string(), parse_value(v)?));
                                i += 1;
                            }
                        }
                        (other, _) => {
                            return Err(FlexError::Policy(format!(
                                "unknown section '{other}' (expected behavior/parameters)"
                            )));
                        }
                    }
                }
                module.vsfs.push(vsf);
            }
            doc.modules.push(module);
        }
        Ok(doc)
    }

    /// Serialize back to the YAML subset (for composing
    /// `PolicyReconfiguration` messages programmatically at the master).
    pub fn to_yaml(&self) -> String {
        let mut s = String::new();
        for m in &self.modules {
            s.push_str(&m.module);
            s.push_str(":\n");
            for v in &m.vsfs {
                s.push_str(&format!("  {}:\n", v.vsf));
                if let Some(b) = &v.behavior {
                    s.push_str(&format!("    behavior: {b}\n"));
                }
                if !v.parameters.is_empty() {
                    s.push_str("    parameters:\n");
                    for (k, val) in &v.parameters {
                        let rendered = match val {
                            ParamValue::I64(i) => i.to_string(),
                            // Keep the decimal point so the type survives
                            // the parse (21.0 must not come back as I64).
                            ParamValue::F64(f) if f.fract() == 0.0 => format!("{f:.1}"),
                            ParamValue::F64(f) => format!("{f}"),
                            ParamValue::Str(st) => st.clone(),
                            ParamValue::List(l) => format!(
                                "[{}]",
                                l.iter()
                                    .map(|x| x.to_string())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        };
                        s.push_str(&format!("      {k}: {rendered}\n"));
                    }
                }
            }
        }
        s
    }

    /// Convenience constructor: one module, one VSF.
    pub fn single(
        module: &str,
        vsf: &str,
        behavior: Option<&str>,
        parameters: Vec<(String, ParamValue)>,
    ) -> PolicyDoc {
        PolicyDoc {
            modules: vec![ModulePolicy {
                module: module.to_string(),
                vsfs: vec![VsfPolicy {
                    vsf: vsf.to_string(),
                    behavior: behavior.map(|s| s.to_string()),
                    parameters,
                }],
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ident() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,12}"
    }

    fn param_value() -> impl Strategy<Value = ParamValue> {
        prop_oneof![
            any::<i32>().prop_map(|v| ParamValue::I64(v as i64)),
            // One-decimal floats survive the text roundtrip exactly.
            (-1000i64..1000).prop_map(|v| ParamValue::F64(v as f64 / 10.0)),
            "[a-z][a-z0-9_-]{0,10}".prop_map(ParamValue::Str),
            proptest::collection::vec((-100i64..100).prop_map(|v| v as f64 / 4.0), 1..5)
                .prop_map(ParamValue::List),
        ]
    }

    proptest! {
        /// Any document this crate can express survives the YAML-subset
        /// serialize → parse roundtrip.
        #[test]
        fn roundtrip_arbitrary_docs(
            modules in proptest::collection::vec(
                (ident(), proptest::collection::vec(
                    (ident(), proptest::option::of(ident()),
                     proptest::collection::vec((ident(), param_value()), 0..4)),
                    1..3,
                )),
                1..3,
            )
        ) {
            let doc = PolicyDoc {
                modules: modules
                    .into_iter()
                    .map(|(module, vsfs)| ModulePolicy {
                        module,
                        vsfs: vsfs
                            .into_iter()
                            .map(|(vsf, behavior, parameters)| VsfPolicy { vsf, behavior, parameters })
                            .collect(),
                    })
                    .collect(),
            };
            let parsed = PolicyDoc::parse(&doc.to_yaml()).unwrap();
            prop_assert_eq!(parsed, doc);
        }

        /// The parser never panics on arbitrary text.
        #[test]
        fn parser_never_panics(src in "\\PC{0,200}") {
            let _ = PolicyDoc::parse(&src);
        }
    }

    #[test]
    fn parses_the_paper_figure_3_shape() {
        let src = "\
mac:
  dl_ue_scheduler:
    behavior: local-pf
    parameters:
      fairness_exponent: 0.7
      slice_shares: [0.7, 0.3]
  ul_ue_scheduler:
    behavior: ul-round-robin
rrc:
  handover_policy:
    parameters:
      hysteresis_db: 3
";
        let doc = PolicyDoc::parse(src).unwrap();
        assert_eq!(doc.modules.len(), 2);
        let mac = &doc.modules[0];
        assert_eq!(mac.module, "mac");
        assert_eq!(mac.vsfs.len(), 2);
        assert_eq!(mac.vsfs[0].behavior.as_deref(), Some("local-pf"));
        assert_eq!(
            mac.vsfs[0].parameters,
            vec![
                ("fairness_exponent".to_string(), ParamValue::F64(0.7)),
                ("slice_shares".to_string(), ParamValue::List(vec![0.7, 0.3])),
            ]
        );
        assert_eq!(mac.vsfs[1].behavior.as_deref(), Some("ul-round-robin"));
        assert!(mac.vsfs[1].parameters.is_empty());
        assert_eq!(
            doc.modules[1].vsfs[0].parameters[0],
            ("hysteresis_db".to_string(), ParamValue::I64(3))
        );
    }

    #[test]
    fn roundtrips_through_to_yaml() {
        let doc = PolicyDoc::single(
            "mac",
            "dl_ue_scheduler",
            Some("slice-scheduler"),
            vec![
                ("slice_shares".into(), ParamValue::List(vec![0.4, 0.6])),
                ("label".into(), ParamValue::Str("premium".into())),
                ("n".into(), ParamValue::I64(5)),
            ],
        );
        let parsed = PolicyDoc::parse(&doc.to_yaml()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "# heading\nmac:\n\n  dl_ue_scheduler:  # mapping\n    behavior: x # tail\n";
        let doc = PolicyDoc::parse(src).unwrap();
        assert_eq!(doc.modules[0].vsfs[0].behavior.as_deref(), Some("x"));
    }

    #[test]
    fn errors_are_strict() {
        assert!(PolicyDoc::parse("  indented-top:\n").is_err());
        assert!(PolicyDoc::parse("mac: value\n").is_err());
        assert!(PolicyDoc::parse("mac:\n  vsf: scalar\n").is_err());
        assert!(PolicyDoc::parse("mac:\n  vsf:\n    unknown_section: 1\n").is_err());
        assert!(PolicyDoc::parse("mac:\n  vsf:\n    parameters:\n      broken\n").is_err());
        assert!(PolicyDoc::parse("mac:\n\tvsf:\n").is_err(), "tabs rejected");
        assert!(
            PolicyDoc::parse("mac:\n  v:\n    parameters:\n      l: [1, x]\n").is_err(),
            "non-numeric list"
        );
        assert!(
            PolicyDoc::parse("mac:\n  v:\n    parameters:\n      l: [1, 2\n").is_err(),
            "unterminated list"
        );
    }

    #[test]
    fn scalar_typing() {
        let src =
            "m:\n  v:\n    parameters:\n      a: 3\n      b: 3.5\n      c: hello\n      d: -2\n";
        let doc = PolicyDoc::parse(src).unwrap();
        let p = &doc.modules[0].vsfs[0].parameters;
        assert_eq!(p[0].1, ParamValue::I64(3));
        assert_eq!(p[1].1, ParamValue::F64(3.5));
        assert_eq!(p[2].1, ParamValue::Str("hello".into()));
        assert_eq!(p[3].1, ParamValue::I64(-2));
    }

    #[test]
    fn empty_document_is_empty_policy() {
        let doc = PolicyDoc::parse("").unwrap();
        assert!(doc.modules.is_empty());
        assert_eq!(doc.to_yaml(), "");
    }
}
