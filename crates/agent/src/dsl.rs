//! The scheduling-policy DSL.
//!
//! Paper §7.3 lists as future work "a high-level domain-specific language
//! that would make the development of VSFs technology-agnostic". This
//! module implements that extension: a small expression language for
//! downlink scheduling policies that the master pushes over the FlexRAN
//! protocol as *source text* — genuinely new behaviour crossing the wire,
//! not just a reference to pre-compiled code.
//!
//! ```text
//! # proportional fair with a delay boost, capped at 20 PRBs per UE
//! param fairness = 1.0
//! priority = rate / max(avg_rate, 1) ^ fairness + hol / 50
//! prb_cap  = 20
//! ```
//!
//! Statements assign expressions to the outputs `priority` (required; UEs
//! are served in descending order, non-positive priority excludes a UE),
//! `prb_cap` and `mcs_cap` (optional). `param NAME = value` declares a
//! runtime-tunable constant reachable through policy reconfiguration.
//!
//! Per-UE variables: `cqi`, `queue` (bytes), `srb` (bytes), `avg_rate`
//! (b/s), `hol` (ms), `slice`, `group`, `rate` (achievable bits/TTI at
//! the UE's CQI over the full band), `prb_total`.
//! Functions: `min`, `max`, `abs`, `sqrt`, `log2`, `log10`, `step`
//! (1 if positive, else 0). Operators: `+ - * / ^` (right-assoc `^`),
//! unary minus, parentheses.

use std::collections::BTreeMap;

use flexran_phy::link_adaptation::mcs_for_cqi;
use flexran_phy::tables::{itbs_for_mcs, tbs_bits};
use flexran_stack::mac::dci::DlDci;
use flexran_stack::mac::scheduler::{
    allocate_srbs, prbs_for_bytes, DlScheduler, DlSchedulerInput, DlSchedulerOutput, ParamValue,
    UeSchedInfo,
};
use flexran_types::units::Bytes;
use flexran_types::{FlexError, Result};

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
    Comma,
    Assign,
    Newline,
}

fn lex(src: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    for raw_line in src.lines() {
        let line = match raw_line.find('#') {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        let mut chars = line.chars().peekable();
        let mut line_had_tokens = false;
        while let Some(&c) = chars.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    chars.next();
                }
                '+' => {
                    chars.next();
                    toks.push(Tok::Plus);
                }
                '-' => {
                    chars.next();
                    toks.push(Tok::Minus);
                }
                '*' => {
                    chars.next();
                    toks.push(Tok::Star);
                }
                '/' => {
                    chars.next();
                    toks.push(Tok::Slash);
                }
                '^' => {
                    chars.next();
                    toks.push(Tok::Caret);
                }
                '(' => {
                    chars.next();
                    toks.push(Tok::LParen);
                }
                ')' => {
                    chars.next();
                    toks.push(Tok::RParen);
                }
                ',' => {
                    chars.next();
                    toks.push(Tok::Comma);
                }
                '=' => {
                    chars.next();
                    toks.push(Tok::Assign);
                }
                '0'..='9' | '.' => {
                    let mut s = String::new();
                    while let Some(&d) = chars.peek() {
                        if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' {
                            s.push(d);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let n = s
                        .parse::<f64>()
                        .map_err(|_| FlexError::Delegation(format!("bad number '{s}'")))?;
                    toks.push(Tok::Num(n));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&d) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            s.push(d);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push(Tok::Ident(s));
                }
                other => {
                    return Err(FlexError::Delegation(format!(
                        "unexpected character '{other}' in DSL source"
                    )));
                }
            }
            line_had_tokens = true;
        }
        if line_had_tokens {
            toks.push(Tok::Newline);
        }
    }
    Ok(toks)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Func {
    Min,
    Max,
    Abs,
    Sqrt,
    Log2,
    Log10,
    Step,
}

impl Func {
    fn from_name(name: &str) -> Option<(Func, usize)> {
        Some(match name {
            "min" => (Func::Min, 2),
            "max" => (Func::Max, 2),
            "abs" => (Func::Abs, 1),
            "sqrt" => (Func::Sqrt, 1),
            "log2" => (Func::Log2, 1),
            "log10" => (Func::Log10, 1),
            "step" => (Func::Step, 1),
            _ => return None,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(f64),
    Var(String),
    Neg(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Pow(Box<Expr>, Box<Expr>),
    Call(Func, Vec<Expr>),
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(FlexError::Delegation(format!(
                "expected {t:?}, got {got:?}"
            ))),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.next();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(Tok::Minus) => {
                    self.next();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.power()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.next();
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.power()?));
                }
                Some(Tok::Slash) => {
                    self.next();
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.power()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.unary()?;
        if matches!(self.peek(), Some(Tok::Caret)) {
            self.next();
            // Right associative.
            let exp = self.power()?;
            return Ok(Expr::Pow(Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if matches!(self.peek(), Some(Tok::LParen)) {
                    let (func, arity) = Func::from_name(&name).ok_or_else(|| {
                        FlexError::Delegation(format!("unknown function '{name}'"))
                    })?;
                    self.next(); // (
                    let mut args = vec![self.expr()?];
                    while matches!(self.peek(), Some(Tok::Comma)) {
                        self.next();
                        args.push(self.expr()?);
                    }
                    self.expect(Tok::RParen)?;
                    if args.len() != arity {
                        return Err(FlexError::Delegation(format!(
                            "function '{name}' takes {arity} argument(s), got {}",
                            args.len()
                        )));
                    }
                    Ok(Expr::Call(func, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            got => Err(FlexError::Delegation(format!(
                "unexpected token {got:?} in expression"
            ))),
        }
    }
}

/// A compiled DSL program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    priority: Expr,
    prb_cap: Option<Expr>,
    mcs_cap: Option<Expr>,
    params: BTreeMap<String, f64>,
}

/// Variables known at evaluation time, in addition to program parameters.
const UE_VARS: &[&str] = &[
    "cqi",
    "queue",
    "srb",
    "avg_rate",
    "hol",
    "slice",
    "group",
    "rate",
    "prb_total",
];

impl Program {
    /// Compile DSL source, rejecting references to undefined names at
    /// compile time (pushing a broken VSF must fail at push, not at TTI
    /// time).
    pub fn compile(src: &str) -> Result<Program> {
        let toks = lex(src)?;
        let mut p = Parser { toks, pos: 0 };
        let mut priority = None;
        let mut prb_cap = None;
        let mut mcs_cap = None;
        let mut params = BTreeMap::new();
        while let Some(tok) = p.next() {
            match tok {
                Tok::Newline => continue,
                Tok::Ident(name) if name == "param" => {
                    let pname = match p.next() {
                        Some(Tok::Ident(n)) => n,
                        got => {
                            return Err(FlexError::Delegation(format!(
                                "expected parameter name, got {got:?}"
                            )))
                        }
                    };
                    p.expect(Tok::Assign)?;
                    let value = match p.next() {
                        Some(Tok::Num(n)) => n,
                        Some(Tok::Minus) => match p.next() {
                            Some(Tok::Num(n)) => -n,
                            got => {
                                return Err(FlexError::Delegation(format!(
                                    "expected number after '-', got {got:?}"
                                )))
                            }
                        },
                        got => {
                            return Err(FlexError::Delegation(format!(
                                "expected default value for param '{pname}', got {got:?}"
                            )))
                        }
                    };
                    params.insert(pname, value);
                    p.expect(Tok::Newline)?;
                }
                Tok::Ident(name) => {
                    p.expect(Tok::Assign)?;
                    let e = p.expr()?;
                    p.expect(Tok::Newline)?;
                    match name.as_str() {
                        "priority" => priority = Some(e),
                        "prb_cap" => prb_cap = Some(e),
                        "mcs_cap" => mcs_cap = Some(e),
                        other => {
                            return Err(FlexError::Delegation(format!(
                                "unknown output '{other}' (expected priority/prb_cap/mcs_cap)"
                            )))
                        }
                    }
                }
                got => {
                    return Err(FlexError::Delegation(format!(
                        "unexpected token {got:?} at statement start"
                    )))
                }
            }
        }
        let priority = priority
            .ok_or_else(|| FlexError::Delegation("DSL program must assign 'priority'".into()))?;
        let prog = Program {
            priority,
            prb_cap,
            mcs_cap,
            params,
        };
        // Name check all expressions.
        for e in [
            Some(&prog.priority),
            prog.prb_cap.as_ref(),
            prog.mcs_cap.as_ref(),
        ]
        .into_iter()
        .flatten()
        {
            prog.check_names(e)?;
        }
        Ok(prog)
    }

    fn check_names(&self, e: &Expr) -> Result<()> {
        match e {
            Expr::Num(_) => Ok(()),
            Expr::Var(v) => {
                if UE_VARS.contains(&v.as_str()) || self.params.contains_key(v) {
                    Ok(())
                } else {
                    Err(FlexError::Delegation(format!(
                        "undefined name '{v}' in DSL program"
                    )))
                }
            }
            Expr::Neg(a) => self.check_names(a),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => {
                self.check_names(a)?;
                self.check_names(b)
            }
            Expr::Call(_, args) => {
                for a in args {
                    self.check_names(a)?;
                }
                Ok(())
            }
        }
    }

    fn eval(&self, e: &Expr, ue: &UeSchedInfo, prb_total: u8) -> f64 {
        match e {
            Expr::Num(n) => *n,
            Expr::Var(v) => match v.as_str() {
                "cqi" => ue.cqi.0 as f64,
                "queue" => ue.queue_bytes.as_u64() as f64,
                "srb" => ue.srb_bytes.as_u64() as f64,
                "avg_rate" => ue.avg_rate_bps,
                "hol" => ue.hol_delay_ms as f64,
                "slice" => ue.slice.0 as f64,
                "group" => ue.priority_group as f64,
                "rate" => {
                    let mcs = mcs_for_cqi(ue.cqi);
                    tbs_bits(itbs_for_mcs(mcs.0), prb_total) as f64
                }
                "prb_total" => prb_total as f64,
                other => self.params.get(other).copied().unwrap_or(0.0),
            },
            Expr::Neg(a) => -self.eval(a, ue, prb_total),
            Expr::Add(a, b) => self.eval(a, ue, prb_total) + self.eval(b, ue, prb_total),
            Expr::Sub(a, b) => self.eval(a, ue, prb_total) - self.eval(b, ue, prb_total),
            Expr::Mul(a, b) => self.eval(a, ue, prb_total) * self.eval(b, ue, prb_total),
            Expr::Div(a, b) => {
                let d = self.eval(b, ue, prb_total);
                if d == 0.0 {
                    0.0
                } else {
                    self.eval(a, ue, prb_total) / d
                }
            }
            Expr::Pow(a, b) => self
                .eval(a, ue, prb_total)
                .powf(self.eval(b, ue, prb_total)),
            Expr::Call(f, args) => {
                // DSL functions are at most binary (`Func::from_name`
                // arities): evaluate into fixed scratch, no per-call Vec.
                let mut v = [0.0f64; 2];
                for (slot, a) in v.iter_mut().zip(args.iter()) {
                    *slot = self.eval(a, ue, prb_total);
                }
                match f {
                    Func::Min => v[0].min(v[1]),
                    Func::Max => v[0].max(v[1]),
                    Func::Abs => v[0].abs(),
                    Func::Sqrt => v[0].max(0.0).sqrt(),
                    Func::Log2 => v[0].max(1e-12).log2(),
                    Func::Log10 => v[0].max(1e-12).log10(),
                    Func::Step => {
                        if v[0] > 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                }
            }
        }
    }
}

/// A downlink scheduler compiled from DSL source.
pub struct DslScheduler {
    program: Program,
    source: String,
    /// Candidate scratch `(index into input.ues, priority)`, reused
    /// across TTIs.
    ranked: Vec<(usize, f64)>,
}

impl DslScheduler {
    pub fn compile(source: &str) -> Result<Self> {
        Ok(DslScheduler {
            program: Program::compile(source)?,
            source: source.to_string(),
            ranked: Vec::new(),
        })
    }

    pub fn source(&self) -> &str {
        &self.source
    }
}

impl DlScheduler for DslScheduler {
    fn name(&self) -> &str {
        "dsl"
    }

    fn schedule_dl_into(&mut self, input: &DlSchedulerInput, out: &mut DlSchedulerOutput) {
        out.dcis.clear();
        let mut prb_left = allocate_srbs(input, &mut out.dcis, input.available_prb);
        let prb_total = input.available_prb;
        self.ranked.clear();
        for (i, u) in input.ues.iter().enumerate() {
            if u.queue_bytes.is_zero() || u.cqi.0 == 0 || out.dcis.iter().any(|d| d.rnti == u.rnti)
            {
                continue;
            }
            let p = self.program.eval(&self.program.priority, u, prb_total);
            if p > 0.0 {
                self.ranked.push((i, p));
            }
        }
        self.ranked.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(input.ues[a.0].rnti.cmp(&input.ues[b.0].rnti))
        });
        for &(i, _) in &self.ranked {
            if prb_left == 0 || out.dcis.len() >= input.max_dcis as usize {
                break;
            }
            let ue = &input.ues[i];
            let mut mcs = mcs_for_cqi(ue.cqi);
            if let Some(cap_expr) = &self.program.mcs_cap {
                let cap = self.program.eval(cap_expr, ue, prb_total).max(0.0) as u8;
                mcs = flexran_phy::link_adaptation::Mcs(mcs.0.min(cap));
            }
            let mut cap = prb_left;
            if let Some(cap_expr) = &self.program.prb_cap {
                let c = self.program.eval(cap_expr, ue, prb_total).max(0.0) as u8;
                cap = cap.min(c.max(1));
            }
            let want = prbs_for_bytes(mcs, Bytes(ue.queue_bytes.as_u64() + 8), cap);
            out.dcis.push(DlDci {
                rnti: ue.rnti,
                n_prb: want,
                mcs,
            });
            prb_left -= want;
        }
    }

    fn set_param(&mut self, key: &str, value: ParamValue) -> Result<()> {
        let v = value
            .as_f64()
            .ok_or_else(|| FlexError::Policy(format!("parameter '{key}' must be numeric")))?;
        match self.program.params.get_mut(key) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(FlexError::NotFound(format!(
                "DSL program declares no parameter '{key}'"
            ))),
        }
    }

    fn params(&self) -> Vec<(String, ParamValue)> {
        self.program
            .params
            .iter()
            .map(|(k, v)| (k.clone(), ParamValue::F64(*v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The compiler rejects or accepts — it never panics, whatever
        /// the master pushes over the wire.
        #[test]
        fn compiler_never_panics(src in "\\PC{0,200}") {
            let _ = DslScheduler::compile(&src);
        }

        /// Token-soup built from the DSL's own alphabet also cannot panic
        /// (denser than fully random text).
        #[test]
        fn token_soup_never_panics(src in "[a-z0-9_+*/()^=,. \n-]{0,120}") {
            let _ = DslScheduler::compile(&src);
        }
    }
    use flexran_phy::link_adaptation::Cqi;
    use flexran_types::ids::{CellId, Rnti, SliceId};
    use flexran_types::time::Tti;

    fn ue(rnti: u16, cqi: u8, queue: u64, avg: f64) -> UeSchedInfo {
        UeSchedInfo {
            rnti: Rnti(rnti),
            cqi: Cqi(cqi),
            queue_bytes: Bytes(queue),
            srb_bytes: Bytes::ZERO,
            avg_rate_bps: avg,
            slice: SliceId::MNO,
            priority_group: 0,
            hol_delay_ms: 0,
        }
    }

    fn input(ues: Vec<UeSchedInfo>) -> DlSchedulerInput {
        DlSchedulerInput {
            cell: CellId(0),
            now: Tti(0),
            target: Tti(0),
            available_prb: 50,
            max_dcis: 10,
            ues,
            retx: vec![],
        }
    }

    #[test]
    fn compiles_and_schedules_max_cqi_policy() {
        let mut s = DslScheduler::compile("priority = cqi\n").unwrap();
        let out = s.schedule_dl(&input(vec![
            ue(0x100, 5, 10_000, 1.0),
            ue(0x101, 12, 10_000, 1.0),
        ]));
        assert_eq!(out.dcis[0].rnti, Rnti(0x101));
    }

    #[test]
    fn proportional_fair_in_dsl() {
        let src = "param fairness = 1.0\npriority = rate / max(avg_rate, 1) ^ fairness\n";
        let mut s = DslScheduler::compile(src).unwrap();
        let out = s.schedule_dl(&input(vec![
            ue(0x100, 12, 1_000_000, 50_000_000.0), // well-fed
            ue(0x101, 12, 1_000_000, 1_000.0),      // starved
        ]));
        assert_eq!(out.dcis[0].rnti, Rnti(0x101));
    }

    #[test]
    fn prb_and_mcs_caps_apply() {
        let src = "priority = 1\nprb_cap = 7\nmcs_cap = 10\n";
        let mut s = DslScheduler::compile(src).unwrap();
        let out = s.schedule_dl(&input(vec![ue(0x100, 15, 1_000_000, 1.0)]));
        assert_eq!(out.dcis[0].n_prb, 7);
        assert!(out.dcis[0].mcs.0 <= 10);
    }

    #[test]
    fn nonpositive_priority_excludes_ue() {
        let src = "priority = step(cqi - 9)\n"; // only CQI 10+
        let mut s = DslScheduler::compile(src).unwrap();
        let out = s.schedule_dl(&input(vec![
            ue(0x100, 5, 10_000, 1.0),
            ue(0x101, 12, 10_000, 1.0),
        ]));
        assert_eq!(out.dcis.len(), 1);
        assert_eq!(out.dcis[0].rnti, Rnti(0x101));
    }

    #[test]
    fn params_are_tunable_at_runtime() {
        let src = "param boost = 0\npriority = cqi + boost * step(group)\n";
        let mut s = DslScheduler::compile(src).unwrap();
        assert_eq!(
            s.params(),
            vec![("boost".to_string(), ParamValue::F64(0.0))]
        );
        s.set_param("boost", ParamValue::F64(100.0)).unwrap();
        assert!(s.set_param("nope", ParamValue::F64(1.0)).is_err());
        let mut low = ue(0x100, 15, 10_000, 1.0);
        low.priority_group = 0;
        let mut high = ue(0x101, 5, 10_000, 1.0);
        high.priority_group = 1;
        let out = s.schedule_dl(&input(vec![low, high]));
        assert_eq!(out.dcis[0].rnti, Rnti(0x101), "boost dominates CQI");
    }

    #[test]
    fn compile_errors_are_loud() {
        assert!(DslScheduler::compile("").is_err(), "no priority");
        assert!(DslScheduler::compile("priority = bogus_var\n").is_err());
        assert!(
            DslScheduler::compile("priority = min(1)\n").is_err(),
            "arity"
        );
        assert!(DslScheduler::compile("priority = 1 +\n").is_err());
        assert!(
            DslScheduler::compile("wat = 1\n").is_err(),
            "unknown output"
        );
        assert!(DslScheduler::compile("priority = foo(1)\n").is_err());
        assert!(DslScheduler::compile("priority = 1 @ 2\n").is_err());
    }

    #[test]
    fn arithmetic_semantics() {
        // 2 + 3 * 4 ^ 2 = 50; division by zero yields 0 (total function).
        let src = "param x = 0\npriority = 2 + 3 * 4 ^ 2 + 1 / x\n";
        let mut s = DslScheduler::compile(src).unwrap();
        let u = ue(0x100, 10, 100, 1.0);
        let p = s.program.eval(&s.program.priority.clone(), &u, 50);
        assert_eq!(p, 50.0);
        // Right-associative power: 2 ^ 3 ^ 2 = 512.
        let s2 = DslScheduler::compile("priority = 2 ^ 3 ^ 2\n").unwrap();
        assert_eq!(s2.program.eval(&s2.program.priority.clone(), &u, 50), 512.0);
        // Unary minus binds tighter than +.
        let s3 = DslScheduler::compile("priority = -2 + 5\n").unwrap();
        assert_eq!(s3.program.eval(&s3.program.priority.clone(), &u, 50), 3.0);
        let _ = &mut s;
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let src = "\n# a comment\n\npriority = cqi # trailing\n\n";
        assert!(DslScheduler::compile(src).is_ok());
    }

    #[test]
    fn srb_still_preempts() {
        let mut s = DslScheduler::compile("priority = cqi\n").unwrap();
        let mut attaching = ue(0x200, 3, 0, 1.0);
        attaching.srb_bytes = Bytes(50);
        let out = s.schedule_dl(&input(vec![ue(0x100, 15, 1_000_000, 1.0), attaching]));
        assert_eq!(out.dcis[0].rnti, Rnti(0x200));
    }
}
