//! Control Module Interfaces (CMIs) and the eNodeB control modules.
//!
//! Each control module mirrors one access-stratum protocol (paper §4.3.1:
//! "FlexRAN adopts the same structure for the agent's control modules")
//! and exposes a well-defined set of VSF slots. The CMI is what lets "the
//! agent react to a specific event (e.g., time for downlink scheduling)
//! without having to worry about the underlying implementation".
//!
//! * [`MacControlModule`] — downlink and uplink UE-scheduling VSFs (the
//!   module the paper's prototype focused on).
//! * [`RrcControlModule`] — the handover-policy VSF.
//! * [`PdcpControlModule`] — placeholder slots kept for structural
//!   completeness (no experiment exercises PDCP control).

use flexran_stack::mac::scheduler::{DlScheduler, UlScheduler};

use crate::vsf::VsfSlot;

/// A local handover policy VSF: reacts to measurement reports.
pub trait HandoverVsf: Send {
    fn name(&self) -> &str;

    /// Given a measurement report, decide whether to hand the UE over and
    /// to which site.
    fn on_measurement(&mut self, serving_rsrp_dbm: f64, neighbours: &[(u32, f64)]) -> Option<u32>;
}

/// The standard A3-event policy: hand over when a neighbour is better
/// than serving by `hysteresis_db` for `time_to_trigger` consecutive
/// reports.
#[derive(Debug, Clone)]
pub struct A3HandoverVsf {
    pub hysteresis_db: f64,
    pub time_to_trigger_reports: u32,
    streak: u32,
    candidate: Option<u32>,
}

impl Default for A3HandoverVsf {
    fn default() -> Self {
        A3HandoverVsf {
            hysteresis_db: 3.0,
            time_to_trigger_reports: 2,
            streak: 0,
            candidate: None,
        }
    }
}

impl HandoverVsf for A3HandoverVsf {
    fn name(&self) -> &str {
        "a3-handover"
    }

    fn on_measurement(&mut self, serving_rsrp_dbm: f64, neighbours: &[(u32, f64)]) -> Option<u32> {
        let best = neighbours.iter().max_by(|a, b| a.1.total_cmp(&b.1))?;
        if best.1 > serving_rsrp_dbm + self.hysteresis_db {
            if self.candidate == Some(best.0) {
                self.streak += 1;
            } else {
                self.candidate = Some(best.0);
                self.streak = 1;
            }
            if self.streak >= self.time_to_trigger_reports {
                self.streak = 0;
                return self.candidate.take();
            }
        } else {
            self.streak = 0;
            self.candidate = None;
        }
        None
    }
}

/// VSF slot names of the MAC control module.
pub const MAC_DL_SCHEDULER: &str = "dl_ue_scheduler";
pub const MAC_UL_SCHEDULER: &str = "ul_ue_scheduler";
/// VSF slot name of the RRC control module.
pub const RRC_HANDOVER: &str = "handover_policy";

/// The MAC/RLC control module.
#[derive(Default)]
pub struct MacControlModule {
    pub dl: VsfSlot<dyn DlScheduler>,
    pub ul: VsfSlot<dyn UlScheduler>,
}

impl MacControlModule {
    pub fn new() -> Self {
        Self::default()
    }
}

/// The RRC control module.
#[derive(Default)]
pub struct RrcControlModule {
    pub handover: VsfSlot<dyn HandoverVsf>,
}

impl RrcControlModule {
    pub fn new() -> Self {
        Self::default()
    }
}

/// The PDCP control module (structural placeholder: the LTE PDCP control
/// surface — ROHC profiles, integrity — is not exercised by any paper
/// experiment; see DESIGN.md §7).
#[derive(Default)]
pub struct PdcpControlModule;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a3_triggers_after_ttt() {
        let mut p = A3HandoverVsf {
            hysteresis_db: 3.0,
            time_to_trigger_reports: 2,
            ..A3HandoverVsf::default()
        };
        // Neighbour only 1 dB better: never triggers.
        assert_eq!(p.on_measurement(-90.0, &[(2, -89.0)]), None);
        assert_eq!(p.on_measurement(-90.0, &[(2, -89.0)]), None);
        // 5 dB better: needs two consecutive reports.
        assert_eq!(p.on_measurement(-90.0, &[(2, -85.0)]), None);
        assert_eq!(p.on_measurement(-90.0, &[(2, -85.0)]), Some(2));
        // Streak resets after firing.
        assert_eq!(p.on_measurement(-90.0, &[(2, -85.0)]), None);
    }

    #[test]
    fn a3_streak_resets_on_dip() {
        let mut p = A3HandoverVsf {
            hysteresis_db: 3.0,
            time_to_trigger_reports: 2,
            ..A3HandoverVsf::default()
        };
        assert_eq!(p.on_measurement(-90.0, &[(2, -85.0)]), None);
        assert_eq!(p.on_measurement(-90.0, &[(2, -90.0)]), None); // dip
        assert_eq!(p.on_measurement(-90.0, &[(2, -85.0)]), None); // streak=1 again
        assert_eq!(p.on_measurement(-90.0, &[(2, -85.0)]), Some(2));
    }

    #[test]
    fn a3_tracks_best_neighbour() {
        let mut p = A3HandoverVsf::default();
        assert_eq!(p.on_measurement(-90.0, &[(2, -86.0), (3, -80.0)]), None);
        assert_eq!(p.on_measurement(-90.0, &[(2, -86.0), (3, -80.0)]), Some(3));
    }

    #[test]
    fn empty_neighbour_list_is_safe() {
        let mut p = A3HandoverVsf::default();
        assert_eq!(p.on_measurement(-90.0, &[]), None);
    }

    #[test]
    fn modules_start_with_empty_slots() {
        let mac = MacControlModule::new();
        assert!(mac.dl.is_empty());
        assert!(mac.ul.is_empty());
        let rrc = RrcControlModule::new();
        assert!(rrc.handover.is_empty());
    }
}
