#![forbid(unsafe_code)]
//! # flexran-agent
//!
//! The FlexRAN agent (paper §4.3.1): the per-eNodeB half of the FlexRAN
//! control plane. It hosts the *eNodeB control modules* — one per
//! access-stratum protocol, each exposing VSF slots through a Control
//! Module Interface — the *message handler & dispatcher* for the FlexRAN
//! protocol, the *Reports & Events manager*, and the control-delegation
//! machinery (VSF cache, registry, code signing, policy-reconfiguration
//! parser, and the scheduling-policy DSL).
//!
//! * [`agent`] — [`FlexranAgent`]: the per-TTI engine.
//! * [`cmi`] — control modules and their interfaces (MAC, RRC, PDCP).
//! * [`vsf`] — VSF cache/slots, registry, signing.
//! * [`liveness`] — heartbeat tracking and the local-control failover
//!   state machine (built on the §5.4 runtime VSF swap).
//! * [`dsl`] — the pushable scheduling-policy language (§7.3 future work).
//! * [`policy`] — the YAML-subset policy-reconfiguration documents
//!   (paper Fig. 3).
//! * [`reports`] — one-off / periodic / triggered statistics reporting.

pub mod agent;
pub mod cmi;
pub mod dsl;
pub mod liveness;
pub mod policy;
pub mod reports;
pub mod vsf;

pub use agent::{AgentConfig, AgentCounters, FlexranAgent, HandoverRequest};
pub use cmi::{
    A3HandoverVsf, HandoverVsf, MacControlModule, RrcControlModule, MAC_DL_SCHEDULER,
    MAC_UL_SCHEDULER, RRC_HANDOVER,
};
pub use dsl::DslScheduler;
pub use liveness::{FailoverState, LivenessConfig, LivenessCounters, LivenessTracker};
pub use policy::{ModulePolicy, PolicyDoc, VsfPolicy};
pub use reports::{compose_reply, ReportsManager};
pub use vsf::{sign_push, verify_push, RemoteStubScheduler, VsfImpl, VsfRegistry, VsfSlot};
