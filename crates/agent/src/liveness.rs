//! Agent-side control-plane liveness tracking and local-control failover.
//!
//! The paper (§5.4) shows that switching a VSF between a delegated
//! (remote) and a locally cached implementation is a runtime pointer
//! swap. This module drives that swap from *session liveness*: the agent
//! probes the master with heartbeats, watches for silence, and when the
//! master is declared dead falls back to a VSF-cached local policy so
//! the data plane keeps scheduling through the outage.
//!
//! The state machine:
//!
//! ```text
//!   Connected ──silence ≥ degraded_after──▶ Degraded
//!      ▲                                       │
//!      │ rx                         silence ≥ liveness_timeout
//!      │                                       ▼
//!   Rejoining ◀──────rx from master────── LocalControl
//!      │  ▲                                    ▲
//!  ack of a post-rejoin probe       silence ≥ liveness_timeout
//!      ▼  └────────────────────────────────────┘
//!   Connected
//! ```
//!
//! * `Connected → Degraded` is a warning level: the master has been
//!   silent long enough to worry but not to act.
//! * `Degraded → LocalControl` is the failover edge. The tracker emits
//!   [`TickOutcome::entered_local_control`] exactly once per entry; the
//!   agent reacts by activating the configured fallback DL scheduler.
//! * `LocalControl → Rejoining` fires on the first message received from
//!   the master after the outage. The agent re-sends its `Hello` so the
//!   master can replay delegated state (paper §4.3.2: the RIB is
//!   rebuilt, policies re-pushed).
//! * `Rejoining → Connected` requires a `HeartbeatAck` for a probe sent
//!   *after* the rejoin began — one full round trip on the healed
//!   channel — so a single stale packet cannot flip the session healthy.
//!
//! The tracker is a pure state machine over TTI timestamps: it performs
//! no I/O and owns no transport, which keeps it unit-testable and lets
//! the proptest suite drive it with adversarial loss/reorder schedules.

use flexran_types::time::Tti;

/// Where the agent's control plane currently stands (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailoverState {
    /// Master traffic within bounds; delegated control operates normally.
    Connected,
    /// Master silent for `degraded_after` TTIs; not yet acting on it.
    Degraded,
    /// Master declared dead; a locally cached policy is scheduling.
    LocalControl,
    /// Master traffic resumed; waiting for a round-trip confirmation
    /// before declaring the session healthy again.
    Rejoining,
}

impl FailoverState {
    pub fn as_str(self) -> &'static str {
        match self {
            FailoverState::Connected => "connected",
            FailoverState::Degraded => "degraded",
            FailoverState::LocalControl => "local-control",
            FailoverState::Rejoining => "rejoining",
        }
    }
}

impl std::fmt::Display for FailoverState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Liveness knobs of one agent. All periods are in TTIs (= ms at LTE
/// numerology). The default disables tracking entirely, so existing
/// deployments and tests see no behaviour change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Period between heartbeat probes towards the master
    /// (0 = send no probes).
    pub heartbeat_period: u64,
    /// TTIs of master silence before failing over to local control
    /// (0 = liveness tracking disabled).
    pub liveness_timeout: u64,
    /// TTIs of silence before entering [`FailoverState::Degraded`]
    /// (0 = half of `liveness_timeout`).
    pub degraded_after: u64,
    /// Registry key of the cached DL scheduler activated on failover.
    pub fallback_dl_scheduler: String,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            heartbeat_period: 0,
            liveness_timeout: 0,
            degraded_after: 0,
            fallback_dl_scheduler: "round-robin".into(),
        }
    }
}

impl LivenessConfig {
    /// Typical production shape: probe every `period`, declare the master
    /// dead after four silent probe intervals.
    pub fn probing(period: u64) -> Self {
        LivenessConfig {
            heartbeat_period: period,
            liveness_timeout: period * 4,
            ..LivenessConfig::default()
        }
    }

    pub fn enabled(&self) -> bool {
        self.liveness_timeout > 0
    }

    fn degraded_threshold(&self) -> u64 {
        if self.degraded_after > 0 {
            self.degraded_after
        } else {
            (self.liveness_timeout / 2).max(1)
        }
    }
}

/// Observability counters of the failover machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LivenessCounters {
    pub heartbeats_sent: u64,
    pub acks_received: u64,
    /// Entries into [`FailoverState::LocalControl`].
    pub failovers: u64,
    /// Completed rejoins (back to [`FailoverState::Connected`]).
    pub rejoins: u64,
}

/// What a [`LivenessTracker::tick`] asks the agent to do this TTI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// Send a heartbeat probe with this sequence number.
    pub probe: Option<u64>,
    /// The failover edge fired: activate the fallback scheduler.
    /// Emitted exactly once per `LocalControl` entry.
    pub entered_local_control: bool,
}

/// The agent's liveness tracker (see module docs).
#[derive(Debug, Clone)]
pub struct LivenessTracker {
    config: LivenessConfig,
    state: FailoverState,
    last_rx: u64,
    next_probe: u64,
    next_seq: u64,
    /// During `Rejoining`: acks below this sequence predate the rejoin
    /// and do not confirm the healed channel.
    min_confirming_seq: u64,
    counters: LivenessCounters,
}

impl LivenessTracker {
    pub fn new(config: LivenessConfig) -> Self {
        LivenessTracker {
            config,
            state: FailoverState::Connected,
            last_rx: 0,
            next_probe: 0,
            next_seq: 0,
            min_confirming_seq: 0,
            counters: LivenessCounters::default(),
        }
    }

    pub fn config(&self) -> &LivenessConfig {
        &self.config
    }

    pub fn state(&self) -> FailoverState {
        self.state
    }

    pub fn counters(&self) -> LivenessCounters {
        self.counters
    }

    /// TTIs since the last message from the master.
    pub fn silence(&self, now: Tti) -> u64 {
        now.0.saturating_sub(self.last_rx)
    }

    /// Advance the clock: evaluate silence-driven transitions and probe
    /// scheduling. Call once per TTI *after* draining the transport.
    pub fn tick(&mut self, now: Tti) -> TickOutcome {
        let mut out = TickOutcome::default();
        if self.config.enabled() {
            let silence = self.silence(now);
            if self.state == FailoverState::Connected && silence >= self.config.degraded_threshold()
            {
                self.state = FailoverState::Degraded;
            }
            // A second look: Degraded (possibly just entered) may already
            // be past the hard timeout, e.g. with degraded_after == timeout.
            if matches!(
                self.state,
                FailoverState::Degraded | FailoverState::Rejoining
            ) && silence >= self.config.liveness_timeout
            {
                self.state = FailoverState::LocalControl;
                self.counters.failovers += 1;
                out.entered_local_control = true;
            }
        }
        if self.config.heartbeat_period > 0 && now.0 >= self.next_probe {
            self.next_probe = now.0 + self.config.heartbeat_period;
            out.probe = Some(self.next_seq);
            self.next_seq += 1;
            self.counters.heartbeats_sent += 1;
        }
        out
    }

    /// Record any message received from the master. Returns `true` when
    /// this message starts a rejoin (the agent should re-send `Hello`).
    pub fn on_rx(&mut self, now: Tti) -> bool {
        self.last_rx = self.last_rx.max(now.0);
        if !self.config.enabled() {
            return false;
        }
        match self.state {
            FailoverState::Degraded => {
                self.state = FailoverState::Connected;
                false
            }
            FailoverState::LocalControl => {
                self.state = FailoverState::Rejoining;
                // Only probes sent from here on confirm the channel.
                self.min_confirming_seq = self.next_seq;
                true
            }
            FailoverState::Connected | FailoverState::Rejoining => false,
        }
    }

    /// Record a `HeartbeatAck`. Returns `true` when it completes a rejoin.
    pub fn on_ack(&mut self, seq: u64) -> bool {
        self.counters.acks_received += 1;
        if self.state == FailoverState::Rejoining && seq >= self.min_confirming_seq {
            self.state = FailoverState::Connected;
            self.counters.rejoins += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(period: u64, timeout: u64) -> LivenessConfig {
        LivenessConfig {
            heartbeat_period: period,
            liveness_timeout: timeout,
            ..LivenessConfig::default()
        }
    }

    #[test]
    fn disabled_tracker_never_leaves_connected() {
        let mut t = LivenessTracker::new(LivenessConfig::default());
        for now in 0..10_000 {
            let out = t.tick(Tti(now));
            assert_eq!(out, TickOutcome::default());
        }
        assert_eq!(t.state(), FailoverState::Connected);
        assert_eq!(t.counters(), LivenessCounters::default());
    }

    #[test]
    fn probes_follow_the_period() {
        let mut t = LivenessTracker::new(cfg(10, 0));
        let mut seqs = Vec::new();
        for now in 0..35 {
            t.on_rx(Tti(now)); // keep the session healthy
            if let Some(s) = t.tick(Tti(now)).probe {
                seqs.push((now, s));
            }
        }
        assert_eq!(seqs, vec![(0, 0), (10, 1), (20, 2), (30, 3)]);
        assert_eq!(t.counters().heartbeats_sent, 4);
    }

    #[test]
    fn silence_degrades_then_fails_over_exactly_once() {
        let mut t = LivenessTracker::new(cfg(10, 40));
        let mut activations = 0;
        for now in 0..100 {
            let out = t.tick(Tti(now));
            if out.entered_local_control {
                activations += 1;
                assert_eq!(now, 40, "failover at the configured timeout");
            }
            if now < 20 {
                assert_eq!(t.state(), FailoverState::Connected);
            } else if now < 40 {
                assert_eq!(t.state(), FailoverState::Degraded);
            } else {
                assert_eq!(t.state(), FailoverState::LocalControl);
            }
        }
        assert_eq!(activations, 1, "fallback activated exactly once");
        assert_eq!(t.counters().failovers, 1);
    }

    #[test]
    fn rx_in_degraded_recovers_without_failover() {
        let mut t = LivenessTracker::new(cfg(0, 40));
        t.tick(Tti(25));
        assert_eq!(t.state(), FailoverState::Degraded);
        assert!(!t.on_rx(Tti(26)));
        assert_eq!(t.state(), FailoverState::Connected);
        assert_eq!(t.counters().failovers, 0);
    }

    #[test]
    fn full_outage_cycle_requires_post_rejoin_ack() {
        let mut t = LivenessTracker::new(cfg(10, 40));
        // Healthy until 100.
        for now in 0..=100 {
            t.on_rx(Tti(now));
            t.tick(Tti(now));
        }
        // Outage: silence 101..=141.
        for now in 101..=141 {
            t.tick(Tti(now));
        }
        assert_eq!(t.state(), FailoverState::LocalControl);
        // Master comes back.
        assert!(t.on_rx(Tti(142)), "first rx starts a rejoin");
        assert_eq!(t.state(), FailoverState::Rejoining);
        // A stale ack (from a probe sent during the outage) must not
        // confirm the session.
        assert!(!t.on_ack(3));
        assert_eq!(t.state(), FailoverState::Rejoining);
        // A fresh probe goes out, its ack completes the rejoin.
        let mut now = 143;
        let probe = loop {
            if let Some(s) = t.tick(Tti(now)).probe {
                break s;
            }
            now += 1;
            assert!(now < 200, "a probe must be due within one period");
        };
        assert!(!t.on_ack(probe - 1), "pre-rejoin seq still ignored");
        assert!(t.on_ack(probe));
        assert_eq!(t.state(), FailoverState::Connected);
        assert_eq!(t.counters().rejoins, 1);
    }

    #[test]
    fn rejoin_that_stalls_falls_back_again() {
        let mut t = LivenessTracker::new(cfg(10, 40));
        for now in 0..=50 {
            t.tick(Tti(now));
        }
        assert_eq!(t.state(), FailoverState::LocalControl);
        t.on_rx(Tti(51));
        assert_eq!(t.state(), FailoverState::Rejoining);
        // The master dies again before any ack arrives.
        let mut second_entry = false;
        for now in 52..=120 {
            if t.tick(Tti(now)).entered_local_control {
                second_entry = true;
            }
        }
        assert!(second_entry);
        assert_eq!(t.state(), FailoverState::LocalControl);
        assert_eq!(t.counters().failovers, 2);
        assert_eq!(t.counters().rejoins, 0);
    }

    #[test]
    fn degraded_threshold_defaults_to_half_timeout() {
        assert_eq!(cfg(0, 40).degraded_threshold(), 20);
        let explicit = LivenessConfig {
            degraded_after: 5,
            ..cfg(0, 40)
        };
        assert_eq!(explicit.degraded_threshold(), 5);
        assert_eq!(LivenessConfig::probing(25).liveness_timeout, 100);
    }
}
